# Convenience targets for the StreamApprox reproduction.
#
#   make test    — the tier-1 verification suite (tests + figure benchmarks)
#   make smoke   — fast end-to-end sanity run of examples/quickstart.py
#   make bench   — only the figure-reproduction benchmarks
#   make check   — test + smoke (what CI should run)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test smoke bench check

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) examples/quickstart.py

bench:
	$(PYTHON) -m pytest -x -q benchmarks/

check: test smoke
