# Convenience targets for the StreamApprox reproduction.
#
#   make test       — the tier-1 verification suite (tests + figure benchmarks)
#   make smoke      — fast end-to-end sanity run of examples/quickstart.py
#   make bench      — only the figure-reproduction benchmarks
#   make bench-json — benchmarks with machine-readable results for
#                     trajectory tracking (benchmarks/results/bench.json,
#                     plus per-figure artifacts BENCH_fig4a.json and
#                     BENCH_fig6a.json under benchmarks/results/);
#                     includes the budget-loop convergence gate
#                     (REPRO_ADAPT_MAX_INTERVALS tunes its deadline),
#                     the columnar-vs-shim wall-clock gate
#                     (REPRO_FIG4A_MIN_COLUMNAR_SPEEDUP, default 1.0)
#                     and, when REPRO_FIG6A_MIN_SHARD_SPEEDUP is set, the
#                     multi-core shard-scaling gate
#   make chaos      — fault-tolerance chaos suite (crash/resume + shard
#                     kills); REPRO_CHAOS_SEEDS selects the seed matrix,
#                     e.g. make chaos REPRO_CHAOS_SEEDS="7,19,23"
#   make check      — test + smoke (what CI runs on every push/PR)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

BENCH_JSON ?= benchmarks/results/bench.json

.PHONY: test smoke bench bench-json chaos check

# Extra pytest flags, e.g. make check PYTEST_ARGS=--benchmark-json=out.json
PYTEST_ARGS ?=

test:
	$(PYTHON) -m pytest -x -q $(PYTEST_ARGS)

smoke:
	$(PYTHON) examples/quickstart.py

bench:
	$(PYTHON) -m pytest -x -q benchmarks/

bench-json:
	$(PYTHON) -m pytest -x -q benchmarks/ --benchmark-json=$(BENCH_JSON)

# Seeds the chaos harness parametrizes over (tests/chaos/conftest.py).
REPRO_CHAOS_SEEDS ?= 7
chaos:
	REPRO_CHAOS_SEEDS="$(REPRO_CHAOS_SEEDS)" $(PYTHON) -m pytest -x -q tests/chaos

check: test smoke
