"""Tests for non-stationary (drifting-rate) workloads and OASRS adaptivity."""

import pytest

from repro.system import (
    SparkSTSSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.workloads.drift import (
    RatePhase,
    RateSchedule,
    drifting_stream,
    flash_crowd_schedule,
    rate_swap_schedule,
)

KEY = lambda it: it[0]  # noqa: E731
VAL = lambda it: it[1]  # noqa: E731


class TestSchedules:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            RatePhase(0.0, {"A": 1.0})
        with pytest.raises(ValueError):
            RatePhase(1.0, {"A": -1.0})
        with pytest.raises(ValueError):
            RateSchedule(())

    def test_duration_sums_phases(self):
        schedule = rate_swap_schedule(phase_seconds=15.0)
        assert schedule.duration == 30.0

    def test_rate_at_follows_phases(self):
        schedule = rate_swap_schedule(high=8000, low=100, phase_seconds=20)
        assert schedule.rate_at("A", 5.0) == 8000
        assert schedule.rate_at("A", 25.0) == 100
        assert schedule.rate_at("C", 25.0) == 8000
        # Past the end, the last phase's rates persist.
        assert schedule.rate_at("C", 999.0) == 8000

    def test_flash_crowd_shape(self):
        schedule = flash_crowd_schedule(base=1000, spike=10_000, phase_seconds=10)
        assert schedule.rate_at("B", 5.0) == 1000
        assert schedule.rate_at("B", 15.0) == 10_000
        assert schedule.rate_at("B", 25.0) == 1000


class TestDriftingStream:
    def test_counts_follow_schedule(self):
        stream = drifting_stream(rate_swap_schedule(800, 10, 10.0), seed=1)
        first_half = [it for ts, it in stream if ts < 10.0]
        second_half = [it for ts, it in stream if ts >= 10.0]
        a_first = sum(1 for k, _v in first_half if k == "A")
        a_second = sum(1 for k, _v in second_half if k == "A")
        assert a_first > 10 * a_second  # A collapses after the swap

    def test_time_ordered(self):
        stream = drifting_stream(flash_crowd_schedule(500, 2000, 5.0), seed=2)
        timestamps = [ts for ts, _ in stream]
        assert timestamps == sorted(timestamps)

    def test_deterministic(self):
        a = drifting_stream(rate_swap_schedule(200, 10, 5.0), seed=3)
        b = drifting_stream(rate_swap_schedule(200, 10, 5.0), seed=3)
        assert a == b

    def test_value_distribution_continuous_across_phases(self):
        """B's rate never changes, so its values must be one long draw."""
        stream = drifting_stream(rate_swap_schedule(400, 10, 10.0), seed=4)
        b_values = [v for _ts, (k, v) in stream if k == "B"]
        # B ~ N(1000, 50) throughout; crude check on both halves.
        half = len(b_values) // 2
        mean1 = sum(b_values[:half]) / half
        mean2 = sum(b_values[half:]) / (len(b_values) - half)
        assert abs(mean1 - 1000) < 25 and abs(mean2 - 1000) < 25


class TestAdaptivityUnderDrift:
    def test_oasrs_weights_track_rate_swap(self):
        """After the swap, OASRS's per-pane samples re-weight automatically:
        the stratum that became rare is fully kept (weight → 1)."""
        stream = drifting_stream(rate_swap_schedule(4000, 50, 15.0), seed=5)
        query = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean", group_fn=KEY)
        report = SparkStreamApproxSystem(
            query, WindowConfig(10.0, 5.0), SystemConfig(sampling_fraction=0.3)
        ).run(stream)
        early = report.results[1]
        late = report.results[-1]
        # Accuracy holds on both sides of the swap.
        assert early.accuracy_loss < 0.05
        assert late.accuracy_loss < 0.05
        # Every stratum stays represented in every pane, before and after.
        for pane in report.results:
            assert set(pane.exact_groups) == set(pane.groups)

    def test_oasrs_stays_accurate_under_flash_crowd(self):
        stream = drifting_stream(flash_crowd_schedule(1500, 12000, 10.0), seed=6)
        query = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean")
        report = SparkStreamApproxSystem(
            query, WindowConfig(10.0, 5.0), SystemConfig(sampling_fraction=0.3)
        ).run(stream)
        for pane in report.results:
            if pane.accuracy_loss is not None:
                assert pane.accuracy_loss < 0.05

    def test_oasrs_no_worse_than_sts_through_drift(self):
        """STS re-derives fractions per batch here (a *favourable* STS
        setup); OASRS must still match its accuracy through the swap."""
        stream = drifting_stream(rate_swap_schedule(4000, 50, 15.0), seed=7)
        query = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean")
        cfg = SystemConfig(sampling_fraction=0.3)
        window = WindowConfig(10.0, 5.0)
        oasrs = SparkStreamApproxSystem(query, window, cfg).run(stream)
        sts = SparkSTSSystem(query, window, cfg).run(stream)
        assert oasrs.mean_accuracy_loss() < max(2 * sts.mean_accuracy_loss(), 0.01)
        assert oasrs.throughput > 1.3 * sts.throughput
