"""Crash-and-resume chaos: kill the run between panes, resume, match exactly.

For every engine the runtime drives (batched micro-batches, pipelined
operators, the direct executor — sampled and exact), a checkpointed run
must be indistinguishable from an unobserved one, and resuming from *any*
checkpoint — including one that crossed a process boundary as pickled
bytes — must reproduce the uninterrupted run's remaining panes bit for
bit.  The broker variant pins the replay-offset contract: resume over a
rewindable `TopicSource` relies on the broker's topic-global sequence
numbers re-producing the exact same event order.
"""

import pytest

from chaos.harness import chaos_plan, chaos_query, chaos_stream, pane_fingerprint
from repro.aggregator.broker import Broker
from repro.aggregator.producer import Producer
from repro.runtime import (
    CheckpointPolicy,
    CheckpointStore,
    PaneCheckpoint,
    TopicSource,
    execute_plan,
)

ENGINES = [
    ("batched", "oasrs"),
    ("pipelined", "oasrs"),
    ("pipelined", "none"),
    ("direct", "oasrs"),
]


@pytest.mark.parametrize("engine,strategy", ENGINES)
class TestCrashResume:
    def run_base(self, stream, engine, strategy):
        results, _cluster = execute_plan(chaos_plan(stream, engine, strategy))
        return results

    def run_checkpointed(self, stream, engine, strategy, every=1):
        store = CheckpointStore()
        results, _cluster = execute_plan(
            chaos_plan(stream, engine, strategy,
                       checkpoint=CheckpointPolicy(every=every)),
            checkpoint_store=store,
        )
        return results, store

    def test_checkpointing_is_a_pure_observer(self, chaos_seed, engine, strategy):
        stream = chaos_stream(chaos_seed)
        base = self.run_base(stream, engine, strategy)
        observed, store = self.run_checkpointed(stream, engine, strategy)
        assert pane_fingerprint(observed) == pane_fingerprint(base)
        assert len(store) >= 2, "workload too short to exercise resume"

    def test_resume_from_every_checkpoint_matches(self, chaos_seed, engine, strategy):
        stream = chaos_stream(chaos_seed)
        base = self.run_base(stream, engine, strategy)
        _observed, store = self.run_checkpointed(stream, engine, strategy)
        for index in store.indices():
            resumed, _ = execute_plan(
                chaos_plan(stream, engine, strategy,
                           checkpoint=CheckpointPolicy(every=1)),
                resume_from=store.get(index),
            )
            assert pane_fingerprint(resumed) == pane_fingerprint(base), (
                f"resume from checkpoint {index} diverged"
            )

    def test_resume_from_pickled_checkpoint_matches(self, chaos_seed, engine, strategy):
        # The crash crosses a process boundary: the checkpoint survives only
        # as bytes, as it would on disk.
        stream = chaos_stream(chaos_seed)
        base = self.run_base(stream, engine, strategy)
        _observed, store = self.run_checkpointed(stream, engine, strategy)
        revived = PaneCheckpoint.from_bytes(store.latest().to_bytes())
        resumed, _ = execute_plan(
            chaos_plan(stream, engine, strategy,
                       checkpoint=CheckpointPolicy(every=1)),
            resume_from=revived,
        )
        assert pane_fingerprint(resumed) == pane_fingerprint(base)

    def test_sparse_checkpoint_cadence_also_resumes(self, chaos_seed, engine, strategy):
        stream = chaos_stream(chaos_seed)
        base = self.run_base(stream, engine, strategy)
        _observed, store = self.run_checkpointed(stream, engine, strategy, every=2)
        assert all(index % 2 == 0 for index in store.indices())
        resumed, _ = execute_plan(
            chaos_plan(stream, engine, strategy,
                       checkpoint=CheckpointPolicy(every=2)),
            resume_from=store.latest(),
        )
        assert pane_fingerprint(resumed) == pane_fingerprint(base)


def test_resume_over_rewindable_broker_topic(chaos_seed):
    # Replay-offset soundness end to end: the checkpointed stream position
    # indexes the broker's seq-ordered replay, which must re-produce the
    # exact order even across partitions.
    stream = chaos_stream(chaos_seed)
    query = chaos_query()
    broker = Broker()
    broker.create_topic("chaos", num_partitions=4)
    producer = Producer(broker, "chaos")
    for timestamp, item in stream:
        producer.send(timestamp, item, key=query.key_fn(item))

    def topic_plan(checkpoint=None):
        source = TopicSource(broker, "chaos", group_id="chaos-resume", members=2)
        plan = chaos_plan([], "direct", "oasrs", **(
            {"checkpoint": checkpoint} if checkpoint else {}
        ))
        return plan.with_source(source)

    base, _ = execute_plan(topic_plan())
    store = CheckpointStore()
    observed, _ = execute_plan(
        topic_plan(CheckpointPolicy(every=1)), checkpoint_store=store
    )
    assert pane_fingerprint(observed) == pane_fingerprint(base)
    for index in store.indices():
        resumed, _ = execute_plan(
            topic_plan(CheckpointPolicy(every=1)), resume_from=store.get(index)
        )
        assert pane_fingerprint(resumed) == pane_fingerprint(base)
