"""Worker-loss chaos: kill shard workers mid-interval, recover, stay honest.

`SystemConfig(faults=FaultSchedule(...))` injects worker losses into the
sharded sampling path; recovery is discard-and-rewiden (§ the
`repro.core.recovery` contract promoted into `ShardedExecutor`): the dead
worker's un-rerouted items are discarded, the surviving workers' reservoirs
re-widen over the remaining sub-population, and the pane reports the
incident instead of hiding it.  These tests pin the observable contract:

* loss accounting is exact — the affected panes' populations drop by
  precisely ``items_lost``, and every pane whose window excludes the
  killed interval stays bitwise identical to the healthy run,
* the estimate over the surviving sub-population stays near the ground
  truth (within twice the pane's own widened CI half-width),
* permanent kills keep the worker dead; killing every worker fails the
  run loudly; and fault runs checkpoint/resume exactly like healthy ones.

``REPRO_NO_MP=1`` forces the in-process sharded fallback so the fault
path is deterministic and fast under CI.
"""

import pytest

from chaos.harness import (
    CHAOS_WINDOW,
    chaos_plan,
    chaos_query,
    chaos_stream,
    pane_fingerprint,
)
from repro.runtime import (
    CheckpointPolicy,
    CheckpointStore,
    FaultSchedule,
    ShardKill,
    SystemConfig,
    execute_plan,
)
from repro.system import NativeStreamApproxSystem

#: The killed interval and the pane indices whose window still covers it
#: (length 5 s = two 2.5 s slide intervals → interval 2 is inside the
#: panes closing intervals 2 and 3).
KILL_INTERVAL = 2
AFFECTED_PANES = (2, 3)
#: The recovery echo reaches one interval further: water-filling derives
#: interval 3's reservoir capacities from the killed interval's (reduced)
#: observed counts, so interval 3's *sample* differs while its population
#: stays healthy — panes are bitwise identical again once both the killed
#: and the rewidened interval have left the window.
ECHO_PANES = (4,)


@pytest.fixture(autouse=True)
def in_process_shards(monkeypatch):
    monkeypatch.setenv("REPRO_NO_MP", "1")


def one_kill(permanent=False):
    return FaultSchedule(
        kills=(ShardKill(interval=KILL_INTERVAL, worker=1, permanent=permanent),)
    )


class TestLossAccounting:
    def test_loss_is_exact_and_contained(self, chaos_seed):
        stream = chaos_stream(chaos_seed)
        base, _ = execute_plan(chaos_plan(stream, parallelism=4))
        fault, _ = execute_plan(
            chaos_plan(stream, parallelism=4, faults=one_kill())
        )
        assert len(fault) == len(base)

        kill_pane = fault[AFFECTED_PANES[0]]
        lost = sum(event.items_lost for event in kill_pane.recovery)
        assert lost > 0, "the kill produced no loss"
        rerouted = sum(event.items_rerouted for event in kill_pane.recovery)
        assert rerouted > 0, "no items survived onto other workers"

        for index, (healthy, chaotic) in enumerate(zip(base, fault)):
            if index in AFFECTED_PANES:
                # Window still covers the killed interval: population down
                # by exactly the discarded items, nothing silently dropped.
                assert chaotic.total_items == healthy.total_items - lost
            elif index in ECHO_PANES:
                # Rewidening echo: full population, different sample.
                assert chaotic.total_items == healthy.total_items
            else:
                # Outside the kill's reach the fault run is bitwise
                # identical — recovery leaves no residue.
                assert pane_fingerprint([chaotic]) == pane_fingerprint([healthy])

    def test_recovery_events_attach_only_to_the_kill_pane(self, chaos_seed):
        fault, _ = execute_plan(
            chaos_plan(chaos_stream(chaos_seed), parallelism=4, faults=one_kill())
        )
        for index, pane in enumerate(fault):
            if index == AFFECTED_PANES[0]:
                assert [e.worker for e in pane.recovery] == [1]
                assert pane.recovery[0].interval == KILL_INTERVAL
            else:
                assert pane.recovery == ()


class TestEstimateQuality:
    def test_estimate_stays_within_widened_ci(self, chaos_seed):
        # System-level run: exact ground truth joined per pane.  The
        # surviving sub-population is a random (round-robin) subset, so the
        # estimate stays unbiased; twice the pane's own CI half-width is a
        # seed-robust bound for a single 95 % interval.
        config = SystemConfig(
            sampling_fraction=0.5, seed=17, parallelism=4, faults=one_kill()
        )
        report = NativeStreamApproxSystem(
            chaos_query(), CHAOS_WINDOW, config
        ).run(chaos_stream(chaos_seed))
        assert report.items_lost > 0
        assert len(report.recovery_events) == 1
        touched = [r for r in report.results if r.recovery]
        assert touched, "recovery events did not surface in the report"
        for pane in touched:
            assert pane.error is not None and pane.error.margin > 0
            assert abs(pane.estimate - pane.exact) <= 2 * pane.error.margin

    def test_kill_widens_the_ci(self, chaos_seed):
        stream = chaos_stream(chaos_seed)
        base, _ = execute_plan(chaos_plan(stream, parallelism=4))
        fault, _ = execute_plan(
            chaos_plan(stream, parallelism=4, faults=one_kill())
        )
        kill_index = AFFECTED_PANES[0]
        assert fault[kill_index].error.margin > base[kill_index].error.margin


class TestFailureModes:
    def test_permanent_kill_stays_dead(self, chaos_seed):
        # Re-killing an already-dead worker is a no-op: one event total,
        # flagged permanent, and the run still completes.
        faults = FaultSchedule(kills=(
            ShardKill(interval=KILL_INTERVAL, worker=1, permanent=True),
            ShardKill(interval=KILL_INTERVAL + 2, worker=1, permanent=True),
        ))
        fault, _ = execute_plan(
            chaos_plan(chaos_stream(chaos_seed), parallelism=4, faults=faults)
        )
        events = [event for pane in fault for event in pane.recovery]
        assert len(events) == 1
        assert events[0].permanent

    def test_killing_every_worker_fails_loudly(self, chaos_seed):
        faults = FaultSchedule(kills=tuple(
            ShardKill(interval=0, worker=w, permanent=True) for w in range(4)
        ))
        with pytest.raises(RuntimeError, match="all shard workers"):
            execute_plan(
                chaos_plan(chaos_stream(chaos_seed), parallelism=4, faults=faults)
            )

    def test_transient_kill_restores_worker_next_interval(self, chaos_seed):
        # Non-permanent kill: the worker rejoins after the interval, so a
        # second kill on the same worker produces a second event.
        faults = FaultSchedule(kills=(
            ShardKill(interval=KILL_INTERVAL, worker=1),
            ShardKill(interval=KILL_INTERVAL + 2, worker=1),
        ))
        fault, _ = execute_plan(
            chaos_plan(chaos_stream(chaos_seed), parallelism=4, faults=faults)
        )
        events = [event for pane in fault for event in pane.recovery]
        assert [event.interval for event in events] == [
            KILL_INTERVAL, KILL_INTERVAL + 2,
        ]


class TestKillPlusCrash:
    def test_fault_run_checkpoints_and_resumes_exactly(self, chaos_seed):
        # The full chaos scenario: a worker dies mid-interval AND the driver
        # crashes between panes; the resumed run must reproduce the fault
        # run (recovery events included) bit for bit.
        stream = chaos_stream(chaos_seed)
        store = CheckpointStore()
        fault_base, _ = execute_plan(
            chaos_plan(stream, parallelism=4, faults=one_kill(),
                       checkpoint=CheckpointPolicy(every=1)),
            checkpoint_store=store,
        )
        assert len(store) == len(fault_base)
        for index in store.indices():
            resumed, _ = execute_plan(
                chaos_plan(stream, parallelism=4, faults=one_kill(),
                           checkpoint=CheckpointPolicy(every=1)),
                resume_from=store.get(index),
            )
            assert pane_fingerprint(resumed) == pane_fingerprint(fault_base)
            resumed_events = [
                (e.interval, e.worker, e.items_lost)
                for pane in resumed for e in pane.recovery
            ]
            base_events = [
                (e.interval, e.worker, e.items_lost)
                for pane in fault_base for e in pane.recovery
            ]
            assert resumed_events == base_events
