"""Chaos-test harness configuration: the seed matrix.

Every test in this package takes a ``chaos_seed`` argument; the harness
parametrizes it from the ``REPRO_CHAOS_SEEDS`` environment variable (a
comma- or space-separated list, default ``7``).  CI runs the suite across
several seeds (see the ``chaos`` job in ``.github/workflows/ci.yml`` and
``make chaos``); locally, ``REPRO_CHAOS_SEEDS="7,19,23" pytest tests/chaos``
reproduces the full matrix.  Shared workload/plan helpers live in
``tests/chaos/harness.py``.
"""

import os


def pytest_generate_tests(metafunc):
    if "chaos_seed" in metafunc.fixturenames:
        raw = os.environ.get("REPRO_CHAOS_SEEDS", "7")
        seeds = [int(part) for part in raw.replace(",", " ").split()]
        metafunc.parametrize("chaos_seed", seeds)
