"""Shared workload and plan helpers for the chaos suite."""

from repro.runtime import (
    ListSource,
    StreamQuery,
    SystemConfig,
    WindowConfig,
    build_plan,
)
from repro.workloads.synthetic import stream_by_rates

CHAOS_WINDOW = WindowConfig(length=5.0, slide=2.5)


def chaos_stream(seed):
    """Skewed three-strata stream, long enough for several checkpoints."""
    return stream_by_rates({"A": 400, "B": 100, "C": 10}, duration=20, seed=seed)


def chaos_query():
    return StreamQuery(
        key_fn=lambda it: it[0], value_fn=lambda it: it[1], kind="mean",
        name="chaos-mean",
    )


def chaos_plan(stream, engine="direct", strategy="oasrs", **config_overrides):
    # batch_interval divides the 2.5 s slide so the batched engine can fire
    # panes on micro-batch boundaries; the other engines ignore it.
    config = SystemConfig(
        sampling_fraction=0.5, seed=17, batch_interval=0.5, **config_overrides
    )
    return build_plan(
        chaos_query(), CHAOS_WINDOW, config,
        engine=engine, strategy=strategy,
        source=ListSource(stream), name=f"chaos-{engine}-{strategy}",
    )


def pane_fingerprint(results):
    """Exact per-pane identity used by every bitwise-match assertion."""
    return [
        (r.end, r.estimate, r.sampled_items, r.total_items,
         r.error.margin if r.error is not None else None)
        for r in results
    ]
