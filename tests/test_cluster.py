"""Tests for the virtual clock and simulated cluster cost accounting."""

import math

import pytest

from repro.engine.cluster import SimulatedCluster, VirtualClock
from repro.engine.costs import DEFAULT_COSTS, CostProfile


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advances(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(3.0)
        clock.reset()
        assert clock.now == 0.0


class TestCostProfile:
    def test_default_constants_positive(self):
        for name, value in vars(DEFAULT_COSTS).items():
            assert value > 0, name

    def test_scaled_overrides(self):
        profile = DEFAULT_COSTS.scaled(item_process=9.0)
        assert profile.item_process == 9.0
        assert profile.item_ingest == DEFAULT_COSTS.item_ingest

    def test_dominant_cost_is_processing(self):
        """Calibration sanity: query processing dominates per-item costs."""
        c = DEFAULT_COSTS
        assert c.item_process > c.item_ingest
        assert c.item_process > c.item_batch_form
        assert c.item_process > c.item_sample_oasrs
        assert c.item_process > c.item_sample_srs


class TestSimulatedCluster:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SimulatedCluster(nodes=0)
        with pytest.raises(ValueError):
            SimulatedCluster(cores_per_node=0)
        with pytest.raises(ValueError):
            SimulatedCluster(parallel_efficiency=0.0)

    def test_total_cores(self):
        assert SimulatedCluster(nodes=3, cores_per_node=4).total_cores == 12

    def test_parallel_divided_by_cores(self):
        one = SimulatedCluster(nodes=1, cores_per_node=1)
        eight = SimulatedCluster(nodes=1, cores_per_node=8)
        one.parallel(8.0)
        eight.parallel(8.0)
        assert one.elapsed() == pytest.approx(8.0)
        assert eight.elapsed() < one.elapsed()
        # With 92% efficiency: 1 + 0.92*7 = 7.44× speedup.
        assert eight.elapsed() == pytest.approx(8.0 / 7.44)

    def test_perfect_efficiency_linear(self):
        cluster = SimulatedCluster(nodes=2, cores_per_node=4, parallel_efficiency=1.0)
        cluster.parallel(8.0)
        assert cluster.elapsed() == pytest.approx(1.0)

    def test_serial_not_divided(self):
        cluster = SimulatedCluster(nodes=4, cores_per_node=8)
        cluster.serial(2.0)
        assert cluster.elapsed() == pytest.approx(2.0)

    def test_barrier_grows_with_nodes(self):
        small = SimulatedCluster(nodes=2)
        big = SimulatedCluster(nodes=16)
        small.barrier()
        big.barrier()
        assert big.elapsed() > small.elapsed()
        assert big.elapsed() == pytest.approx(
            DEFAULT_COSTS.barrier_sync * math.log2(16)
        )

    def test_event_ledger(self):
        cluster = SimulatedCluster()
        cluster.ingest_items(10)
        cluster.process_items(5)
        cluster.shuffle_items(3)
        cluster.sample_items(7, "oasrs")
        cluster.launch_tasks(2)
        cluster.launch_job()
        cluster.create_rdd()
        cluster.barrier()
        cluster.sort(100.0)
        s = cluster.stats
        assert s.items_ingested == 10
        assert s.items_processed == 5
        assert s.items_shuffled == 3
        assert s.items_sampled == 7
        assert s.tasks_launched == 2
        assert s.jobs_launched == 1
        assert s.rdds_created == 1
        assert s.barriers == 1
        assert s.sort_comparisons == 100.0

    def test_unknown_sampling_kind(self):
        with pytest.raises(ValueError):
            SimulatedCluster().sample_items(1, "bogus")

    def test_throughput(self):
        cluster = SimulatedCluster(nodes=1, cores_per_node=1, parallel_efficiency=1.0)
        n = 1_000_000
        cluster.process_items(n)
        assert cluster.throughput(n) == pytest.approx(
            1.0 / DEFAULT_COSTS.item_process, rel=0.01
        )

    def test_throughput_zero_time(self):
        assert SimulatedCluster().throughput(100) == 0.0

    def test_reset(self):
        cluster = SimulatedCluster()
        cluster.process_items(100)
        cluster.reset()
        assert cluster.elapsed() == 0.0
        assert cluster.stats.items_processed == 0

    def test_custom_stat_bump(self):
        cluster = SimulatedCluster()
        cluster.stats.bump("panes")
        cluster.stats.bump("panes", 2.0)
        assert cluster.stats.custom["panes"] == 3.0
