"""Unit tests for the unified execution runtime (plan / strategies / driver)."""

import pytest

from repro.runtime import (
    ENGINES,
    ListSource,
    PlanError,
    SamplingStrategy,
    available_strategies,
    build_plan,
    execute_plan,
    get_strategy,
)
from repro.runtime.driver import run_direct
from repro.system import (
    ALL_SYSTEMS,
    FlinkStreamApproxSystem,
    NativeStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.system.spark_base import BatchedSystem, full_weight_sample
from repro.workloads.synthetic import stream_by_rates

KEY = lambda it: it[0]  # noqa: E731
VAL = lambda it: it[1]  # noqa: E731

QUERY = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean")
WINDOW = WindowConfig(10.0, 5.0)


@pytest.fixture(scope="module")
def stream():
    return stream_by_rates({"A": 1500, "B": 400, "C": 30}, duration=12, seed=11)


class TestPlanner:
    def test_all_seven_systems_declare_valid_plans(self):
        classes = list(ALL_SYSTEMS.values()) + [NativeStreamApproxSystem]
        for cls in classes:
            plan = cls(QUERY, WINDOW, SystemConfig()).plan()
            assert plan.engine in ENGINES
            assert plan.strategy in available_strategies()
            assert plan.name == cls.name

    def test_unknown_engine_rejected(self):
        with pytest.raises(PlanError, match="unknown engine"):
            build_plan(query=QUERY, engine="lambda", strategy="oasrs")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(PlanError, match="unknown sampling strategy"):
            build_plan(query=QUERY, engine="batched", strategy="zipf")

    @pytest.mark.parametrize("strategy", ["srs", "sts"])
    def test_batch_only_strategies_rejected_on_pipelined(self, strategy):
        with pytest.raises(PlanError, match="cannot run on the 'pipelined' engine"):
            build_plan(query=QUERY, engine="pipelined", strategy=strategy)

    @pytest.mark.parametrize(
        "engine,match",
        [
            ("pipelined", "does not sample intervals"),
            ("direct", "requires an interval-sampling"),
        ],
    )
    def test_interval_engines_reject_non_interval_strategies(self, engine, match):
        """A sampling strategy on an interval engine cannot silently fall
        back to the exact pass-through path."""
        from repro.runtime import register_strategy
        from repro.runtime.strategies import _REGISTRY

        @register_strategy
        class BatchOnlyEverywhere(SamplingStrategy):
            name = "batch-only-test"
            engines = frozenset({"batched", "pipelined", "direct"})

            def bind(self, plan):  # pragma: no cover - planner rejects first
                raise AssertionError

        try:
            with pytest.raises(PlanError, match=match):
                build_plan(query=QUERY, engine=engine, strategy="batch-only-test")
        finally:
            _REGISTRY.pop("batch-only-test", None)

    @pytest.mark.parametrize("strategy", ["none", "srs", "sts"])
    def test_parallelism_rejected_for_unshardable_strategies(self, strategy):
        engine = "batched"
        with pytest.raises(PlanError, match="parallelism=4 is not supported"):
            build_plan(
                query=QUERY,
                engine=engine,
                strategy=strategy,
                config=SystemConfig(parallelism=4),
            )

    def test_parallelism_accepted_for_oasrs_on_every_engine(self):
        for engine in ENGINES:
            plan = build_plan(
                query=QUERY,
                engine=engine,
                strategy="oasrs",
                config=SystemConfig(parallelism=4),
            )
            assert plan.config.parallelism == 4

    def test_batched_slide_must_tile_into_batches(self):
        with pytest.raises(PlanError, match="whole multiple of the batch interval"):
            build_plan(
                query=QUERY,
                engine="batched",
                strategy="oasrs",
                window=WindowConfig(5.0, 2.5),
                config=SystemConfig(batch_interval=2.0),
            )

    def test_with_source_rebinds_only_the_source(self, stream):
        plan = build_plan(query=QUERY, engine="direct", strategy="oasrs")
        rebound = plan.with_source(ListSource(stream))
        assert rebound.source.events() is stream
        assert rebound.strategy == plan.strategy and rebound.engine == plan.engine


class TestStrategyRegistry:
    def test_builtin_strategies_registered(self):
        assert available_strategies() == ["none", "oasrs", "srs", "sts"]

    def test_only_oasrs_shards_and_samples_intervals(self):
        for name in available_strategies():
            strat = get_strategy(name)
            assert strat.supports_parallelism == (name == "oasrs")
            assert strat.samples_intervals == (name == "oasrs")

    def test_custom_strategy_registers_and_runs(self, stream):
        from repro.runtime import register_strategy
        from repro.runtime.strategies import _REGISTRY, BoundStrategy

        @register_strategy
        class KeepAllStrategy(SamplingStrategy):
            name = "keep-all-test"
            engines = frozenset({"batched"})

            def bind(self, plan):
                outer = self

                class _Bound(BoundStrategy):
                    def sample_batch(self, ctx, items):
                        ctx.rdd_of(items).process_all()
                        return full_weight_sample(items, plan.query.key_fn)

                return _Bound(outer, plan)

        try:
            plan = build_plan(
                query=QUERY, window=WINDOW, engine="batched",
                strategy="keep-all-test", source=ListSource(stream),
            )
            results, cluster = execute_plan(plan)
            assert results and cluster.elapsed() > 0
            # Full-weight strata: exact estimation, zero-width bounds.
            assert all(r.error.margin == pytest.approx(0.0) for r in results)
        finally:
            _REGISTRY.pop("keep-all-test", None)


class TestChunkedEverywhere:
    """chunk_size now applies to every system (satellite: no silent ignore)."""

    @pytest.mark.parametrize("cls", [SparkSRSSystem, SparkSTSSystem])
    def test_chunked_spark_baselines_stay_accurate(self, stream, cls):
        config = SystemConfig(sampling_fraction=0.5, chunk_size=512)
        report = cls(QUERY, WINDOW, config).run(stream)
        assert report.results
        for pane in report.results:
            assert pane.accuracy_loss is not None and pane.accuracy_loss < 0.25
            # A real sample was taken, not a full pass.
            assert 0 < pane.sampled_items < pane.total_items

    @pytest.mark.parametrize("cls", [SparkSRSSystem, SparkSTSSystem])
    def test_chunked_sample_sizes_match_per_item_sizes(self, stream, cls):
        base = cls(QUERY, WINDOW, SystemConfig(sampling_fraction=0.4)).run(stream)
        chunked = cls(
            QUERY, WINDOW, SystemConfig(sampling_fraction=0.4, chunk_size=256)
        ).run(stream)
        for a, b in zip(base.results, chunked.results):
            assert a.total_items == b.total_items
            # Exact-size samplers: deterministic sample sizes either path.
            assert a.sampled_items == pytest.approx(b.sampled_items, rel=0.02)


class TestParallelismEverywhere:
    """parallelism shards every OASRS system's interval sampling."""

    @pytest.mark.parametrize(
        "cls",
        [SparkStreamApproxSystem, FlinkStreamApproxSystem, NativeStreamApproxSystem],
    )
    def test_sharded_run_stays_accurate(self, stream, cls, monkeypatch):
        # In-process shard fallback keeps the test fast and deterministic
        # while exercising the exact same partition/merge path.
        monkeypatch.setenv("REPRO_NO_MP", "1")
        config = SystemConfig(sampling_fraction=0.5, parallelism=3)
        report = cls(QUERY, WINDOW, config).run(stream)
        assert report.results
        assert report.mean_accuracy_loss() < 0.1
        for pane in report.results:
            assert 0 < pane.sampled_items < pane.total_items


class TestStrataHint:
    """The interval engines' stratum-count hint scans a bounded prefix.

    Documented behavior (see `_strata_hint`): the hint seeds only the
    *first* interval's equal budget split; water-filling re-derives
    capacities from real counters at every interval close.  The pre-runtime
    pipelined system scanned the whole stream for this hint — the cap is a
    deliberate O(n)-scan removal, pinned here so the tradeoff stays
    visible.
    """

    def test_prefix_cap_excludes_late_strata(self):
        from repro.runtime.driver import _STRATA_HINT_PREFIX, _strata_hint

        late = [(i / 1000.0, ("A" if i % 2 else "B", 1.0)) for i in range(25_000)]
        late.append((26.0, ("D", 1.0)))  # first appears after the prefix
        assert _strata_hint(late, KEY) == 2
        early = late[: _STRATA_HINT_PREFIX - 1] + [late[-1]]
        assert _strata_hint(early, KEY) == 3

    def test_late_stratum_still_sampled(self):
        """The hint shapes only the first split — a post-prefix stratum is
        still captured by its own reservoir once it arrives."""
        # A fills the first 10 s (past the 20k hint prefix); D then runs
        # 10 s → 16 s so the pane ending at 15 s fires before end-of-stream.
        stream = [(i / 2500.0, ("A", 1.0)) for i in range(25_000)]
        stream += [(10.0 + i / 400.0, ("D", 5.0)) for i in range(2_400)]
        report = FlinkStreamApproxSystem(
            StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean", group_fn=KEY),
            WindowConfig(5.0, 5.0),
            SystemConfig(sampling_fraction=0.3),
        ).run(stream)
        assert any("D" in pane.groups for pane in report.results)


class TestDirectDriver:
    def test_run_direct_reports_sampling_seconds(self, stream):
        plan = build_plan(
            query=QUERY, window=WINDOW, engine="direct", strategy="oasrs",
            config=SystemConfig(sampling_fraction=0.5),
            source=ListSource(stream),
        )
        results, cluster, sampling_seconds = run_direct(plan)
        assert results
        assert sampling_seconds > 0
        assert cluster.elapsed() > 0

    def test_empty_stream(self):
        plan = build_plan(
            query=QUERY, window=WINDOW, engine="direct", strategy="oasrs",
            source=ListSource([]),
        )
        results, _cluster, sampling_seconds = run_direct(plan)
        assert results == [] and sampling_seconds == 0.0


class TestBatchedHook:
    def test_handle_batch_subclass_runs_through_runtime(self, stream):
        class EchoSystem(BatchedSystem):
            name = "echo"

            def _handle_batch(self, ctx, items):
                ctx.rdd_of(items).process_all()
                return full_weight_sample(items, self.query.key_fn)

        report = EchoSystem(QUERY, WINDOW, SystemConfig()).run(stream)
        assert report.results
        for pane in report.results:
            assert pane.accuracy_loss == pytest.approx(0.0, abs=1e-9)

    def test_handle_batch_rejected_off_engine(self, stream):
        from repro.runtime.driver import run_pipelined

        plan = build_plan(
            query=QUERY, window=WINDOW, engine="pipelined", strategy="none",
            source=ListSource(stream),
        )
        with pytest.raises(PlanError, match="batched engine"):
            execute_plan(plan, handle_batch=lambda ctx, items: None)


class TestConfigValidation:
    """Constructor-time validation with clear messages (satellite task)."""

    def test_window_length_must_tile(self):
        with pytest.raises(ValueError, match="whole multiple of the slide"):
            WindowConfig(length=12.0, slide=5.0)

    def test_confidence_bounds(self):
        with pytest.raises(ValueError, match="confidence"):
            SystemConfig(confidence=1.0)
        with pytest.raises(ValueError, match="confidence"):
            SystemConfig(confidence=0.0)

    def test_chunk_and_parallelism_bounds(self):
        with pytest.raises(ValueError, match="chunk_size"):
            SystemConfig(chunk_size=-1)
        with pytest.raises(ValueError, match="parallelism"):
            SystemConfig(parallelism=0)

    def test_query_callables(self):
        with pytest.raises(ValueError, match="key_fn"):
            StreamQuery(key_fn="source", value_fn=VAL)
        with pytest.raises(ValueError, match="value_fn"):
            StreamQuery(key_fn=KEY, value_fn=3.0)
        with pytest.raises(ValueError, match="group_fn"):
            StreamQuery(key_fn=KEY, value_fn=VAL, group_fn="borough")
