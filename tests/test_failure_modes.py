"""Failure-injection and edge-case tests across the stack.

Streams in production are never clean: they go empty, stall, carry a
single item, or a single stratum; configurations get set to their
extremes.  Every system and substrate must degrade predictably — exact
answers where possible, empty-but-valid reports otherwise, and loud
errors for genuinely invalid input.
"""

import random

import pytest

from repro.core.oasrs import FixedPerStratum, OASRSSampler, WaterFillingAllocation, oasrs_sample
from repro.core.query import approximate_mean, approximate_sum
from repro.engine.batched.dstream import Batcher, SlidingWindower
from repro.engine.cluster import SimulatedCluster
from repro.engine.pipelined.dataflow import Pipeline
from repro.system import (
    ALL_SYSTEMS,
    FlinkStreamApproxSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)

KEY = lambda it: it[0]  # noqa: E731
VAL = lambda it: it[1]  # noqa: E731
QUERY = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean")
WINDOW = WindowConfig(10.0, 5.0)


class TestEmptyStreams:
    @pytest.mark.parametrize("name", sorted(ALL_SYSTEMS))
    def test_every_system_survives_empty_stream(self, name):
        report = ALL_SYSTEMS[name](QUERY, WINDOW, SystemConfig()).run([])
        assert report.results == []
        assert report.items_total == 0
        assert report.throughput == 0.0
        assert report.mean_accuracy_loss() == 0.0

    def test_empty_interval_sampler(self):
        sampler = OASRSSampler(FixedPerStratum(5), key_fn=KEY, rng=random.Random(0))
        sample = sampler.close_interval()
        assert len(sample) == 0
        assert approximate_sum(sample).value == 0.0

    def test_pipeline_empty_stream(self):
        out = Pipeline(SimulatedCluster()).sink_collect().run([])
        assert out == []


class TestSingleItemStreams:
    @pytest.mark.parametrize(
        "cls", [SparkStreamApproxSystem, FlinkStreamApproxSystem]
    )
    def test_single_item(self, cls):
        report = cls(QUERY, WINDOW, SystemConfig()).run([(0.5, ("A", 7.0))])
        # A one-item stream has no pane boundary; either zero panes or one
        # exact pane is acceptable — never a crash or a wrong value.
        for pane in report.results:
            assert pane.estimate == pytest.approx(7.0)

    def test_single_stratum_single_item_weight_one(self):
        sample = oasrs_sample([("A", 1.0)], 5, key_fn=KEY, rng=random.Random(0))
        assert sample["A"].weight == 1.0
        bound_value = approximate_mean(sample, VAL).value
        assert bound_value == pytest.approx(1.0)


class TestStalls:
    def test_long_silence_between_items(self):
        """A stream gap spanning many windows must not break pane algebra."""
        stream = [(1.0, ("A", 1.0)), (1.5, ("A", 3.0)), (60.0, ("A", 5.0))]
        report = SparkStreamApproxSystem(QUERY, WINDOW, SystemConfig()).run(stream)
        by_end = {r.end: r for r in report.results}
        # The early pane sampled from {1.0, 3.0}; its estimate must stay in
        # the convex hull of the observed values.
        assert by_end[5.0].total_items == 2
        assert 1.0 <= by_end[5.0].estimate <= 3.0
        # Panes fully inside the silence carry no data.
        assert by_end[30.0].total_items == 0

    def test_batcher_emits_empty_batches_through_gap(self):
        batches = list(Batcher(1.0).batches([(0.5, "a"), (10.5, "b")]))
        assert len(batches) == 11
        assert sum(len(b) for b in batches) == 2


class TestExtremeConfigurations:
    def test_fraction_one_is_near_exact(self):
        """At fraction 1.0 the adaptive allocator lags one interval behind
        growing batch sizes, so the first panes may drop an item or two;
        once counts stabilise, panes are exactly the input."""
        stream = [(0.1 * i, ("A", float(i % 13))) for i in range(1, 400)]
        report = SparkStreamApproxSystem(
            QUERY, WINDOW, SystemConfig(sampling_fraction=1.0)
        ).run(stream)
        for pane in report.results:
            assert pane.accuracy_loss < 0.02
        for pane in report.results[2:]:
            assert pane.accuracy_loss == pytest.approx(0.0, abs=1e-9)

    def test_tumbling_window(self):
        stream = [(0.1 * i, ("A", 1.0)) for i in range(1, 400)]
        report = SparkStreamApproxSystem(
            QUERY, WindowConfig(5.0, 5.0), SystemConfig()
        ).run(stream)
        assert report.results

    def test_tiny_budget_never_zero_capacity(self):
        policy = WaterFillingAllocation(1, expected_strata=5)
        assert policy.capacity_for("x", 5) >= 1
        policy.observe({"a": 1000, "b": 1000, "c": 1000})
        assert all(v >= 1 for v in policy._capacities.values())

    def test_many_strata_few_items(self):
        items = [(f"s{i}", float(i)) for i in range(500)]  # every item unique stratum
        sample = oasrs_sample(items, 2, key_fn=KEY, rng=random.Random(1))
        assert len(sample) == 500
        assert all(s.weight == 1.0 for s in sample)
        assert approximate_sum(sample, VAL).value == pytest.approx(
            sum(v for _k, v in items)
        )


class TestInvalidInput:
    def test_out_of_order_rejected_by_pipeline(self):
        p = Pipeline(SimulatedCluster()).sink_collect()
        with pytest.raises(ValueError):
            p.run([(2.0, "a"), (1.0, "b")])

    def test_pre_start_timestamp_rejected_by_batcher(self):
        with pytest.raises(ValueError):
            list(Batcher(1.0, start=10.0).batches([(5.0, "x")]))

    def test_window_not_multiple_of_batch(self):
        with pytest.raises(ValueError):
            SlidingWindower(10.0, 3.0, 2.0)

    def test_system_slide_not_multiple_of_interval(self):
        stream = [(0.5, ("A", 1.0)), (6.0, ("A", 2.0))]
        system = SparkStreamApproxSystem(
            QUERY, WindowConfig(10.0, 5.0), SystemConfig(batch_interval=0.4)
        )
        with pytest.raises(ValueError):
            system.run(stream)


class TestNumericEdges:
    def test_zero_valued_stream(self):
        stream = [(0.1 * i, ("A", 0.0)) for i in range(1, 300)]
        report = SparkStreamApproxSystem(QUERY, WINDOW, SystemConfig()).run(stream)
        for pane in report.results:
            assert pane.estimate == 0.0
            # accuracy_loss is undefined against an exact 0 (None, not inf).
            assert pane.accuracy_loss is None

    def test_negative_values(self):
        rng = random.Random(2)
        stream = [(0.01 * i, ("A", rng.gauss(-100, 5))) for i in range(1, 2000)]
        report = SparkStreamApproxSystem(QUERY, WINDOW, SystemConfig()).run(stream)
        for pane in report.results:
            assert pane.accuracy_loss < 0.05

    def test_huge_values_no_overflow(self):
        stream = [(0.01 * i, ("A", 1e15)) for i in range(1, 1000)]
        sample = oasrs_sample([it for _ts, it in stream], 50, key_fn=KEY, rng=random.Random(3))
        est = approximate_sum(sample, VAL).value
        assert est == pytest.approx(999 * 1e15, rel=1e-9)
