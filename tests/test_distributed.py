"""Tests for synchronization-free distributed OASRS (§3.2)."""

import random
import statistics

import pytest

from repro.core.distributed import DistributedOASRS
from repro.core.oasrs import FixedPerStratum, oasrs_sample
from repro.core.query import approximate_sum

KEY = lambda item: item[0]  # noqa: E731
VAL = lambda item: item[1]  # noqa: E731


def make_stream(spec, seed=0):
    rng = random.Random(seed)
    items = []
    for key, n in spec.items():
        items.extend((key, rng.gauss(100, 10)) for _ in range(n))
    rng.shuffle(items)
    return items


class TestConstruction:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            DistributedOASRS(0, FixedPerStratum(5), key_fn=KEY)

    def test_round_robin_routing(self):
        d = DistributedOASRS(3, FixedPerStratum(5), key_fn=KEY, rng=random.Random(0))
        assigned = [d.offer(("a", i)) for i in range(6)]
        assert assigned == [0, 1, 2, 0, 1, 2]

    def test_custom_route_fn(self):
        d = DistributedOASRS(
            2, FixedPerStratum(5), key_fn=KEY, rng=random.Random(0),
            route_fn=lambda item, idx: hash(item[0]),
        )
        w1 = d.offer(("a", 1))
        w2 = d.offer(("a", 2))
        assert w1 == w2  # same key → same worker under the hash partitioner


class TestMergeSemantics:
    def test_counters_sum_across_workers(self):
        d = DistributedOASRS(4, FixedPerStratum(10), key_fn=KEY, rng=random.Random(1))
        d.offer_many(make_stream({"a": 100, "b": 7}))
        merged = d.close_interval()
        assert merged["a"].count == 100
        assert merged["b"].count == 7

    def test_per_worker_capacity_is_global_over_w(self):
        """Each worker's reservoir is ⌈N/w⌉, so the merge is ≈ N items."""
        d = DistributedOASRS(4, FixedPerStratum(20), key_fn=KEY, rng=random.Random(2))
        d.offer_many(make_stream({"a": 10_000}))
        merged = d.close_interval()
        assert merged["a"].sample_size == 20  # 4 workers × 5 each

    def test_underfull_stratum_entirely_kept(self):
        d = DistributedOASRS(4, FixedPerStratum(100), key_fn=KEY, rng=random.Random(3))
        d.offer_many(make_stream({"rare": 3}))
        merged = d.close_interval()
        assert merged["rare"].sample_size == 3
        assert merged["rare"].weight == 1.0

    def test_interval_reset(self):
        d = DistributedOASRS(2, FixedPerStratum(5), key_fn=KEY, rng=random.Random(4))
        d.offer_many(make_stream({"a": 50}))
        d.close_interval()
        second = d.close_interval()
        assert second.total_count == 0

    def test_rare_stratum_survives_distribution(self):
        """Distribution must not reintroduce the overlooked-stratum problem."""
        stream = make_stream({"big": 50_000, "rare": 2})
        d = DistributedOASRS(8, FixedPerStratum(16), key_fn=KEY, rng=random.Random(5))
        d.offer_many(stream)
        merged = d.close_interval()
        assert "rare" in merged
        assert merged["rare"].sample_size == 2


class TestStatisticalEquivalence:
    def test_distributed_matches_single_reservoir_estimates(self):
        """w local reservoirs of N/w estimate as well as one of N (ablation)."""
        stream = make_stream({"a": 3000, "b": 300}, seed=10)
        truth = sum(v for _k, v in stream)

        def relative_errors(estimator, trials=60):
            errors = []
            for seed in range(trials):
                sample = estimator(seed)
                est = approximate_sum(sample, VAL).value
                errors.append(abs(est - truth) / truth)
            return errors

        def single(seed):
            return oasrs_sample(stream, 64, key_fn=KEY, rng=random.Random(seed))

        def distributed(seed):
            d = DistributedOASRS(4, FixedPerStratum(64), key_fn=KEY, rng=random.Random(seed))
            d.offer_many(stream)
            return d.close_interval()

        err_single = statistics.fmean(relative_errors(single))
        err_dist = statistics.fmean(relative_errors(distributed))
        # Mean relative errors should be comparable (within 2× of each other).
        assert err_dist < max(2.5 * err_single, 0.05)

    def test_convenience_constructor(self):
        d = DistributedOASRS.with_fixed_reservoirs(2, 5, key_fn=KEY, rng=random.Random(0))
        d.offer_many(make_stream({"a": 20}))
        assert d.close_interval()["a"].count == 20
