"""Tests for the real multi-process `ShardedExecutor` (§3.2 on actual cores).

Covers the merge-weight semantics (counters sum, reservoirs concatenate,
Equation-1 weights re-derive), the process/fallback execution modes, and
the accuracy acceptance bar: 4 sharded workers estimate within the same
error bounds as single-process OASRS on the synthetic workload.
"""

import os
import random
import statistics

import pytest

from repro.core.distributed import ShardedExecutor
from repro.core.oasrs import FixedPerStratum, WaterFillingAllocation, oasrs_sample
from repro.core.query import approximate_mean
from repro.core.error import estimate_error

KEY = lambda item: item[0]  # noqa: E731
VAL = lambda item: item[1]  # noqa: E731


def make_stream(spec, seed=0):
    rng = random.Random(seed)
    items = []
    for key, n in spec.items():
        items.extend((key, rng.gauss(100, 10)) for _ in range(n))
    rng.shuffle(items)
    return items


class TestConstruction:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardedExecutor(0, FixedPerStratum(5), key_fn=KEY)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardedExecutor(2, FixedPerStratum(5), key_fn=KEY, chunk_size=0)


class TestMergeWeights:
    """The Equation-1 merge: counts add, samples concatenate, W re-derives."""

    def test_counters_sum_across_shards(self):
        ex = ShardedExecutor(4, FixedPerStratum(10), key_fn=KEY, seed=1)
        merged = ex.run(make_stream({"a": 100, "b": 7}))
        assert merged["a"].count == 100
        assert merged["b"].count == 7

    def test_weight_is_count_over_sample_size(self):
        ex = ShardedExecutor(4, FixedPerStratum(20), key_fn=KEY, seed=2)
        merged = ex.run(make_stream({"a": 10_000}))
        stratum = merged["a"]
        # ⌈20/4⌉ = 5 per worker ⇒ 20 kept in the merge.
        assert stratum.sample_size == 20
        assert stratum.weight == pytest.approx(stratum.count / stratum.sample_size)

    def test_underfull_stratum_weight_one(self):
        ex = ShardedExecutor(4, FixedPerStratum(100), key_fn=KEY, seed=3)
        merged = ex.run(make_stream({"rare": 3}))
        assert merged["rare"].sample_size == 3
        assert merged["rare"].weight == 1.0

    def test_rare_stratum_survives_sharding(self):
        stream = make_stream({"big": 40_000, "rare": 2})
        ex = ShardedExecutor(4, FixedPerStratum(16), key_fn=KEY, seed=4)
        merged = ex.run(stream)
        assert "rare" in merged
        assert merged["rare"].sample_size == 2

    def test_custom_route_fn(self):
        stream = make_stream({"a": 200, "b": 200}, seed=5)
        ex = ShardedExecutor(
            2,
            FixedPerStratum(10),
            key_fn=KEY,
            seed=5,
            route_fn=lambda item, index: 0 if item[0] == "a" else 1,
        )
        merged = ex.run(stream)
        assert merged["a"].count == 200
        assert merged["b"].count == 200


class TestExecutionModes:
    def test_multiprocess_path_used_when_available(self):
        ex = ShardedExecutor(4, FixedPerStratum(10), key_fn=KEY, seed=6)
        ex.run(make_stream({"a": 2000}))
        if ex._fork_available():
            assert ex.last_run_parallel

    def test_inline_fallback_with_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MP", "1")
        ex = ShardedExecutor(4, FixedPerStratum(10), key_fn=KEY, seed=7)
        merged = ex.run(make_stream({"a": 2000}))
        assert not ex.last_run_parallel
        assert merged["a"].count == 2000

    def test_single_worker_runs_inline(self):
        ex = ShardedExecutor(1, FixedPerStratum(10), key_fn=KEY, seed=8)
        merged = ex.run(make_stream({"a": 500}))
        assert not ex.last_run_parallel
        assert merged["a"].count == 500

    def test_inline_and_parallel_same_distribution(self, monkeypatch):
        """Same seeds ⇒ identical samples whether forked or inline."""
        stream = make_stream({"a": 5000, "b": 100}, seed=9)
        ex_mp = ShardedExecutor(4, FixedPerStratum(32), key_fn=KEY, seed=9)
        sample_mp = ex_mp.run(stream)
        monkeypatch.setenv("REPRO_NO_MP", "1")
        ex_inline = ShardedExecutor(4, FixedPerStratum(32), key_fn=KEY, seed=9)
        sample_inline = ex_inline.run(stream)
        for key in sample_mp.keys:
            assert sample_mp[key].items == sample_inline[key].items
            assert sample_mp[key].count == sample_inline[key].count

    def test_adaptive_policy_observes_merged_counts(self):
        policy = WaterFillingAllocation(200)
        ex = ShardedExecutor(4, policy, key_fn=KEY, seed=10)
        ex.run(make_stream({"a": 3000, "b": 300}, seed=10))
        assert policy._capacities  # rebalanced from the merged counters


class TestAccuracy:
    def test_sharded_within_single_process_error_bounds(self):
        """4 real workers estimate the synthetic stream as well as 1 process."""
        stream = make_stream({"a": 6000, "b": 600, "c": 30}, seed=20)
        truth = statistics.fmean(v for _k, v in stream)

        def sharded(seed):
            ex = ShardedExecutor(4, FixedPerStratum(64), key_fn=KEY, seed=seed)
            return ex.run(stream)

        def single(seed):
            return oasrs_sample(stream, 64, key_fn=KEY, rng=random.Random(seed))

        def losses(estimator, trials=25):
            out = []
            for seed in range(trials):
                sample = estimator(seed)
                est = approximate_mean(sample, VAL).value
                out.append(abs(est - truth) / truth)
            return out

        loss_sharded = statistics.fmean(losses(sharded))
        loss_single = statistics.fmean(losses(single))
        assert loss_sharded < 0.05
        assert loss_sharded < max(2.5 * loss_single, 0.02)

    def test_estimate_within_error_bound(self):
        """The rigorous ±bound of the merged sample covers the true mean."""
        stream = make_stream({"a": 6000, "b": 600}, seed=30)
        truth = statistics.fmean(v for _k, v in stream)
        covered = 0
        trials = 20
        for seed in range(trials):
            ex = ShardedExecutor(4, FixedPerStratum(128), key_fn=KEY, seed=seed)
            sample = ex.run(stream)
            result = approximate_mean(sample, VAL)
            bound = estimate_error(result, confidence=0.95)
            if abs(result.value - truth) <= bound.margin:
                covered += 1
        # 95% nominal coverage; allow slack for the small trial count.
        assert covered >= int(0.8 * trials)
