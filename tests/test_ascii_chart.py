"""Tests for the ASCII chart renderers."""

import pytest

from repro.metrics.ascii_chart import bar_chart, line_chart


class TestLineChart:
    def test_empty(self):
        assert "(no data)" in line_chart({})
        assert "(no data)" in line_chart({"s": []})

    def test_size_validation(self):
        with pytest.raises(ValueError):
            line_chart({"s": [(0, 1)]}, width=4)
        with pytest.raises(ValueError):
            line_chart({"s": [(0, 1)]}, height=2)

    def test_renders_title_and_legend(self):
        chart = line_chart(
            {"alpha": [(0, 0), (1, 1)], "beta": [(0, 1), (1, 0)]},
            title="demo",
        )
        assert chart.startswith("demo")
        assert "* alpha" in chart
        assert "+ beta" in chart

    def test_axis_labels_show_extremes(self):
        chart = line_chart({"s": [(0.0, 10.0), (5.0, 200.0)]})
        assert "200" in chart
        assert "10" in chart

    def test_high_point_in_top_row_low_in_bottom(self):
        chart = line_chart({"s": [(0.0, 0.0), (1.0, 100.0)]}, width=20, height=6)
        rows = [l for l in chart.splitlines() if "┤" in l or "│" in l]
        assert "*" in rows[0]  # max value row
        assert "*" in rows[-1]  # min value row

    def test_constant_series(self):
        chart = line_chart({"s": [(0.0, 5.0), (1.0, 5.0)]})
        assert "*" in chart


class TestBarChart:
    def test_empty(self):
        assert "(no data)" in bar_chart({})

    def test_width_validation(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=4)

    def test_bars_scale_to_peak(self):
        chart = bar_chart({"big": 100.0, "small": 10.0}, width=40)
        lines = {l.split("│")[0].strip(): l for l in chart.splitlines() if "│" in l}
        assert lines["big"].count("█") > lines["small"].count("█")

    def test_values_printed(self):
        chart = bar_chart({"x": 1234.0}, unit=" items/s")
        assert "1,234" in chart
        assert "items/s" in chart

    def test_zero_values(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart and "b" in chart

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="speeds").startswith("speeds")
