"""Unit and property tests for classic reservoir sampling (Algorithm 1)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reservoir import Reservoir, reservoir_sample


class TestReservoirBasics:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            Reservoir(0)
        with pytest.raises(ValueError):
            Reservoir(-3)

    def test_fills_up_to_capacity_in_order(self):
        r = Reservoir(5, rng=random.Random(0))
        for x in range(5):
            assert r.offer(x) is True
        assert r.items == [0, 1, 2, 3, 4]

    def test_short_stream_kept_entirely(self):
        r = Reservoir(100, rng=random.Random(0))
        r.extend(range(10))
        assert sorted(r.items) == list(range(10))
        assert r.seen == 10
        assert not r.is_saturated()

    def test_never_exceeds_capacity(self):
        r = Reservoir(7, rng=random.Random(1))
        r.extend(range(1000))
        assert len(r) == 7
        assert r.seen == 1000
        assert r.is_saturated()

    def test_items_returns_copy(self):
        r = Reservoir(3, rng=random.Random(0))
        r.extend(range(3))
        snapshot = r.items
        snapshot.append(99)
        assert len(r) == 3

    def test_reset_clears_state(self):
        r = Reservoir(3, rng=random.Random(0))
        r.extend(range(50))
        r.reset()
        assert len(r) == 0
        assert r.seen == 0

    def test_iteration_and_len(self):
        r = Reservoir(4, rng=random.Random(2))
        r.extend("abcdefg")
        assert len(list(r)) == len(r) == 4

    def test_sampled_items_come_from_stream(self):
        r = Reservoir(10, rng=random.Random(3))
        universe = set(range(500))
        r.extend(universe)
        assert set(r.items) <= universe


class TestReservoirStatistics:
    def test_uniform_inclusion_probability(self):
        """Every item should appear with probability ≈ capacity / n."""
        capacity, n, trials = 5, 50, 4000
        counts = Counter()
        rng = random.Random(42)
        for _ in range(trials):
            counts.update(reservoir_sample(range(n), capacity, rng=rng))
        expected = trials * capacity / n
        for x in range(n):
            # Each count is Binomial(trials, capacity/n): sd ≈ 19; allow 5 sd.
            assert abs(counts[x] - expected) < 5 * (expected * (1 - capacity / n)) ** 0.5

    def test_deterministic_given_seed(self):
        a = reservoir_sample(range(100), 10, rng=random.Random(7))
        b = reservoir_sample(range(100), 10, rng=random.Random(7))
        assert a == b

    def test_different_seeds_differ(self):
        a = reservoir_sample(range(1000), 10, rng=random.Random(1))
        b = reservoir_sample(range(1000), 10, rng=random.Random(2))
        assert a != b


@settings(max_examples=60)
@given(
    capacity=st.integers(min_value=1, max_value=40),
    n=st.integers(min_value=0, max_value=400),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_size_invariant(capacity, n, seed):
    """|sample| == min(capacity, n) for any stream length."""
    sample = reservoir_sample(range(n), capacity, rng=random.Random(seed))
    assert len(sample) == min(capacity, n)
    assert set(sample) <= set(range(n))


@settings(max_examples=40)
@given(
    items=st.lists(st.integers(), min_size=0, max_size=200),
    capacity=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_sample_multiset_subset(items, capacity, seed):
    """The sample is a sub-multiset of the stream (duplicates respected)."""
    sample = reservoir_sample(items, capacity, rng=random.Random(seed))
    stream_counts = Counter(items)
    for value, count in Counter(sample).items():
        assert count <= stream_counts[value]


@settings(max_examples=40)
@given(
    n=st.integers(min_value=1, max_value=300),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_seen_counter_tracks_stream(n, seed):
    r = Reservoir(5, rng=random.Random(seed))
    r.extend(range(n))
    assert r.seen == n
