"""Smoke tests: every shipped example runs to completion and prints results.

Examples are documentation that executes; if one breaks, the README's
promises break with it.  Each is imported as a module and its ``main()``
exercised under captured stdout.
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_example(name: str) -> str:
    module = load_example(name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


def test_examples_discovered():
    assert len(EXAMPLES) >= 4  # quickstart + ≥3 domain examples


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    assert len(output.splitlines()) >= 5  # produced a real report


def test_quickstart_shows_error_bounds():
    output = run_example("quickstart.py")
    assert "±" in output
    assert "throughput" in output


def test_network_monitoring_reports_speedup():
    output = run_example("network_monitoring.py")
    assert "speedup" in output
    assert "ICMP" in output  # the rare stratum made it into the report


def test_taxi_example_shows_srs_misses():
    output = run_example("taxi_analytics.py")
    assert "SRS lost at least one borough" in output
    assert "StreamApprox" in output


def test_iot_example_learns_structure():
    output = run_example("iot_unlabeled_stream.py")
    assert "mixture centres" in output
    assert "tighter" in output


def test_budgeted_query_converges():
    output = run_example("budgeted_query.py")
    assert "converged" in output
    assert "AccuracyBudget" in output
