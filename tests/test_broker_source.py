"""Broker-as-source integration: aggregator ingestion feeds every system.

The same query run from an in-memory list and from an `repro.aggregator`
topic (drained through a plain consumer or a consumer group) must produce
identical panes — the tentpole property that Kafka-style ingestion works
with every system through the runtime's `TopicSource`.
"""

import pytest

from repro.aggregator.broker import Broker
from repro.aggregator.producer import Producer
from repro.runtime import ListSource, TopicSource
from repro.system import (
    ALL_SYSTEMS,
    FlinkStreamApproxSystem,
    NativeStreamApproxSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.workloads.synthetic import stream_by_rates

KEY = lambda it: it[0]  # noqa: E731
VAL = lambda it: it[1]  # noqa: E731

QUERY = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean")
WINDOW = WindowConfig(10.0, 5.0)


@pytest.fixture(scope="module")
def stream():
    # Deliberately keep the (rounded) timestamp ties this workload produces:
    # the broker's topic-global sequence number must recover the exact
    # production order across partitions even when timestamps collide.
    raw = stream_by_rates({"A": 1200, "B": 300, "C": 25}, duration=12, seed=9)
    assert any(a[0] == b[0] for a, b in zip(raw, raw[1:])), "want tied timestamps"
    return raw


@pytest.fixture(scope="module")
def broker(stream):
    broker = Broker()
    broker.create_topic("events", num_partitions=4)
    producer = Producer(broker, "events")
    for timestamp, item in stream:
        producer.send(timestamp, item, key=KEY(item))
    return broker


def fingerprint(report):
    return [
        (r.end, r.estimate, r.exact, r.sampled_items, r.total_items,
         r.error.margin if r.error else None, sorted(r.groups.items()))
        for r in report.results
    ]


class TestTopicSourceOrdering:
    def test_plain_consumer_recovers_production_order(self, stream, broker):
        assert TopicSource(broker, "events").events() == stream

    @pytest.mark.parametrize("members", [1, 2, 4])
    def test_consumer_group_recovers_production_order(self, stream, broker, members):
        source = TopicSource(
            broker, "events", group_id=f"order-{members}", members=members
        )
        assert source.events() == stream

    def test_plain_consumer_rewinds_between_runs(self, stream, broker):
        source = TopicSource(broker, "events")
        assert source.events() == stream
        assert source.events() == stream  # second drain sees the full topic

    def test_group_rewinds_between_runs_by_default(self, stream, broker):
        source = TopicSource(broker, "events", group_id="rewound", members=2)
        assert source.events() == stream
        assert source.events() == stream  # rewind resets group offsets

    def test_group_offsets_advance_without_rewind(self, stream, broker):
        source = TopicSource(
            broker, "events", group_id="once", members=2, rewind=False
        )
        assert source.events() == stream
        assert source.events() == []  # group offsets are committed


class TestIdenticalPanes:
    """Same query, list vs topic (via consumer group): identical panes."""

    @pytest.mark.parametrize("name", sorted(ALL_SYSTEMS))
    def test_every_system_matches_list_execution(self, stream, broker, name):
        cls = ALL_SYSTEMS[name]
        config = SystemConfig(sampling_fraction=0.5, seed=13)
        from_list = cls(QUERY, WINDOW, config).run(ListSource(stream))
        from_topic = cls(QUERY, WINDOW, config).run(
            TopicSource(broker, "events", group_id=f"panes-{name}", members=2)
        )
        assert fingerprint(from_topic) == fingerprint(from_list)
        assert from_topic.items_total == from_list.items_total
        assert from_topic.virtual_seconds == pytest.approx(from_list.virtual_seconds)

    def test_direct_engine_matches_list_execution(self, stream, broker):
        config = SystemConfig(sampling_fraction=0.5, seed=13)
        from_list = NativeStreamApproxSystem(QUERY, WINDOW, config).run(stream)
        from_topic = NativeStreamApproxSystem(QUERY, WINDOW, config).run(
            TopicSource(broker, "events", group_id="panes-direct", members=3)
        )
        assert fingerprint(from_topic) == fingerprint(from_list)

    def test_grouped_query_matches_through_group(self, stream, broker):
        query = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean", group_fn=KEY)
        config = SystemConfig(sampling_fraction=0.5, seed=13)
        for cls, group in (
            (SparkStreamApproxSystem, "grp-spark"),
            (FlinkStreamApproxSystem, "grp-flink"),
        ):
            from_list = cls(query, WINDOW, config).run(stream)
            from_topic = cls(query, WINDOW, config).run(
                TopicSource(broker, "events", group_id=group, members=2)
            )
            assert fingerprint(from_topic) == fingerprint(from_list)
