"""Tests for the Spark-style stratified sampling baseline (sampleByKey)."""

import random

import pytest

from repro.sampling.sts import StratifiedSampler

KEY = lambda item: item[0]  # noqa: E731


def make_batch(spec):
    batch = []
    for key, n in spec.items():
        batch.extend((key, float(i)) for i in range(n))
    return batch


class TestValidation:
    def test_workers_positive(self):
        with pytest.raises(ValueError):
            StratifiedSampler(workers=0)

    def test_fraction_bounds(self):
        sampler = StratifiedSampler(rng=random.Random(0))
        with pytest.raises(ValueError):
            sampler.sample_by_key(make_batch({"a": 10}), KEY, 1.5)


class TestExactVariant:
    def test_exact_per_stratum_sizes(self):
        sampler = StratifiedSampler(exact=True, rng=random.Random(1))
        result = sampler.sample_by_key(make_batch({"a": 100, "b": 50}), KEY, 0.2)
        kept_a, pop_a = result.per_stratum["a"]
        kept_b, pop_b = result.per_stratum["b"]
        assert (len(kept_a), pop_a) == (20, 100)
        assert (len(kept_b), pop_b) == (10, 50)

    def test_ceil_semantics(self):
        sampler = StratifiedSampler(exact=True, rng=random.Random(2))
        result = sampler.sample_by_key(make_batch({"a": 3}), KEY, 0.5)
        assert len(result.per_stratum["a"][0]) == 2  # ceil(1.5)

    def test_every_stratum_represented(self):
        """STS, like OASRS, never overlooks a stratum (its accuracy edge)."""
        sampler = StratifiedSampler(exact=True, rng=random.Random(3))
        result = sampler.sample_by_key(
            make_batch({"big": 10_000, "rare": 2}), KEY, 0.01
        )
        assert len(result.per_stratum["rare"][0]) >= 1

    def test_per_key_fraction_map(self):
        sampler = StratifiedSampler(exact=True, rng=random.Random(4))
        result = sampler.sample_by_key(
            make_batch({"a": 100, "b": 100}), KEY, {"a": 0.5, "b": 0.1}
        )
        assert len(result.per_stratum["a"][0]) == 50
        assert len(result.per_stratum["b"][0]) == 10

    def test_missing_key_in_map_gets_zero(self):
        """Spark requires fractions for known strata; unknown ones get none —
        the pre-defined-fraction limitation of §1."""
        sampler = StratifiedSampler(exact=True, rng=random.Random(5))
        result = sampler.sample_by_key(
            make_batch({"a": 10, "new": 10}), KEY, {"a": 0.5}
        )
        assert len(result.per_stratum["new"][0]) == 0


class TestApproxVariant:
    def test_approximate_sizes_near_target(self):
        sampler = StratifiedSampler(exact=False, rng=random.Random(6))
        result = sampler.sample_by_key(make_batch({"a": 10_000}), KEY, 0.3)
        kept, _pop = result.per_stratum["a"]
        assert abs(len(kept) - 3000) < 300  # Bernoulli noise

    def test_cheaper_profile_than_exact(self):
        batch = make_batch({"a": 1000, "b": 1000})
        exact = StratifiedSampler(exact=True, rng=random.Random(7)).sample_by_key(batch, KEY, 0.5)
        approx = StratifiedSampler(exact=False, rng=random.Random(7)).sample_by_key(batch, KEY, 0.5)
        assert approx.sort_work == 0.0
        assert exact.sync_barriers > approx.sync_barriers


class TestCostProfile:
    def test_groupby_shuffles_everything(self):
        sampler = StratifiedSampler(exact=True, rng=random.Random(8))
        batch = make_batch({"a": 500, "b": 500})
        result = sampler.sample_by_key(batch, KEY, 0.1)
        assert result.shuffled_items == 1000

    def test_barrier_per_stratum_plus_groupby(self):
        sampler = StratifiedSampler(exact=True, rng=random.Random(9))
        result = sampler.sample_by_key(make_batch({"a": 10, "b": 10, "c": 10}), KEY, 0.5)
        assert result.sync_barriers == 4  # groupBy + one per stratum

    def test_sort_work_positive_for_exact(self):
        sampler = StratifiedSampler(exact=True, rng=random.Random(10))
        result = sampler.sample_by_key(make_batch({"a": 10_000}), KEY, 0.5)
        assert result.sort_work > 0


class TestResultAccessors:
    def test_items_and_population(self):
        sampler = StratifiedSampler(exact=True, rng=random.Random(11))
        result = sampler.sample_by_key(make_batch({"a": 100, "b": 60}), KEY, 0.5)
        assert result.population == 160
        assert len(result.items) == 50 + 30

    def test_weights(self):
        sampler = StratifiedSampler(exact=True, rng=random.Random(12))
        result = sampler.sample_by_key(make_batch({"a": 100}), KEY, 0.25)
        assert result.weights()["a"] == pytest.approx(4.0)

    def test_weight_of_empty_stratum(self):
        sampler = StratifiedSampler(exact=True, rng=random.Random(13))
        result = sampler.sample_by_key(make_batch({"a": 10}), KEY, {"a": 0.0})
        assert result.weights()["a"] == 1.0


class TestProportionalFractions:
    def test_uniform_fraction_from_counts(self):
        sampler = StratifiedSampler()
        fractions = sampler.proportional_fractions({"a": 800, "b": 200}, total_sample=100)
        assert fractions["a"] == pytest.approx(0.1)
        assert fractions["b"] == pytest.approx(0.1)

    def test_empty_counts(self):
        sampler = StratifiedSampler()
        assert sampler.proportional_fractions({"a": 0}, 10) == {"a": 0.0}

    def test_fraction_capped_at_one(self):
        sampler = StratifiedSampler()
        fractions = sampler.proportional_fractions({"a": 10}, total_sample=100)
        assert fractions["a"] == 1.0
