"""Budget-driven adaptive execution through the unified runtime.

Covers the §4.2 control loop end to end — ``SystemConfig(budget=…)`` on
every engine/strategy combination, the planner's budget validation, the
adaptation trajectory surfaced on `SystemReport`, and the two regression
fixes that ride along (the `_interval_budget` fencepost and the
empty-micro-batch budget collapse in the OASRS batched role).
"""

import math

import pytest

from repro.core.budget import AccuracyBudget, LatencyBudget, ResourceBudget
from repro.core.strata import WeightedSample
from repro.engine.batched.context import StreamingContext
from repro.metrics.adaptation import (
    budget_series,
    convergence_interval,
    format_trajectory,
    margin_series,
)
from repro.runtime import PlanError, build_plan
from repro.runtime.driver import _interval_budget, _per_slide_items
from repro.runtime.strategies import get_strategy
from repro.system import (
    FlinkStreamApproxSystem,
    NativeFlinkSystem,
    NativeSparkSystem,
    NativeStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.workloads.drift import drifting_stream, rate_swap_schedule

QUERY = StreamQuery(
    key_fn=lambda it: it[0], value_fn=lambda it: it[1], kind="mean", name="t"
)
WINDOW = WindowConfig(length=10.0, slide=5.0)

SAMPLED = [
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
    NativeStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
]


def drift_stream(seed=3, high=2000, low=40, phase=15.0):
    return drifting_stream(rate_swap_schedule(high, low, phase), seed=seed)


# ---------------------------------------------------------------------------
# Satellite: the _interval_budget fencepost
# ---------------------------------------------------------------------------


class TestIntervalBudgetFencepost:
    def test_exactly_tiling_stream_budget_is_exact(self):
        """Regression: a stream of regular arrivals over a whole number of
        slides used to have its per-slide rate inflated by n/(n−1) — the
        observed span misses one inter-arrival gap — which inflated every
        derived sample budget.  10 items/s over [0, 10) with slide 5 is
        exactly 50 items per slide; at fraction 0.9 the budget must be
        int(0.9 · 50) = 45, not int(0.9 · 50.505…) = 45.45 → 45 … the
        effect shows at 10 items over [0, 10): 5 per slide, budget
        int(0.9 · 5) = 4, where the uncorrected estimate gave
        int(0.9 · 10·5/9) = 5."""
        stream = [(float(i), ("a", 1.0)) for i in range(10)]  # ts 0..9, span 9
        config = SystemConfig(sampling_fraction=0.9)
        assert _per_slide_items(stream, WINDOW) == pytest.approx(5.0)
        assert _interval_budget(stream, WINDOW, config) == 4

    def test_dense_tiling_stream(self):
        # 100 items at exact 0.1 steps over [0, 10): 50 per slide exactly.
        stream = [(i * 0.1, ("a", 1.0)) for i in range(100)]
        assert _per_slide_items(stream, WINDOW) == pytest.approx(50.0)
        config = SystemConfig(sampling_fraction=0.9)
        assert _interval_budget(stream, WINDOW, config) == 45

    def test_degenerate_streams_keep_legacy_semantics(self):
        config = SystemConfig(sampling_fraction=0.5)
        assert _interval_budget([], WINDOW, config) == 1
        assert _interval_budget([(3.0, ("a", 1.0))], WINDOW, config) == 1
        # All items at one timestamp: one interval's worth.
        burst = [(2.0, ("a", 1.0))] * 40
        assert _per_slide_items(burst, WINDOW) == 40.0

    def test_sub_slide_stream_clamped_to_population(self):
        # A stream shorter than one slide never claims more than n per slide.
        stream = [(i * 0.01, ("a", 1.0)) for i in range(20)]
        assert _per_slide_items(stream, WINDOW) == 20.0


# ---------------------------------------------------------------------------
# Satellite: empty micro-batches must not collapse the OASRS batch budget
# ---------------------------------------------------------------------------


class TestEmptyBatchGuard:
    def _bound(self, fraction=0.5):
        plan = build_plan(
            query=QUERY,
            window=WINDOW,
            config=SystemConfig(sampling_fraction=fraction),
            engine="batched",
            strategy="oasrs",
        )
        ctx = StreamingContext(batch_interval=1.0)
        return get_strategy("oasrs").bind(plan), ctx

    @staticmethod
    def _batch(n, offset=0):
        return [("a", float(i + offset)) for i in range(n)]

    def test_empty_batch_returns_empty_sample(self):
        bound, ctx = self._bound()
        sample = bound.sample_batch(ctx, [])
        assert isinstance(sample, WeightedSample)
        assert sample.total_count == 0 and sample.total_items == 0

    def test_empty_batch_does_not_starve_the_next_batch(self):
        """Regression: an empty batch set ``policy.total = 1``; the
        close-interval rebalance then rebuilt every reservoir at ~1 slot,
        so the next batch sampled ~1 item per stratum no matter its size."""
        bound, ctx = self._bound(fraction=0.5)
        first = bound.sample_batch(ctx, self._batch(1000))
        assert first.total_items >= 400  # sanity: ~fraction · batch
        bound.sample_batch(ctx, [])  # the quiet batch
        after = bound.sample_batch(ctx, self._batch(1000, offset=1000))
        assert after.total_items >= 400, (
            f"budget collapsed after an empty batch: kept {after.total_items}"
        )

    def test_empty_batch_charges_nothing(self):
        bound, ctx = self._bound()
        elapsed_before = ctx.cluster.elapsed()
        bound.sample_batch(ctx, [])
        assert ctx.cluster.elapsed() == elapsed_before


# ---------------------------------------------------------------------------
# Planner validation
# ---------------------------------------------------------------------------


class TestBudgetPlanValidation:
    def test_budget_requires_a_sampling_strategy(self):
        with pytest.raises(PlanError, match="requires a sampling strategy"):
            build_plan(
                query=QUERY,
                config=SystemConfig(budget=AccuracyBudget(target_margin=0.1)),
                engine="batched",
                strategy="none",
            )

    def test_confidence_mismatch_rejected(self):
        with pytest.raises(PlanError, match="confidence"):
            build_plan(
                query=QUERY,
                config=SystemConfig(
                    budget=AccuracyBudget(target_margin=0.1, confidence=0.99),
                    confidence=0.95,
                ),
                engine="batched",
                strategy="oasrs",
            )

    @pytest.mark.parametrize("budget", [
        AccuracyBudget(target_margin=0.1),
        LatencyBudget(max_seconds=0.5),
        ResourceBudget(workers=2),
    ])
    @pytest.mark.parametrize("engine,strategy", [
        ("batched", "srs"),
        ("batched", "sts"),
        ("batched", "oasrs"),
        ("pipelined", "oasrs"),
        ("direct", "oasrs"),
    ])
    def test_valid_budget_combinations_build(self, budget, engine, strategy):
        plan = build_plan(
            query=QUERY,
            config=SystemConfig(budget=budget),
            engine=engine,
            strategy=strategy,
        )
        assert plan.config.budget is budget

    def test_budget_type_validated_at_config_construction(self):
        with pytest.raises(ValueError, match="budget must be"):
            SystemConfig(budget=0.5)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# The control loop end to end
# ---------------------------------------------------------------------------


class TestBudgetDrivenExecution:
    @pytest.mark.parametrize("cls", SAMPLED, ids=lambda c: c.name)
    def test_accuracy_budget_adapts_and_records_trajectory(self, cls):
        stream = drift_stream()
        target = 0.5
        config = SystemConfig(
            sampling_fraction=0.05,  # deliberately starved seed
            budget=AccuracyBudget(target_margin=target),
        )
        report = cls(QUERY, WINDOW, config).run(stream)
        assert report.results, "no panes produced"
        assert len(report.adaptation) == len(report.results)
        # The loop grows from the starved seed: some later interval's budget
        # exceeds the first chosen one.
        budgets = [p.sample_budget for p in report.adaptation]
        assert max(budgets) > budgets[0]
        # …and the run ends meeting the target (reaches AND holds).
        assert convergence_interval(report, target) is not None

    def test_fixed_fraction_records_no_trajectory(self):
        report = NativeStreamApproxSystem(
            QUERY, WINDOW, SystemConfig(sampling_fraction=0.4)
        ).run(drift_stream())
        assert report.adaptation == []

    def test_latency_budget_caps_the_sample(self):
        stream = drift_stream()
        config = SystemConfig(budget=LatencyBudget(max_seconds=0.001))
        report = NativeStreamApproxSystem(QUERY, WINDOW, config).run(stream)
        # capacity = 0.001 s × 8 cores × 100 000 tokens/s = 800 items.
        for point in report.adaptation:
            assert point.sample_budget <= 800 * point.strata
        kept = [r.sampled_items for r in report.results[1:]]
        assert kept and max(kept) <= 2 * 800 * 3  # panes pool 2 intervals

    def test_resource_budget_scales_with_cores(self):
        stream = drift_stream()
        small = NativeStreamApproxSystem(
            QUERY, WINDOW,
            SystemConfig(budget=ResourceBudget(workers=1, cores_per_worker=1)),
        ).run(stream)
        # Budgets derive from capacity; more cores ⇒ at least as many samples.
        big = NativeStreamApproxSystem(
            QUERY, WINDOW,
            SystemConfig(budget=ResourceBudget(workers=4, cores_per_worker=2)),
        ).run(stream)
        assert sum(p.sample_budget for p in big.adaptation) >= sum(
            p.sample_budget for p in small.adaptation
        )

    def test_sharded_path_adapts_too(self):
        """parallelism > 1 routes the re-derived budget through the shared
        water-filling policy into the forked shard workers."""
        stream = drift_stream()
        target = 0.5
        config = SystemConfig(
            sampling_fraction=0.05,
            budget=AccuracyBudget(target_margin=target),
            parallelism=2,
        )
        report = NativeStreamApproxSystem(QUERY, WINDOW, config).run(stream)
        budgets = [p.sample_budget for p in report.adaptation]
        assert max(budgets) > budgets[0]
        assert convergence_interval(report, target) is not None

    def test_budget_via_execute_plan_log(self):
        from repro.runtime import ListSource, execute_plan

        stream = drift_stream()
        plan = build_plan(
            query=QUERY,
            window=WINDOW,
            config=SystemConfig(budget=AccuracyBudget(target_margin=0.5)),
            engine="direct",
            strategy="oasrs",
            source=ListSource(stream),
        )
        log = []
        results, _cluster = execute_plan(plan, adaptation_log=log)
        assert len(log) == len(results)
        assert all(p.sample_budget >= 1 for p in log)


# ---------------------------------------------------------------------------
# Trajectory helpers
# ---------------------------------------------------------------------------


class TestAdaptationMetrics:
    def _report(self):
        config = SystemConfig(
            sampling_fraction=0.05, budget=AccuracyBudget(target_margin=0.5)
        )
        return NativeStreamApproxSystem(QUERY, WINDOW, config).run(drift_stream())

    def test_series_shapes(self):
        report = self._report()
        budgets = budget_series(report)
        margins = margin_series(report)
        assert len(budgets) == len(margins) == len(report.adaptation)
        assert all(b >= 1 for _ts, b in budgets)
        assert all(not math.isnan(m) for _ts, m in margins)

    def test_convergence_interval_semantics(self):
        from repro.runtime.control import AdaptationPoint

        def pt(margin):
            return AdaptationPoint(
                interval_end=0.0, sample_budget=1, measured_margin=margin,
                relative_margin=0.0, observed_items=1, strata=1,
            )

        held = [pt(1.0), pt(0.4), pt(0.3)]
        assert convergence_interval(held, 0.5) == 2
        broken = [pt(0.4), pt(1.0), pt(0.3)]
        assert convergence_interval(broken, 0.5) == 3
        never = [pt(1.0), pt(0.9)]
        assert convergence_interval(never, 0.5) is None

    def test_format_trajectory_renders(self):
        report = self._report()
        text = format_trajectory(report, target_margin=0.5)
        assert "interval" in text and "budget" in text
        assert "target margin" in text


# ---------------------------------------------------------------------------
# Unsampled systems reject budgets (completing the seven-system sweep)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("cls", [NativeSparkSystem, NativeFlinkSystem],
                         ids=lambda c: c.name)
def test_native_systems_reject_budgets(cls):
    config = SystemConfig(budget=AccuracyBudget(target_margin=0.1))
    with pytest.raises(PlanError, match="requires a sampling strategy"):
        cls(QUERY, WINDOW, config).run(drift_stream())
