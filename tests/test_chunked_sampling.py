"""Property tests for the vectorized chunk-based sampling path.

The contract of the chunk API (`Reservoir.offer_many`,
`OASRSSampler.process_chunk`, the pipelined ``on_chunk`` operators):

* chunk_size = 1 — *identical* to the per-item path, bit for bit (same RNG
  draws, same reservoir contents),
* chunk_size > 1 — *statistically equivalent*: deterministic quantities
  (counters, sample sizes, weights) match exactly, and the sampled-item
  distribution passes KS-style uniformity bounds.
"""

import random
import statistics

import pytest

from repro.core.oasrs import FixedPerStratum, OASRSSampler, WaterFillingAllocation
from repro.core.reservoir import Reservoir
from repro.system import (
    FlinkStreamApproxSystem,
    NativeFlinkSystem,
    NativeStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.workloads.synthetic import stream_by_rates

KEY = lambda item: item[0]  # noqa: E731
VAL = lambda item: item[1]  # noqa: E731


def make_items(spec, seed=0):
    rng = random.Random(seed)
    items = []
    for key, n in spec.items():
        items.extend((key, rng.gauss(50, 5)) for _ in range(n))
    rng.shuffle(items)
    return items


def chunks(seq, size):
    return [seq[i : i + size] for i in range(0, len(seq), size)]


class TestReservoirOfferMany:
    def test_chunk_of_one_is_bitwise_identical(self):
        per_item = Reservoir(16, rng=random.Random(3))
        chunked = Reservoir(16, rng=random.Random(3))
        for x in range(2000):
            per_item.offer(x)
            chunked.offer_many([x])
        assert per_item.items == chunked.items
        assert per_item.seen == chunked.seen

    @pytest.mark.parametrize("chunk_size", [2, 7, 64, 500])
    def test_counters_and_size_deterministic(self, chunk_size):
        r = Reservoir(32, rng=random.Random(1))
        accepted = sum(r.offer_many(c) for c in chunks(list(range(1000)), chunk_size))
        assert r.seen == 1000
        assert len(r) == 32
        assert accepted >= 32  # the fill phase alone accepts capacity items

    def test_underfull_chunk_keeps_everything(self):
        r = Reservoir(100, rng=random.Random(2))
        r.offer_many(list(range(40)))
        assert r.items == list(range(40))
        assert not r.is_saturated()

    @pytest.mark.parametrize("chunk_size", [16, 1024])
    def test_uniformity_ks_bound(self, chunk_size):
        """Pooled inclusion frequencies stay near capacity/n for every item."""
        n, cap, trials = 1000, 25, 300
        counts = [0] * n
        for trial in range(trials):
            r = Reservoir(cap, rng=random.Random(trial))
            for c in chunks(list(range(n)), chunk_size):
                r.offer_many(c)
            for x in r.items:
                counts[x] += 1
        # Empirical inclusion probability per decile vs the uniform cap/n,
        # a KS-style sup-norm bound on the aggregated distribution.
        expected = cap / n * trials
        decile = n // 10
        for d in range(10):
            mean_count = statistics.fmean(counts[d * decile : (d + 1) * decile])
            assert abs(mean_count - expected) / expected < 0.25

    def test_skip_and_vector_paths_agree_statistically(self):
        """The Algorithm-X skip loop and the NumPy path draw alike."""
        n, cap, trials = 600, 20, 200
        means = {}
        for label, chunk_size in (("skip", 40), ("vector", 600)):
            total = 0.0
            for trial in range(trials):
                r = Reservoir(cap, rng=random.Random(7000 + trial))
                for c in chunks(list(range(n)), chunk_size):
                    r.offer_many(c)
                total += statistics.fmean(r.items)
            means[label] = total / trials
        # Uniform samples of 0..599 have mean ≈ 299.5 under either path.
        assert abs(means["skip"] - means["vector"]) < 15
        assert abs(means["skip"] - (n - 1) / 2) < 15


class TestOASRSProcessChunk:
    def test_chunk_of_one_matches_offer_exactly(self):
        items = make_items({"a": 300, "b": 40, "c": 3})
        per_item = OASRSSampler(FixedPerStratum(10), key_fn=KEY, rng=random.Random(5))
        chunked = OASRSSampler(FixedPerStratum(10), key_fn=KEY, rng=random.Random(5))
        for item in items:
            per_item.offer(item)
            chunked.process_chunk([item])
        a, b = per_item.close_interval(), chunked.close_interval()
        for key in a.keys:
            assert a[key].items == b[key].items
            assert a[key].count == b[key].count
            assert a[key].weight == b[key].weight

    @pytest.mark.parametrize("chunk_size", [3, 64, 4096])
    def test_deterministic_quantities_match_per_item(self, chunk_size):
        """Counters, sample sizes, and Equation-1 weights are RNG-free."""
        items = make_items({"a": 2000, "b": 150, "rare": 4}, seed=9)
        per_item = OASRSSampler(FixedPerStratum(50), key_fn=KEY, rng=random.Random(1))
        chunked = OASRSSampler(FixedPerStratum(50), key_fn=KEY, rng=random.Random(2))
        per_item.offer_many(items)
        for c in chunks(items, chunk_size):
            chunked.process_chunk(c)
        a, b = per_item.close_interval(), chunked.close_interval()
        assert sorted(a.keys) == sorted(b.keys)
        for key in a.keys:
            assert a[key].count == b[key].count
            assert a[key].sample_size == b[key].sample_size
            assert a[key].weight == b[key].weight

    def test_rare_stratum_never_overlooked(self):
        items = make_items({"big": 30_000, "rare": 2}, seed=11)
        sampler = OASRSSampler(FixedPerStratum(16), key_fn=KEY, rng=random.Random(3))
        for c in chunks(items, 512):
            sampler.process_chunk(c)
        sample = sampler.close_interval()
        assert "rare" in sample
        assert sample["rare"].sample_size == 2
        assert sample["rare"].weight == 1.0

    def test_estimates_statistically_equivalent(self):
        """Weighted mean from chunked sampling ≈ per-item ≈ exact."""
        items = make_items({"a": 4000, "b": 400}, seed=13)
        exact = statistics.fmean(v for _k, v in items)

        def mean_of(sampler_fn, trials=40):
            estimates = []
            for seed in range(trials):
                sampler = OASRSSampler(
                    FixedPerStratum(64), key_fn=KEY, rng=random.Random(seed)
                )
                sampler_fn(sampler)
                sample = sampler.close_interval()
                num = sum(
                    sum(s.values(VAL)) * s.weight for s in sample
                )
                den = sum(s.sample_size * s.weight for s in sample)
                estimates.append(num / den)
            return statistics.fmean(estimates)

        per_item = mean_of(lambda s: s.offer_many(items))
        chunked = mean_of(
            lambda s: [s.process_chunk(c) for c in chunks(items, 256)]
        )
        assert abs(per_item - exact) / exact < 0.01
        assert abs(chunked - exact) / exact < 0.01

    def test_adaptive_policy_sees_chunked_counts(self):
        policy = WaterFillingAllocation(100)
        sampler = OASRSSampler(policy, key_fn=KEY, rng=random.Random(1))
        sampler.process_chunk(make_items({"a": 900, "b": 100}, seed=4))
        sampler.close_interval()
        # Water-filling rebalanced from the observed counters.
        assert policy.capacity_for("b", 2) <= 100


class TestBatchedEngineChunks:
    """Partitions-as-chunks plumbing in the batched engine."""

    def test_chunks_of_explicit_size(self):
        from repro.engine.batched.context import StreamingContext

        ctx = StreamingContext()
        chunks = ctx.chunks_of(list(range(10)), chunk_size=4)
        assert [list(c) for c in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_chunks_of_default_mirrors_rdd_partitioning(self):
        from repro.engine.batched.context import StreamingContext

        ctx = StreamingContext(nodes=1, cores_per_node=4)
        items = list(range(1000))
        chunks = ctx.chunks_of(items)
        # Same block structure MiniRDD.parallelize would use: at least one
        # chunk per core, whole batch covered, order preserved.
        assert len(chunks) >= 4
        assert [x for c in chunks for x in c] == items
        assert ctx.chunks_of([]) == []

    def test_glom_exposes_partitions_as_chunk_lists(self):
        from repro.engine.batched.context import StreamingContext
        from repro.engine.batched.rdd import MiniRDD

        ctx = StreamingContext(nodes=1, cores_per_node=2)
        rdd = MiniRDD.parallelize(ctx.cluster, list(range(20)), num_partitions=4)
        glommed = rdd.glom().collect()
        assert len(glommed) == 4
        assert sorted(x for part in glommed for x in part) == list(range(20))
        # A chunk sampler can eat each partition whole.
        sampler = OASRSSampler(
            FixedPerStratum(3), key_fn=lambda x: x % 2, rng=random.Random(0)
        )
        for part in glommed:
            sampler.process_chunk(part)
        assert sampler.close_interval().total_count == 20


class TestChunkedEngines:
    QUERY = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean", name="chunk-test")
    WINDOW = WindowConfig(length=10.0, slide=5.0)

    @pytest.fixture(scope="class")
    def stream(self):
        return stream_by_rates({"A": 1500, "B": 400, "C": 20}, duration=12, seed=21)

    def test_native_flink_chunked_identical(self, stream):
        """No RNG on the native path ⇒ chunked results must match exactly."""
        base = NativeFlinkSystem(self.QUERY, self.WINDOW, SystemConfig()).run(stream)
        chunked = NativeFlinkSystem(
            self.QUERY, self.WINDOW, SystemConfig(chunk_size=256)
        ).run(stream)
        assert [r.end for r in base.results] == [r.end for r in chunked.results]
        for a, b in zip(base.results, chunked.results):
            assert a.estimate == pytest.approx(b.estimate)
            assert a.total_items == b.total_items

    def test_flink_approx_chunked_same_structure(self, stream):
        cfg = SystemConfig(sampling_fraction=0.5, seed=9)
        cfg_chunked = SystemConfig(sampling_fraction=0.5, seed=9, chunk_size=256)
        base = FlinkStreamApproxSystem(self.QUERY, self.WINDOW, cfg).run(stream)
        chunked = FlinkStreamApproxSystem(self.QUERY, self.WINDOW, cfg_chunked).run(stream)
        assert [r.end for r in base.results] == [r.end for r in chunked.results]
        for a, b in zip(base.results, chunked.results):
            # Which items were kept differs; how many and their weights do not.
            assert a.total_items == b.total_items
            assert a.sampled_items == b.sampled_items
        assert chunked.mean_accuracy_loss() < 0.05

    def test_native_streamapprox_chunked_matches_item_path(self, stream):
        item_cfg = SystemConfig(sampling_fraction=0.4, seed=3)
        chunk_cfg = SystemConfig(sampling_fraction=0.4, seed=3, chunk_size=128)
        item_run = NativeStreamApproxSystem(self.QUERY, self.WINDOW, item_cfg).run(stream)
        chunk_run = NativeStreamApproxSystem(self.QUERY, self.WINDOW, chunk_cfg).run(stream)
        assert [r.end for r in item_run.results] == [r.end for r in chunk_run.results]
        for a, b in zip(item_run.results, chunk_run.results):
            assert a.total_items == b.total_items
            assert a.sampled_items == b.sampled_items
        assert chunk_run.mean_accuracy_loss() < 0.05
