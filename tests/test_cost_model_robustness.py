"""Robustness of the reproduction's shapes to cost-model perturbations.

The headline orderings (StreamApprox > SRS > STS; Flink > Spark; sampled >
native) must not hinge on one calibration constant.  These tests rebuild
small end-to-end runs under perturbed `CostProfile`s and check that the
*directions* survive — and that each constant moves the system it is
supposed to move (barriers hurt STS, batch formation hurts batch-everything
systems, processing cost hurts natives most).
"""

import pytest

from repro.engine.batched.context import StreamingContext
from repro.engine.batched.rdd import MiniRDD
from repro.engine.cluster import SimulatedCluster
from repro.engine.costs import DEFAULT_COSTS
from repro.system import (
    NativeSparkSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.workloads.synthetic import stream_by_rates

KEY = lambda it: it[0]  # noqa: E731
VAL = lambda it: it[1]  # noqa: E731
QUERY = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean")
WINDOW = WindowConfig(10.0, 5.0)


@pytest.fixture(scope="module")
def stream():
    return stream_by_rates({"A": 8000, "B": 2000, "C": 100}, duration=12, seed=77)


def run_with_costs(cls, stream, costs, fraction=0.6):
    """Run a system with a custom CostProfile (first-class in SystemConfig)."""
    config = SystemConfig(sampling_fraction=fraction, costs=costs)
    return cls(QUERY, WINDOW, config).run(stream)


class TestOrderingsSurvivePerturbation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"item_process": DEFAULT_COSTS.item_process * 2},
            {"item_process": DEFAULT_COSTS.item_process * 0.5},
            {"barrier_sync": DEFAULT_COSTS.barrier_sync * 2},
            {"item_batch_form": DEFAULT_COSTS.item_batch_form * 2},
            {"task_schedule": DEFAULT_COSTS.task_schedule * 2},
        ],
    )
    def test_streamapprox_beats_sts_under_any_perturbation(self, stream, overrides):
        costs = DEFAULT_COSTS.scaled(**overrides)
        sa = run_with_costs(SparkStreamApproxSystem, stream, costs)
        sts = run_with_costs(SparkSTSSystem, stream, costs)
        assert sa.throughput > sts.throughput

    def test_sampling_still_beats_native_at_low_fraction(self, stream):
        costs = DEFAULT_COSTS.scaled(item_process=DEFAULT_COSTS.item_process * 0.5)
        sa = run_with_costs(SparkStreamApproxSystem, stream, costs, fraction=0.1)
        native = run_with_costs(NativeSparkSystem, stream, costs, fraction=1.0)
        assert sa.throughput > native.throughput


class TestConstantsMoveTheRightSystem:
    def test_barrier_cost_hits_sts_hardest(self, stream):
        cheap = DEFAULT_COSTS.scaled(barrier_sync=DEFAULT_COSTS.barrier_sync * 0.1)
        dear = DEFAULT_COSTS.scaled(barrier_sync=DEFAULT_COSTS.barrier_sync * 10)

        def slowdown(cls):
            fast = run_with_costs(cls, stream, cheap).throughput
            slow = run_with_costs(cls, stream, dear).throughput
            return fast / slow

        assert slowdown(SparkSTSSystem) > slowdown(SparkStreamApproxSystem)
        assert slowdown(SparkSTSSystem) > slowdown(SparkSRSSystem)

    def test_batch_formation_cost_spares_streamapprox(self, stream):
        """SA forms RDDs only from sampled items, so inflating the copy cost
        slows it less than the baselines that batch everything."""
        dear = DEFAULT_COSTS.scaled(item_batch_form=DEFAULT_COSTS.item_batch_form * 10)

        def slowdown(cls):
            base = run_with_costs(cls, stream, DEFAULT_COSTS, fraction=0.2).throughput
            slow = run_with_costs(cls, stream, dear, fraction=0.2).throughput
            return base / slow

        assert slowdown(SparkSRSSystem) > slowdown(SparkStreamApproxSystem)

    def test_processing_cost_hits_native_hardest(self, stream):
        dear = DEFAULT_COSTS.scaled(item_process=DEFAULT_COSTS.item_process * 4)

        def slowdown(cls, fraction):
            base = run_with_costs(cls, stream, DEFAULT_COSTS, fraction).throughput
            slow = run_with_costs(cls, stream, dear, fraction).throughput
            return base / slow

        assert slowdown(NativeSparkSystem, 1.0) > slowdown(
            SparkStreamApproxSystem, 0.2
        )


class TestStructuralAccounting:
    def test_partition_size_controls_task_count(self):
        fine = SimulatedCluster(costs=DEFAULT_COSTS.scaled(partition_size=100))
        coarse = SimulatedCluster(costs=DEFAULT_COSTS.scaled(partition_size=100_000))
        MiniRDD.parallelize(fine, list(range(10_000))).collect()
        MiniRDD.parallelize(coarse, list(range(10_000))).collect()
        assert fine.stats.tasks_launched > coarse.stats.tasks_launched

    def test_presampling_saves_exactly_the_dropped_copies(self):
        n, kept = 10_000, 4_000
        full = StreamingContext(batch_interval=1.0)
        full.cluster.costs = DEFAULT_COSTS
        full.rdd_of(list(range(n)))
        pre = StreamingContext(batch_interval=1.0)
        pre.cluster.costs = DEFAULT_COSTS
        pre.rdd_of_presampled(list(range(kept)), skipped=n - kept)
        saved = full.cluster.elapsed() - pre.cluster.elapsed()
        expected = (n - kept) * DEFAULT_COSTS.item_batch_form / full.cluster.effective_parallelism
        assert saved == pytest.approx(expected, rel=0.05)
