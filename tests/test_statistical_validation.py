"""End-to-end statistical validation of the §3.3 error-estimation claims.

These tests treat the whole stack as a statistical instrument and check it
against sampling theory: estimator unbiasedness, CI coverage at the
68/95/99.7 levels, variance shrinkage laws, and the coverage of the
systems' per-pane bounds on live streams.  They are slower than unit tests
(hundreds of repeated sampling runs) but deterministic.
"""

import math
import random
import statistics

import pytest

from repro.core.error import estimate_error
from repro.core.oasrs import oasrs_sample
from repro.core.query import approximate_mean, approximate_sum
from repro.metrics.accuracy import coverage_rate
from repro.system import (
    FlinkStreamApproxSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.workloads.synthetic import stream_by_rates

KEY = lambda it: it[0]  # noqa: E731
VAL = lambda it: it[1]  # noqa: E731


def population(seed=0, sizes=((("a"), 3000, 50, 10), (("b"), 600, 500, 60))):
    rng = random.Random(seed)
    items = []
    for key, n, mu, sigma in sizes:
        items.extend((key, rng.gauss(mu, sigma)) for _ in range(n))
    rng.shuffle(items)
    return items


class TestUnbiasedness:
    def test_sum_estimator_unbiased(self):
        items = population(seed=1)
        truth = sum(VAL(it) for it in items)
        estimates = [
            approximate_sum(
                oasrs_sample(items, 150, key_fn=KEY, rng=random.Random(s)), VAL
            ).value
            for s in range(400)
        ]
        mean_est = statistics.fmean(estimates)
        # Standard error of the mean of 400 estimates is small; 1% margin
        # comfortably detects real bias while tolerating noise.
        assert abs(mean_est - truth) / truth < 0.01

    def test_mean_estimator_unbiased(self):
        items = population(seed=2)
        truth = statistics.fmean(VAL(it) for it in items)
        estimates = [
            approximate_mean(
                oasrs_sample(items, 150, key_fn=KEY, rng=random.Random(s)), VAL
            ).value
            for s in range(400)
        ]
        assert abs(statistics.fmean(estimates) - truth) / truth < 0.01


class TestVarianceLaws:
    def test_variance_estimate_tracks_empirical_variance(self):
        """The Eq.-6 estimate should match the spread of repeated estimates."""
        items = population(seed=3)
        estimates, predicted = [], []
        for s in range(300):
            sample = oasrs_sample(items, 120, key_fn=KEY, rng=random.Random(s))
            result = approximate_sum(sample, VAL)
            estimates.append(result.value)
            predicted.append(estimate_error(result).variance)
        empirical = statistics.pvariance(estimates)
        mean_predicted = statistics.fmean(predicted)
        assert 0.5 < mean_predicted / empirical < 2.0

    def test_variance_shrinks_as_one_over_y(self):
        """Doubling the sample size ≈ halves the variance (C ≫ Y regime)."""
        items = population(seed=4, sizes=[("a", 20_000, 100, 20)])
        def var_at(y):
            sample = oasrs_sample(items, y, key_fn=KEY, rng=random.Random(1))
            return estimate_error(approximate_sum(sample, VAL)).variance

        ratio = var_at(100) / var_at(200)
        assert 1.6 < ratio < 2.6


class TestCoverageLevels:
    @pytest.mark.parametrize(
        "confidence,z,minimum",
        [(0.68, 1.0, 0.55), (0.95, 2.0, 0.88), (0.997, 3.0, 0.97)],
    )
    def test_cis_cover_at_nominal_rates(self, confidence, z, minimum):
        """The 68-95-99.7 rule holds end to end for the SUM estimator."""
        items = population(seed=5)
        truth = sum(VAL(it) for it in items)
        covered = 0
        trials = 250
        for s in range(trials):
            sample = oasrs_sample(items, 150, key_fn=KEY, rng=random.Random(s))
            bound = estimate_error(approximate_sum(sample, VAL), confidence=confidence)
            covered += bound.covers(truth)
        assert covered / trials >= minimum

    def test_coverage_ordering_across_levels(self):
        items = population(seed=6)
        truth = sum(VAL(it) for it in items)
        rates = {}
        for confidence in (0.68, 0.95, 0.997):
            covered = 0
            for s in range(150):
                sample = oasrs_sample(items, 100, key_fn=KEY, rng=random.Random(s))
                bound = estimate_error(
                    approximate_sum(sample, VAL), confidence=confidence
                )
                covered += bound.covers(truth)
            rates[confidence] = covered / 150
        assert rates[0.68] <= rates[0.95] <= rates[0.997]


class TestSystemLevelCoverage:
    @pytest.mark.parametrize(
        "cls", [SparkStreamApproxSystem, FlinkStreamApproxSystem]
    )
    def test_pane_bounds_cover_truth(self, cls):
        """Across many panes, the per-pane 95% bounds cover ≈95% of truths."""
        stream = stream_by_rates(
            {"A": 3000, "B": 800, "C": 40}, duration=60, seed=7
        )
        query = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean")
        report = cls(
            query, WindowConfig(10.0, 5.0), SystemConfig(sampling_fraction=0.2)
        ).run(stream)
        assert len(report.results) >= 10
        assert coverage_rate(report) >= 0.8

    def test_margin_scales_with_z(self):
        items = population(seed=8)
        sample = oasrs_sample(items, 100, key_fn=KEY, rng=random.Random(0))
        result = approximate_sum(sample, VAL)
        m68 = estimate_error(result, confidence=0.68).margin
        m95 = estimate_error(result, confidence=0.95).margin
        m997 = estimate_error(result, confidence=0.997).margin
        assert m95 == pytest.approx(2 * m68)
        assert m997 == pytest.approx(3 * m68)

    def test_relative_error_improves_with_fraction_on_live_system(self):
        stream = stream_by_rates({"A": 4000, "B": 1000}, duration=20, seed=9)
        query = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean")
        margins = {}
        for fraction in (0.05, 0.4):
            report = SparkStreamApproxSystem(
                query, WindowConfig(10.0, 5.0), SystemConfig(sampling_fraction=fraction)
            ).run(stream)
            margins[fraction] = statistics.fmean(
                r.error.relative_margin for r in report.results if r.error
            )
        assert margins[0.4] < margins[0.05]
