"""Tests for the OASRS sampler (Algorithm 3) and allocation policies."""

import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oasrs import (
    EqualAllocation,
    FixedPerStratum,
    OASRSSampler,
    ProportionalAllocation,
    oasrs_sample,
)


def make_items(spec):
    """spec: {key: [values]} → flat interleaved (key, value) item list."""
    items = []
    lists = {k: list(v) for k, v in spec.items()}
    while any(lists.values()):
        for k in list(lists):
            if lists[k]:
                items.append((k, lists[k].pop(0)))
    return items


KEY = lambda item: item[0]  # noqa: E731


class TestPolicies:
    def test_fixed_policy_constant(self):
        p = FixedPerStratum(7)
        assert p.capacity_for("a", 1) == 7
        assert p.capacity_for("b", 100) == 7

    def test_fixed_policy_validation(self):
        with pytest.raises(ValueError):
            FixedPerStratum(0)

    def test_equal_allocation_splits(self):
        p = EqualAllocation(90)
        assert p.capacity_for("a", 3) == 30
        assert p.capacity_for("a", 1) == 90

    def test_equal_allocation_floor_one(self):
        p = EqualAllocation(2)
        assert p.capacity_for("a", 10) == 1

    def test_proportional_allocation_uses_observed_counts(self):
        p = ProportionalAllocation(100)
        p.observe({"big": 900, "small": 100})
        assert p.capacity_for("big", 2) == 90
        assert p.capacity_for("small", 2) == 10
        assert p.capacity_for("unseen", 2) == 1

    def test_proportional_before_observation_splits_equally(self):
        p = ProportionalAllocation(10)
        assert p.capacity_for("a", 2) == 5


class TestOASRSSampler:
    def test_underfull_strata_kept_entirely_weight_one(self):
        items = make_items({"a": [1, 2], "b": [5]})
        sample = oasrs_sample(items, 10, key_fn=KEY, rng=random.Random(0))
        assert sample["a"].weight == 1.0
        assert sorted(v for _k, v in sample["a"].items) == [1, 2]
        assert sample["b"].count == 1

    def test_overflow_weight_matches_equation1(self):
        items = make_items({"a": list(range(60))})
        sample = oasrs_sample(items, 6, key_fn=KEY, rng=random.Random(0))
        assert sample["a"].sample_size == 6
        assert sample["a"].weight == pytest.approx(10.0)

    def test_counters_exact_despite_sampling(self):
        items = make_items({"a": list(range(500)), "b": list(range(3))})
        sample = oasrs_sample(items, 5, key_fn=KEY, rng=random.Random(1))
        assert sample["a"].count == 500
        assert sample["b"].count == 3

    def test_rare_stratum_never_overlooked(self):
        """The defining property vs SRS: tiny strata always represented."""
        spec = {"big": list(range(100_000)), "rare": [1, 2]}
        sample = oasrs_sample(make_items(spec), 10, key_fn=KEY, rng=random.Random(2))
        assert "rare" in sample
        assert sample["rare"].sample_size == 2

    def test_close_interval_resets_state(self):
        sampler = OASRSSampler(FixedPerStratum(3), key_fn=KEY, rng=random.Random(0))
        sampler.offer_many(make_items({"a": [1, 2, 3, 4]}))
        first = sampler.close_interval()
        assert first["a"].count == 4
        second = sampler.close_interval()
        # The stratum is still known (policy rebalanced) but has no items.
        assert "a" not in second or second.total_count == 0

    def test_peek_does_not_reset(self):
        sampler = OASRSSampler(FixedPerStratum(3), key_fn=KEY, rng=random.Random(0))
        sampler.offer(("a", 1))
        assert sampler.peek()["a"].count == 1
        sampler.offer(("a", 2))
        assert sampler.peek()["a"].count == 2

    def test_strata_seen_accumulates_across_intervals(self):
        sampler = OASRSSampler(FixedPerStratum(2), key_fn=KEY, rng=random.Random(0))
        sampler.offer(("a", 1))
        sampler.close_interval()
        sampler.offer(("b", 1))
        assert sampler.strata_seen == 2

    def test_set_policy_takes_effect_after_rebalance(self):
        sampler = OASRSSampler(FixedPerStratum(2), key_fn=KEY, rng=random.Random(0))
        sampler.offer_many(make_items({"a": list(range(10))}))
        sampler.close_interval()
        sampler.set_policy(FixedPerStratum(5))
        sampler.close_interval()  # rebalance applies new policy
        sampler.offer_many(make_items({"a": list(range(10))}))
        sample = sampler.close_interval()
        assert sample["a"].sample_size == 5

    def test_adapts_to_shifting_arrival_rates(self):
        """OASRS needs no pre-defined fractions: weights track rate shifts."""
        sampler = OASRSSampler(FixedPerStratum(10), key_fn=KEY, rng=random.Random(3))
        sampler.offer_many(make_items({"a": list(range(100)), "b": list(range(10))}))
        s1 = sampler.close_interval()
        assert s1["a"].weight == pytest.approx(10.0)
        assert s1["b"].weight == 1.0
        # Rates flip in the next interval; weights follow automatically.
        sampler.offer_many(make_items({"a": list(range(10)), "b": list(range(100))}))
        s2 = sampler.close_interval()
        assert s2["a"].weight == 1.0
        assert s2["b"].weight == pytest.approx(10.0)

    def test_sum_estimate_unbiased_on_average(self):
        """Weighted SUM over many runs ≈ true sum (estimator unbiasedness)."""
        values = list(range(1, 201))
        truth = float(sum(values))
        estimates = []
        for seed in range(300):
            sample = oasrs_sample(
                [("a", v) for v in values], 20, key_fn=KEY, rng=random.Random(seed)
            )
            estimates.append(sample.scaled_total(lambda kv: kv[1]))
        mean_est = statistics.fmean(estimates)
        assert abs(mean_est - truth) / truth < 0.02

    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.integers(0, 300),
            min_size=1,
            max_size=4,
        ),
        capacity=st.integers(1, 30),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_invariants_hold_for_any_stream(self, sizes, capacity, seed):
        items = make_items({k: list(range(n)) for k, n in sizes.items()})
        sample = oasrs_sample(items, capacity, key_fn=KEY, rng=random.Random(seed))
        for key, n in sizes.items():
            if n == 0:
                assert key not in sample
                continue
            stratum = sample[key]
            assert stratum.count == n
            assert stratum.sample_size == min(n, capacity)
            # Eq. 1 identity: Y_i * W_i == C_i whenever the stratum saturated.
            assert stratum.sample_size * stratum.weight == pytest.approx(
                max(n, stratum.sample_size)
            )


class TestOneShotHelper:
    def test_empty_input(self):
        sample = oasrs_sample([], 5, key_fn=KEY, rng=random.Random(0))
        assert len(sample) == 0
        assert sample.total_count == 0
