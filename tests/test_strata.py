"""Tests for stratum bookkeeping and Equation-1 weights."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strata import (
    StratumSample,
    WeightedSample,
    combine_worker_samples,
    stratum_weight,
)


class TestStratumWeight:
    def test_overflowed_stratum_scales(self):
        assert stratum_weight(count=6, sample_size=3) == pytest.approx(2.0)

    def test_underfull_stratum_weight_one(self):
        assert stratum_weight(count=2, sample_size=3) == 1.0
        assert stratum_weight(count=3, sample_size=3) == 1.0

    def test_empty_stratum(self):
        assert stratum_weight(0, 0) == 1.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            stratum_weight(-1, 3)
        with pytest.raises(ValueError):
            stratum_weight(3, -1)

    @settings(max_examples=100)
    @given(c=st.integers(0, 10**6), y=st.integers(1, 10**4))
    def test_weight_reconstructs_population(self, c, y):
        """y * W == max(c, y): kept items stand for the whole stratum."""
        w = stratum_weight(c, y)
        assert y * w == pytest.approx(max(c, y))


class TestStratumSample:
    def test_paper_figure2_weights(self):
        """Figure 2: reservoirs of size 3, C = (6, 4, 2) → W = (2, 4/3, 1)."""
        s1 = StratumSample("S1", tuple(range(3)), 6, stratum_weight(6, 3))
        s2 = StratumSample("S2", tuple(range(3)), 4, stratum_weight(4, 3))
        s3 = StratumSample("S3", tuple(range(2)), 2, stratum_weight(2, 2))
        assert s1.weight == pytest.approx(2.0)
        assert s2.weight == pytest.approx(4.0 / 3.0)
        assert s3.weight == 1.0

    def test_count_below_sample_rejected(self):
        with pytest.raises(ValueError):
            StratumSample("x", (1, 2, 3), 2, 1.0)

    def test_estimated_count(self):
        s = StratumSample("x", (1.0, 2.0), 10, 5.0)
        assert s.estimated_count == pytest.approx(10.0)

    def test_values_with_fn(self):
        s = StratumSample("x", (("a", 2.0), ("a", 4.0)), 2, 1.0)
        assert s.values(lambda kv: kv[1]) == [2.0, 4.0]


class TestWeightedSample:
    def _make(self):
        ws = WeightedSample()
        ws.add(StratumSample("a", (1.0, 2.0, 3.0), 6, 2.0))
        ws.add(StratumSample("b", (10.0,), 1, 1.0))
        return ws

    def test_duplicate_stratum_rejected(self):
        ws = self._make()
        with pytest.raises(KeyError):
            ws.add(StratumSample("a", (5.0,), 1, 1.0))

    def test_totals(self):
        ws = self._make()
        assert ws.total_items == 4
        assert ws.total_count == 7
        assert ws.sampling_fraction == pytest.approx(4 / 7)

    def test_container_protocol(self):
        ws = self._make()
        assert "a" in ws and "c" not in ws
        assert len(ws) == 2
        assert ws["b"].count == 1
        assert sorted(ws.keys) == ["a", "b"]

    def test_all_and_weighted_items(self):
        ws = self._make()
        assert sorted(ws.all_items()) == [1.0, 2.0, 3.0, 10.0]
        weights = dict(ws.weighted_items())
        assert weights[1.0] == 2.0 and weights[10.0] == 1.0

    def test_scaled_total(self):
        ws = self._make()
        # (1+2+3)*2 + 10*1 = 22
        assert ws.scaled_total() == pytest.approx(22.0)

    def test_empty_sample_fraction_zero(self):
        assert WeightedSample().sampling_fraction == 0.0


class TestMerge:
    def test_merge_disjoint_strata(self):
        left = WeightedSample()
        left.add(StratumSample("a", (1.0,), 1, 1.0))
        right = WeightedSample()
        right.add(StratumSample("b", (2.0,), 5, 5.0))
        merged = left.merge(right)
        assert sorted(merged.keys) == ["a", "b"]
        assert merged["b"].weight == 5.0

    def test_merge_same_stratum_rederives_weight(self):
        """Worker merge: counts add, reservoirs concatenate, W from Eq. 1."""
        w1 = WeightedSample()
        w1.add(StratumSample("s", (1.0, 2.0), 10, 5.0))
        w2 = WeightedSample()
        w2.add(StratumSample("s", (3.0, 4.0), 14, 7.0))
        merged = w1.merge(w2)
        s = merged["s"]
        assert s.count == 24
        assert s.sample_size == 4
        assert s.weight == pytest.approx(6.0)

    def test_combine_worker_samples_empty(self):
        assert len(combine_worker_samples([])) == 0

    def test_combine_many_workers(self):
        parts = []
        for i in range(4):
            ws = WeightedSample()
            ws.add(StratumSample("s", (float(i),), 3, 3.0))
            parts.append(ws)
        merged = combine_worker_samples(parts)
        assert merged["s"].count == 12
        assert merged["s"].sample_size == 4
        assert merged["s"].weight == pytest.approx(3.0)

    @settings(max_examples=50)
    @given(
        counts=st.lists(st.integers(1, 50), min_size=1, max_size=6),
        kept=st.data(),
    )
    def test_merge_preserves_population(self, counts, kept):
        """Σ estimated populations is invariant under worker merge."""
        parts = []
        for i, c in enumerate(counts):
            y = kept.draw(st.integers(1, c))
            ws = WeightedSample()
            ws.add(StratumSample("s", tuple(float(j) for j in range(y)), c, stratum_weight(c, y)))
            parts.append(ws)
        merged = combine_worker_samples(parts)
        assert merged["s"].count == sum(counts)
