"""Tests for measurement collection and accuracy analysis."""

import pytest

from repro.core.error import ErrorBound
from repro.metrics.accuracy import coverage_rate, mean_timeseries, timeseries_deviation
from repro.metrics.collector import ExperimentCollector, Measurement, format_table
from repro.system.base import SystemReport, WindowResult


def make_report(system="sys", panes=None, seconds=1.0, items=100):
    results = []
    for end, estimate, exact in panes or []:
        results.append(
            WindowResult(
                end=end,
                estimate=estimate,
                exact=exact,
                error=ErrorBound(estimate, variance=1.0, confidence=0.95, margin=2.0),
            )
        )
    return SystemReport(
        system=system, results=results, virtual_seconds=seconds, items_total=items
    )


class TestSystemReport:
    def test_throughput(self):
        report = make_report(seconds=2.0, items=500)
        assert report.throughput == 250.0

    def test_throughput_zero_time(self):
        assert make_report(seconds=0.0).throughput == 0.0

    def test_mean_accuracy_loss(self):
        report = make_report(panes=[(5.0, 102.0, 100.0), (10.0, 99.0, 100.0)])
        assert report.mean_accuracy_loss() == pytest.approx((0.02 + 0.01) / 2)

    def test_mean_accuracy_loss_empty(self):
        assert make_report().mean_accuracy_loss() == 0.0

    def test_mean_estimates_series(self):
        report = make_report(panes=[(5.0, 1.0, 1.0), (10.0, 2.0, 2.0)])
        assert report.mean_estimates() == [(5.0, 1.0), (10.0, 2.0)]


class TestCollector:
    def _collector(self):
        c = ExperimentCollector("fig-test")
        c.record(0.1, make_report("sysA", seconds=1.0, items=1000))
        c.record(0.1, make_report("sysA", seconds=1.0, items=3000))  # repeat run
        c.record(0.1, make_report("sysB", seconds=2.0, items=1000))
        c.record(0.6, make_report("sysA", seconds=4.0, items=1000))
        return c

    def test_systems_and_settings_order(self):
        c = self._collector()
        assert c.systems() == ["sysA", "sysB"]
        assert c.settings() == [0.1, 0.6]

    def test_series_averages_repeats(self):
        c = self._collector()
        series = dict(c.series("sysA", "throughput"))
        assert series[0.1] == pytest.approx((1000 + 3000) / 2)

    def test_value_and_missing(self):
        c = self._collector()
        assert c.value("sysB", 0.1, "throughput") == 500.0
        assert c.value("sysB", 0.6, "throughput") is None

    def test_ratio(self):
        c = self._collector()
        assert c.ratio("sysA", "sysB", 0.1, "throughput") == pytest.approx(4.0)
        assert c.ratio("sysA", "sysB", 0.6, "throughput") is None

    def test_table_renders(self):
        c = self._collector()
        table = c.table("throughput")
        assert "fig-test" in table
        assert "sysA" in table and "sysB" in table
        assert "0.1" in table

    def test_format_table_missing_cell(self):
        c = self._collector()
        assert "-" in format_table(c, "throughput")


class TestAccuracyHelpers:
    def test_mean_timeseries(self):
        report = make_report(panes=[(5.0, 1.5, 1.0)])
        assert mean_timeseries(report) == [(5.0, 1.5, 1.0)]

    def test_timeseries_deviation(self):
        report = make_report(panes=[(5.0, 110.0, 100.0), (10.0, 100.0, 100.0)])
        # RMS of [0.1, 0.0]
        assert timeseries_deviation(report) == pytest.approx((0.01 / 2) ** 0.5)

    def test_timeseries_deviation_empty(self):
        assert timeseries_deviation(make_report()) == 0.0

    def test_coverage_rate(self):
        report = make_report(
            panes=[(5.0, 100.0, 101.0), (10.0, 100.0, 150.0)]  # margin is 2.0
        )
        assert coverage_rate(report) == 0.5

    def test_coverage_rate_empty(self):
        assert coverage_rate(make_report()) == 0.0


class TestMeasurement:
    def test_fields(self):
        m = Measurement("s", 0.5, 100.0, 0.01, 2.0)
        assert m.system == "s" and m.setting == 0.5
