"""Tests for the traffic replay tool (§6.1 methodology).

`repro.aggregator.replay.interleave_substreams` is the timestamp assigner
behind every broker-fed experiment — its determinism and tie-breaking are
what make resume-from-checkpoint replay sound, so they are pinned here:
emission times, per-source ordering, insertion-order tie-breaks, exact
repeatability, and the end-to-end property that `ReplayTool` through a
`Broker` topic yields the same panes as feeding the interleaved stream to
a system directly.
"""

import pytest

from repro.aggregator.broker import Broker
from repro.aggregator.replay import ReplayTool, interleave_substreams
from repro.runtime import ListSource, TopicSource
from repro.system import (
    FlinkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)

KEY = lambda it: it[0]  # noqa: E731


def items(source, n):
    return [(source, float(i)) for i in range(n)]


class TestInterleave:
    def test_first_emission_at_start_plus_period(self):
        merged = list(interleave_substreams({"a": (4.0, items("a", 3))}))
        assert [ts for ts, _ in merged] == pytest.approx([0.25, 0.5, 0.75])

    def test_start_offsets_every_emission(self):
        merged = list(
            interleave_substreams({"a": (2.0, items("a", 2))}, start=10.0)
        )
        assert [ts for ts, _ in merged] == pytest.approx([10.5, 11.0])

    def test_streams_merge_time_ordered_and_sources_stay_ordered(self):
        merged = list(
            interleave_substreams(
                {"fast": (10.0, items("fast", 20)), "slow": (3.0, items("slow", 6))}
            )
        )
        timestamps = [ts for ts, _ in merged]
        assert timestamps == sorted(timestamps)
        for source in ("fast", "slow"):
            values = [item[1] for _ts, item in merged if item[0] == source]
            assert values == sorted(values), f"{source} items reordered"

    def test_ties_break_by_insertion_order(self):
        # Equal rates → every emission time collides; the dict insertion
        # order of the substreams decides who goes first, deterministically.
        merged = list(
            interleave_substreams(
                {"second": (5.0, items("second", 4)), "first": (5.0, items("first", 4))}
            )
        )
        for pair in zip(merged[::2], merged[1::2]):
            (ts_a, item_a), (ts_b, item_b) = pair
            assert ts_a == pytest.approx(ts_b)
            assert item_a[0] == "second" and item_b[0] == "first"

    def test_exactly_repeatable(self):
        spec = lambda: {  # noqa: E731
            "a": (7.0, items("a", 25)),
            "b": (3.0, items("b", 11)),
            "c": (1.0, items("c", 4)),
        }
        assert list(interleave_substreams(spec())) == list(
            interleave_substreams(spec())
        )

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="rate must be positive"):
            list(interleave_substreams({"a": (0.0, items("a", 1))}))
        with pytest.raises(ValueError, match="rate must be positive"):
            list(interleave_substreams({"a": (-2.0, items("a", 1))}))

    def test_empty_substream_is_skipped(self):
        merged = list(
            interleave_substreams(
                {"empty": (5.0, []), "full": (5.0, items("full", 3))}
            )
        )
        assert len(merged) == 3
        assert all(item[0] == "full" for _ts, item in merged)

    def test_all_items_emitted_once(self):
        merged = list(
            interleave_substreams(
                {"a": (11.0, items("a", 30)), "b": (2.0, items("b", 7))}
            )
        )
        assert len(merged) == 37
        assert sorted(item for _ts, item in merged) == sorted(
            items("a", 30) + items("b", 7)
        )


class TestReplayTool:
    SUBSTREAMS = {
        "A": (800.0, [("A", 10.0 + (i % 7)) for i in range(4000)]),
        "B": (200.0, [("B", 50.0 + (i % 3)) for i in range(1000)]),
        "C": (20.0, [("C", 5.0) for i in range(100)]),
    }

    def fresh_substreams(self):
        return {k: (rate, list(v)) for k, (rate, v) in self.SUBSTREAMS.items()}

    def test_replay_creates_topic_and_reports_count(self):
        broker = Broker()
        tool = ReplayTool(broker, "replayed", num_partitions=4)
        assert broker.has_topic("replayed")
        sent = tool.replay(self.fresh_substreams())
        assert sent == 5100

    def test_broker_replay_matches_direct_interleave_end_to_end(self):
        # The tentpole property: a system fed from the replayed topic
        # produces the same panes as one fed the interleaved list directly —
        # the broker's topic-global sequence number preserves the exact
        # production order, so checkpoint replay offsets stay meaningful.
        query = StreamQuery(key_fn=KEY, value_fn=lambda it: it[1], kind="mean")
        window = WindowConfig(2.0, 1.0)
        config = lambda: SystemConfig(sampling_fraction=0.5, seed=13)  # noqa: E731

        direct_stream = list(interleave_substreams(self.fresh_substreams()))
        direct = FlinkStreamApproxSystem(query, window, config()).run(
            ListSource(direct_stream)
        )

        broker = Broker()
        ReplayTool(broker, "replayed", num_partitions=4).replay(
            self.fresh_substreams()
        )
        replayed = FlinkStreamApproxSystem(query, window, config()).run(
            TopicSource(broker, "replayed", group_id="replay-test", members=2)
        )

        assert [
            (r.end, r.estimate, r.sampled_items, r.total_items)
            for r in replayed.results
        ] == [
            (r.end, r.estimate, r.sampled_items, r.total_items)
            for r in direct.results
        ]
