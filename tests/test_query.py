"""Tests for approximate linear queries (Equations 2–4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oasrs import oasrs_sample
from repro.core.query import (
    StratumStats,
    approximate_count,
    approximate_mean,
    approximate_sum,
    grouped_mean,
    grouped_sum,
    histogram,
)
from repro.core.strata import StratumSample, WeightedSample

KEY = lambda item: item[0]  # noqa: E731
VAL = lambda item: item[1]  # noqa: E731


def full_sample(spec):
    """A WeightedSample where every stratum was kept entirely (weight 1)."""
    ws = WeightedSample()
    for key, values in spec.items():
        ws.add(StratumSample(key, tuple(values), len(values), 1.0))
    return ws


class TestExactWhenFullyKept:
    """With weight-1 strata the estimators must be exact."""

    def test_sum_exact(self):
        ws = full_sample({"a": [1.0, 2.0], "b": [3.0]})
        assert approximate_sum(ws).value == pytest.approx(6.0)

    def test_mean_exact(self):
        ws = full_sample({"a": [2.0, 4.0], "b": [6.0]})
        assert approximate_mean(ws).value == pytest.approx(4.0)

    def test_count_exact(self):
        ws = full_sample({"a": [1.0] * 7, "b": [1.0] * 3})
        assert approximate_count(ws).value == 10.0

    @settings(max_examples=60)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_sum_property(self, values):
        ws = full_sample({"s": values})
        assert approximate_sum(ws).value == pytest.approx(sum(values), rel=1e-9, abs=1e-6)


class TestWeightedEstimates:
    def test_sum_scales_by_weight(self):
        ws = WeightedSample()
        ws.add(StratumSample("a", (1.0, 2.0, 3.0), 30, 10.0))
        assert approximate_sum(ws).value == pytest.approx(60.0)

    def test_mean_uses_true_population(self):
        """Equation 4 divides by Σ C_i, not by the sample size."""
        ws = WeightedSample()
        ws.add(StratumSample("a", (5.0,), 10, 10.0))  # SUM_a = 50, C = 10
        assert approximate_mean(ws).value == pytest.approx(5.0)

    def test_mean_empty_interval_zero(self):
        assert approximate_mean(WeightedSample()).value == 0.0

    def test_estimates_track_truth_on_sampled_stream(self):
        rng = random.Random(11)
        items = [("s", rng.gauss(100, 10)) for _ in range(5000)]
        truth_sum = sum(v for _k, v in items)
        sample = oasrs_sample(items, 500, key_fn=KEY, rng=random.Random(5))
        est = approximate_sum(sample, value_fn=VAL).value
        assert abs(est - truth_sum) / truth_sum < 0.05
        est_mean = approximate_mean(sample, value_fn=VAL).value
        assert abs(est_mean - truth_sum / len(items)) < 2.0


class TestStratumStats:
    def test_variance_is_unbiased_sample_variance(self):
        s = StratumSample("x", (1.0, 3.0, 5.0), 3, 1.0)
        stats = StratumStats.from_stratum(s)
        assert stats.mean == pytest.approx(3.0)
        assert stats.variance == pytest.approx(4.0)  # ((4+0+4)/2)

    def test_single_item_variance_zero(self):
        s = StratumSample("x", (2.0,), 5, 5.0)
        assert StratumStats.from_stratum(s).variance == 0.0

    def test_value_fn_applied(self):
        s = StratumSample("x", (("k", 4.0), ("k", 8.0)), 2, 1.0)
        stats = StratumStats.from_stratum(s, VAL)
        assert stats.total == pytest.approx(12.0)


class TestGroupedQueries:
    def _borough_sample(self):
        """Strata are boroughs; each value is a trip distance."""
        ws = WeightedSample()
        ws.add(StratumSample("manhattan", (("manhattan", 2.0), ("manhattan", 4.0)), 20, 10.0))
        ws.add(StratumSample("queens", (("queens", 8.0),), 1, 1.0))
        return ws

    def test_grouped_sum(self):
        out = grouped_sum(self._borough_sample(), group_fn=KEY, value_fn=VAL)
        assert out["manhattan"] == pytest.approx(60.0)
        assert out["queens"] == pytest.approx(8.0)

    def test_grouped_mean_matches_eq4_when_groups_are_strata(self):
        out = grouped_mean(self._borough_sample(), group_fn=KEY, value_fn=VAL)
        assert out["manhattan"] == pytest.approx(3.0)
        assert out["queens"] == pytest.approx(8.0)

    def test_histogram_estimates_population(self):
        out = histogram(self._borough_sample(), bin_fn=KEY)
        assert out["manhattan"] == pytest.approx(20.0)
        assert out["queens"] == pytest.approx(1.0)

    def test_groups_cutting_across_strata(self):
        ws = WeightedSample()
        ws.add(StratumSample("s1", (("g", 1.0), ("h", 2.0)), 4, 2.0))
        ws.add(StratumSample("s2", (("g", 3.0),), 1, 1.0))
        out = grouped_sum(ws, group_fn=KEY, value_fn=VAL)
        assert out["g"] == pytest.approx(1.0 * 2.0 + 3.0)
        assert out["h"] == pytest.approx(4.0)

    def test_float_conversion(self):
        ws = full_sample({"a": [1.0]})
        assert float(approximate_sum(ws)) == pytest.approx(1.0)
