"""Tests for query budgets, the virtual cost function, and adaptive feedback."""

import math

import pytest

from repro.core.budget import (
    AccuracyBudget,
    AdaptiveSampleSizeController,
    CostModel,
    LatencyBudget,
    ResourceBudget,
    VirtualCostFunction,
)
from repro.core.query import StratumStats


def stats(key, c, variance, y=10):
    return StratumStats(
        key=key, y=y, c=c, weight=c / y if c > y else 1.0,
        total=0.0, mean=0.0, variance=variance,
    )


class TestBudgetValidation:
    def test_accuracy_budget(self):
        with pytest.raises(ValueError):
            AccuracyBudget(target_margin=0.0)

    def test_latency_budget(self):
        with pytest.raises(ValueError):
            LatencyBudget(max_seconds=-1)

    def test_resource_budget(self):
        with pytest.raises(ValueError):
            ResourceBudget(workers=0)
        assert ResourceBudget(workers=3, cores_per_worker=4).total_cores == 12


class TestCostModel:
    def test_items_within_capacity(self):
        cm = CostModel(tokens_per_item=2.0, tokens_per_core_second=100.0)
        assert cm.items_within(seconds=1.0, cores=4) == 200

    def test_zero_time(self):
        assert CostModel().items_within(0.0, 8) == 0


class TestVirtualCostFunction:
    def test_default_fraction_before_observations(self):
        vcf = VirtualCostFunction(default_fraction=0.5)
        size = vcf.sample_size(AccuracyBudget(target_margin=1.0), 1000)
        assert size == 500  # one assumed stratum, 50% of expected items

    def test_accuracy_budget_inverts_equation9(self):
        vcf = VirtualCostFunction()
        vcf.observe([stats("a", c=10_000, variance=100.0)])
        tight = vcf.sample_size(AccuracyBudget(target_margin=0.05), 10_000)
        loose = vcf.sample_size(AccuracyBudget(target_margin=5.0), 10_000)
        assert tight > loose
        assert 1 <= loose <= 10_000

    def test_accuracy_budget_zero_variance(self):
        vcf = VirtualCostFunction()
        vcf.observe([stats("a", c=1000, variance=0.0)])
        assert vcf.sample_size(AccuracyBudget(target_margin=0.1), 1000) == 1

    def test_latency_budget_respects_capacity(self):
        cm = CostModel(tokens_per_item=1.0, tokens_per_core_second=1000.0)
        vcf = VirtualCostFunction(cost_model=cm, cores=2)
        vcf.observe([stats("a", c=10_000, variance=1.0)])
        size = vcf.sample_size(LatencyBudget(max_seconds=1.0), 100_000)
        assert size == 2000  # 2 cores * 1000 tokens/s / 1 stratum

    def test_resource_budget(self):
        cm = CostModel(tokens_per_item=1.0, tokens_per_core_second=500.0)
        vcf = VirtualCostFunction(cost_model=cm)
        vcf.observe([stats("a", c=1000, variance=1.0), stats("b", c=1000, variance=1.0)])
        size = vcf.sample_size(ResourceBudget(workers=2, cores_per_worker=2), 10_000)
        assert size == 1000  # 4 cores * 500 / 2 strata

    def test_sampling_fraction_clamped(self):
        vcf = VirtualCostFunction()
        frac = vcf.sampling_fraction(AccuracyBudget(target_margin=1e-9), 10)
        assert 0 < frac <= 1.0

    # -- edge translations: every budget kind stays sane at the boundaries --

    @pytest.mark.parametrize("budget", [
        AccuracyBudget(target_margin=0.1),
        LatencyBudget(max_seconds=1.0),
        ResourceBudget(workers=2),
    ])
    def test_zero_expected_items(self, budget):
        """An idle interval must still yield a positive, finite size."""
        vcf = VirtualCostFunction()
        vcf.observe([stats("a", c=1000, variance=4.0)])
        size = vcf.sample_size(budget, 0)
        assert size >= 1
        # And the fraction form degrades to 'keep everything' gracefully.
        assert vcf.sampling_fraction(budget, 0) == 1.0

    @pytest.mark.parametrize("budget", [
        AccuracyBudget(target_margin=0.1),
        LatencyBudget(max_seconds=1.0),
        ResourceBudget(workers=2),
    ])
    def test_zero_variance_strata(self, budget):
        """Constant-valued strata never force more than a token sample."""
        vcf = VirtualCostFunction()
        vcf.observe([stats("a", c=1000, variance=0.0),
                     stats("b", c=500, variance=0.0)])
        size = vcf.sample_size(budget, 1000)
        assert size >= 1
        if isinstance(budget, AccuracyBudget):
            assert size == 1  # Equation 9 needs no samples when s² = 0

    @pytest.mark.parametrize("budget", [
        AccuracyBudget(target_margin=0.1),
        LatencyBudget(max_seconds=1.0),
        ResourceBudget(workers=2),
    ])
    def test_single_stratum(self, budget):
        """One stratum gets the whole capacity, never more than observed."""
        vcf = VirtualCostFunction()
        vcf.observe([stats("only", c=2000, variance=9.0)])
        size = vcf.sample_size(budget, 2000)
        assert 1 <= size <= 200_000
        if isinstance(budget, AccuracyBudget):
            assert size <= 2000  # capped at the stratum's population

    def test_unknown_budget_type(self):
        with pytest.raises(TypeError):
            VirtualCostFunction().sample_size(object(), 100)

    def test_invalid_default_fraction(self):
        with pytest.raises(ValueError):
            VirtualCostFunction(default_fraction=0.0)


class TestAdaptiveController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSampleSizeController(initial_size=0, target_relative_margin=0.01)
        with pytest.raises(ValueError):
            AdaptiveSampleSizeController(initial_size=10, target_relative_margin=0.0)
        with pytest.raises(ValueError):
            AdaptiveSampleSizeController(10, 0.1, growth=1.0)
        with pytest.raises(ValueError):
            AdaptiveSampleSizeController(10, 0.1, decay=0.0)

    def test_grows_when_error_too_large(self):
        c = AdaptiveSampleSizeController(initial_size=100, target_relative_margin=0.01)
        assert c.update(0.05) == 150

    def test_decays_with_large_slack(self):
        c = AdaptiveSampleSizeController(initial_size=100, target_relative_margin=0.01)
        assert c.update(0.001) == 90

    def test_holds_within_band(self):
        c = AdaptiveSampleSizeController(initial_size=100, target_relative_margin=0.01)
        assert c.update(0.008) == 100

    def test_clamps_to_bounds(self):
        c = AdaptiveSampleSizeController(
            initial_size=100, target_relative_margin=0.01, min_size=50, max_size=120
        )
        assert c.update(1.0) == 120
        for _ in range(20):
            c.update(0.0)
        assert c.current_size == 50

    def test_converges_to_target(self):
        """Feedback loop drives error to the target band and stays there."""
        c = AdaptiveSampleSizeController(initial_size=10, target_relative_margin=0.02)
        # Simple noise model: relative margin ~ 1/sqrt(size).
        for _ in range(50):
            measured = 1.0 / (c.current_size ** 0.5)
            c.update(measured)
        final_error = 1.0 / (c.current_size ** 0.5)
        assert final_error <= 0.02 * 1.5

    def test_decay_settles_instead_of_ratcheting_to_min(self):
        """Regression: ``int()``-truncated decay lost one extra item per step,
        so a small size under sustained slack ratcheted all the way to
        ``min_size``; symmetric rounding settles at round(s·decay) == s."""
        c = AdaptiveSampleSizeController(
            initial_size=9, target_relative_margin=0.1, decay=0.9
        )
        sizes = [c.update(0.0) for _ in range(50)]
        assert sizes[-1] == sizes[-2]  # settled, not still falling
        assert sizes[-1] > 1  # and not at min_size (9·0.9^k never truncates to 1)

    @pytest.mark.parametrize("initial", [2, 10, 1_000, 100_000])
    @pytest.mark.parametrize("growth,decay", [(1.5, 0.9), (2.0, 0.8), (1.2, 0.95)])
    def test_convergence_property(self, initial, growth, decay):
        """From any start, the loop reaches the target band and then holds:
        once the measured margin meets the target it never leaves the band
        by more than one growth/decay step (no grow/decay oscillation)."""
        target = 0.01
        c = AdaptiveSampleSizeController(
            initial_size=initial, target_relative_margin=target,
            growth=growth, decay=decay,
        )
        sizes = []
        for _ in range(200):
            sizes.append(c.update(1.0 / (c.current_size ** 0.5)))
        tail = sizes[-20:]
        # Settled: the tail cycles within one multiplicative step's band.
        assert max(tail) <= math.ceil(min(tail) * growth)
        # And the settled sizes actually meet the target (within one decay
        # step of the exact fixed point 1/target² = 10,000).
        assert max(tail) >= (1.0 / target**2) * decay * decay
        assert min(tail) > c.min_size
