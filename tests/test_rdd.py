"""Tests for the MiniRDD batched substrate."""

import random

import pytest

from repro.engine.batched.rdd import MiniRDD
from repro.engine.cluster import SimulatedCluster


@pytest.fixture
def cluster():
    return SimulatedCluster(nodes=2, cores_per_node=4)


def rdd_of(cluster, data, parts=None):
    return MiniRDD.parallelize(cluster, data, num_partitions=parts)


class TestTransformations:
    def test_map(self, cluster):
        assert sorted(rdd_of(cluster, [1, 2, 3]).map(lambda x: x * 2).collect()) == [2, 4, 6]

    def test_filter(self, cluster):
        out = rdd_of(cluster, range(10)).filter(lambda x: x % 2 == 0).collect()
        assert sorted(out) == [0, 2, 4, 6, 8]

    def test_flat_map(self, cluster):
        out = rdd_of(cluster, [1, 2]).flat_map(lambda x: [x] * x).collect()
        assert sorted(out) == [1, 2, 2]

    def test_map_partitions(self, cluster):
        out = rdd_of(cluster, range(8), parts=4).map_partitions(lambda p: [sum(p)]).collect()
        assert sum(out) == 28
        assert len(out) == 4

    def test_union(self, cluster):
        a = rdd_of(cluster, [1, 2])
        b = rdd_of(cluster, [3])
        u = a.union(b)
        assert sorted(u.collect()) == [1, 2, 3]
        assert u.num_partitions == a.num_partitions + b.num_partitions

    def test_chaining_is_lazy(self, cluster):
        """Transformations alone launch no job."""
        rdd_of(cluster, range(100)).map(lambda x: x + 1).filter(lambda x: x > 5)
        assert cluster.stats.jobs_launched == 0

    def test_group_by_key(self, cluster):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        out = dict(rdd_of(cluster, pairs).group_by_key().collect())
        assert sorted(out["a"]) == [1, 3]
        assert out["b"] == [2]

    def test_reduce_by_key(self, cluster):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4)]
        out = dict(rdd_of(cluster, pairs).reduce_by_key(lambda x, y: x + y).collect())
        assert out == {"a": 4, "b": 6}

    def test_sort_by(self, cluster):
        out = rdd_of(cluster, [3, 1, 2]).sort_by(lambda x: x).collect()
        # Partitioned round-robin after sort; flatten preserves global sort
        # only per partition, so compare as multiset plus per-partition order.
        assert sorted(out) == [1, 2, 3]


class TestActions:
    def test_count(self, cluster):
        assert rdd_of(cluster, range(17)).count() == 17

    def test_reduce(self, cluster):
        assert rdd_of(cluster, [1, 2, 3, 4]).reduce(lambda a, b: a + b) == 10

    def test_reduce_empty_raises(self, cluster):
        with pytest.raises(ValueError):
            rdd_of(cluster, []).reduce(lambda a, b: a + b)

    def test_take(self, cluster):
        out = rdd_of(cluster, range(100)).take(5)
        assert len(out) == 5

    def test_action_launches_job_and_tasks(self, cluster):
        rdd = rdd_of(cluster, range(10), parts=4)
        rdd.collect()
        assert cluster.stats.jobs_launched == 1
        assert cluster.stats.tasks_launched == 4

    def test_process_all_charges_items(self, cluster):
        rdd = rdd_of(cluster, range(50))
        n = rdd.process_all()
        assert n == 50
        assert cluster.stats.items_processed == 50


class TestSamplingOperators:
    def test_sample_fraction(self, cluster):
        rdd = rdd_of(cluster, list(range(10_000)))
        out = rdd.sample(0.1, rng=random.Random(0)).collect()
        assert abs(len(out) - 1000) < 50

    def test_sample_charges_sort_and_keys(self, cluster):
        rdd = rdd_of(cluster, list(range(10_000)))
        rdd.sample(0.2, rng=random.Random(1)).collect()
        assert cluster.stats.items_sampled == 10_000
        assert cluster.stats.sort_comparisons > 0

    def test_sample_by_key_exact_sizes(self, cluster):
        pairs = [("a", i) for i in range(100)] + [("b", i) for i in range(50)]
        out = rdd_of(cluster, pairs).sample_by_key(0.2, rng=random.Random(2)).collect()
        counts = {}
        for key, _v in out:
            counts[key] = counts.get(key, 0) + 1
        assert counts == {"a": 20, "b": 10}

    def test_sample_by_key_charges_shuffle_and_barriers(self, cluster):
        pairs = [("a", i) for i in range(1000)] + [("b", i) for i in range(1000)]
        rdd_of(cluster, pairs).sample_by_key(0.5, rng=random.Random(3)).collect()
        assert cluster.stats.items_shuffled == 2000
        assert cluster.stats.barriers >= 3  # groupBy + per-stratum collects


class TestCostStructure:
    """The asymmetries the paper's evaluation rests on."""

    def test_groupbykey_costs_more_than_reducebykey(self):
        pairs = [("k%d" % (i % 5), i) for i in range(5000)]
        c1 = SimulatedCluster()
        MiniRDD.parallelize(c1, pairs).group_by_key().collect()
        c2 = SimulatedCluster()
        MiniRDD.parallelize(c2, pairs).reduce_by_key(lambda a, b: a + b).collect()
        assert c1.stats.items_shuffled > c2.stats.items_shuffled

    def test_sts_costs_more_than_srs(self):
        pairs = [("k%d" % (i % 3), float(i)) for i in range(20_000)]
        c_srs = SimulatedCluster()
        MiniRDD.parallelize(c_srs, pairs).sample(0.4, rng=random.Random(4)).collect()
        c_sts = SimulatedCluster()
        MiniRDD.parallelize(c_sts, pairs).sample_by_key(0.4, rng=random.Random(4)).collect()
        assert c_sts.elapsed() > c_srs.elapsed()

    def test_formation_cost_scales_with_items(self):
        c_small = SimulatedCluster()
        MiniRDD.parallelize(c_small, range(100))
        c_big = SimulatedCluster()
        MiniRDD.parallelize(c_big, range(100_000))
        assert c_big.elapsed() > c_small.elapsed()
