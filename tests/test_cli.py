"""Tests for the ``python -m repro`` command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main, make_workload


def run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--workload", "zipf"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.fraction == 0.6
        assert args.workload == "gaussian"
        assert len(args.systems) == 6

    def test_serve_defaults_and_tenants(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 7071
        assert args.tenant is None  # cmd_serve substitutes a default tenant
        args = build_parser().parse_args(
            ["serve", "--tenant", "alice", "--tenant", "bob:0.5",
             "--capacity", "5000", "--workers", "2", "--port", "0"]
        )
        assert args.tenant == ["alice", "bob:0.5"]
        assert args.capacity == 5000.0 and args.workers == 2

    def test_serve_rejects_bad_tenant_spec(self, capsys):
        code = main(["serve", "--port", "0", "--tenant", "bob:lots"])
        assert code == 2
        assert "budget" in capsys.readouterr().err


class TestMakeWorkload:
    @pytest.mark.parametrize("name", ["gaussian", "drift", "netflow", "taxi"])
    def test_workloads_build(self, name):
        stream, query = make_workload(name, rate=1000, duration=2, seed=0)
        assert stream
        ts, item = stream[0]
        assert query.key_fn(item) is not None
        assert isinstance(query.value_fn(item), float)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_workload("zipf", 100, 1, 0)


class TestCommands:
    def test_systems_lists_all_six(self):
        code, out = run_cli(["systems"])
        assert code == 0
        for name in (
            "spark-streamapprox",
            "flink-streamapprox",
            "spark-srs",
            "spark-sts",
            "native-spark",
            "native-flink",
        ):
            assert name in out

    def test_compare_prints_table_and_chart(self):
        code, out = run_cli(
            ["compare", "--rate", "2000", "--duration", "4",
             "--systems", "spark-streamapprox", "spark-srs"]
        )
        assert code == 0
        assert "spark-streamapprox" in out
        assert "throughput" in out
        assert "█" in out  # bar chart rendered

    def test_compare_native_ignores_fraction(self):
        code, out = run_cli(
            ["compare", "--rate", "1000", "--duration", "4",
             "--fraction", "0.1", "--systems", "native-spark"]
        )
        assert code == 0
        assert "0.000%" in out  # native stays exact

    def test_compare_unsupported_parallelism_fails_loudly(self, capsys):
        """--parallelism with a batch-only strategy: explicit error, exit 2."""
        code = main(
            ["compare", "--rate", "1000", "--duration", "4",
             "--systems", "spark-srs", "--parallelism", "2"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "parallelism=2 is not supported" in err
        assert "srs" in err

    def test_chunk_size_applies_to_all_systems(self):
        """Every system accepts --chunk-size (no silent fallback)."""
        code, out = run_cli(
            ["compare", "--rate", "1000", "--duration", "4",
             "--chunk-size", "128",
             "--systems", "spark-streamapprox", "spark-srs", "spark-sts",
             "native-spark", "native-flink", "flink-streamapprox",
             "native-streamapprox"]
        )
        assert code == 0
        assert "native-streamapprox" in out

    def test_parallelism_applies_to_all_oasrs_systems(self, monkeypatch):
        """--parallelism drives every OASRS system through the CLI."""
        monkeypatch.setenv("REPRO_NO_MP", "1")  # in-process shards: fast, same path
        code, out = run_cli(
            ["compare", "--rate", "1000", "--duration", "4",
             "--parallelism", "2",
             "--systems", "spark-streamapprox", "flink-streamapprox",
             "native-streamapprox"]
        )
        assert code == 0
        assert "flink-streamapprox" in out

    def test_compare_via_broker(self):
        code, out = run_cli(
            ["compare", "--rate", "1000", "--duration", "4", "--via-broker",
             "--broker-partitions", "3", "--broker-members", "2",
             "--systems", "spark-streamapprox", "flink-streamapprox"]
        )
        assert code == 0
        assert "spark-streamapprox" in out and "█" in out

    def test_compare_with_accuracy_budget_prints_trajectory(self):
        code, out = run_cli(
            ["compare", "--workload", "drift", "--rate", "2000",
             "--duration", "10", "--target-margin", "0.5",
             "--systems", "spark-streamapprox", "native-streamapprox"]
        )
        assert code == 0
        assert "AccuracyBudget" in out
        assert "adaptation trajectory — native-streamapprox" in out
        assert "target margin 0.5" in out

    def test_compare_with_latency_budget(self):
        code, out = run_cli(
            ["compare", "--rate", "1000", "--duration", "4",
             "--latency-budget", "0.05", "--systems", "native-streamapprox"]
        )
        assert code == 0
        assert "LatencyBudget" in out and "adaptation trajectory" in out

    def test_compare_with_cores_budget(self):
        code, out = run_cli(
            ["compare", "--rate", "1000", "--duration", "4",
             "--cores-budget", "2", "--systems", "native-streamapprox"]
        )
        assert code == 0
        assert "ResourceBudget" in out

    def test_mutually_exclusive_budget_flags(self, capsys):
        code = main(
            ["compare", "--rate", "1000", "--duration", "4",
             "--target-margin", "0.5", "--cores-budget", "2",
             "--systems", "native-streamapprox"]
        )
        assert code == 2
        assert "at most one query budget" in capsys.readouterr().err

    def test_budget_with_none_strategy_system_fails_loudly(self, capsys):
        code = main(
            ["compare", "--rate", "1000", "--duration", "4",
             "--target-margin", "0.5",
             "--systems", "native-spark", "native-streamapprox"]
        )
        # native systems run unsampled (budget skipped), so this succeeds —
        # the planner guard is exercised through the library path instead.
        assert code == 0

    def test_sweep_rejects_budget_flags(self, capsys):
        code = main(
            ["sweep", "--rate", "1000", "--duration", "4",
             "--fractions", "0.2", "--target-margin", "0.5",
             "--systems", "spark-streamapprox"]
        )
        assert code == 2
        assert "budget flags only apply" in capsys.readouterr().err

    def test_sweep_prints_series(self):
        code, out = run_cli(
            ["sweep", "--rate", "2000", "--duration", "4",
             "--fractions", "0.2", "0.6",
             "--systems", "spark-streamapprox",
             "--metric", "throughput"]
        )
        assert code == 0
        assert "0.2" in out and "0.6" in out
        assert "sampling fraction" in out
