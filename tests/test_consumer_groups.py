"""Tests for aggregator consumer groups (partition assignment + offsets)."""

import pytest

from repro.aggregator.broker import Broker
from repro.aggregator.groups import ConsumerGroup
from repro.aggregator.producer import Producer


def setup_topic(partitions=4, records=0):
    broker = Broker()
    broker.create_topic("t", num_partitions=partitions)
    producer = Producer(broker, "t")
    for i in range(records):
        producer.send(timestamp=float(i), value=f"v{i}", key=i)
    return broker, producer


class TestAssignment:
    def test_single_member_gets_everything(self):
        broker, _ = setup_topic(partitions=4)
        group = ConsumerGroup(broker, "t", "g1")
        member = group.join()
        assert sorted(member.assignment) == [0, 1, 2, 3]

    def test_partitions_split_disjointly(self):
        broker, _ = setup_topic(partitions=4)
        group = ConsumerGroup(broker, "t", "g1")
        a, b = group.join(), group.join()
        assert sorted(a.assignment + b.assignment) == [0, 1, 2, 3]
        assert set(a.assignment).isdisjoint(b.assignment)

    def test_uneven_split_range_assignment(self):
        broker, _ = setup_topic(partitions=5)
        group = ConsumerGroup(broker, "t", "g1")
        members = [group.join() for _ in range(2)]
        sizes = sorted(len(m.assignment) for m in members)
        assert sizes == [2, 3]

    def test_more_members_than_partitions(self):
        broker, _ = setup_topic(partitions=2)
        group = ConsumerGroup(broker, "t", "g1")
        members = [group.join() for _ in range(4)]
        sizes = [len(m.assignment) for m in members]
        assert sum(sizes) == 2
        assert max(sizes) <= 1

    def test_generation_bumps_on_membership_change(self):
        broker, _ = setup_topic()
        group = ConsumerGroup(broker, "t", "g1")
        g0 = group.generation
        member = group.join()
        assert group.generation == g0 + 1
        group.leave(member)
        assert group.generation == g0 + 2

    def test_leave_unknown_member(self):
        broker, _ = setup_topic()
        g1 = ConsumerGroup(broker, "t", "g1")
        g2 = ConsumerGroup(broker, "t", "g2")
        member = g1.join()
        with pytest.raises(ValueError):
            g2.leave(member)


class TestDelivery:
    def test_exactly_once_within_group(self):
        broker, _ = setup_topic(partitions=4, records=100)
        group = ConsumerGroup(broker, "t", "g1")
        a, b = group.join(), group.join()
        seen = [r.value for r in a.poll()] + [r.value for r in b.poll()]
        assert sorted(seen) == sorted(f"v{i}" for i in range(100))
        assert len(set(seen)) == 100

    def test_independent_groups_both_see_all(self):
        broker, _ = setup_topic(partitions=2, records=20)
        g1 = ConsumerGroup(broker, "t", "g1").join()
        g2 = ConsumerGroup(broker, "t", "g2").join()
        assert len(g1.poll()) == 20
        assert len(g2.poll()) == 20

    def test_offsets_survive_rebalance(self):
        """Records consumed before a member joins are not re-delivered."""
        broker, producer = setup_topic(partitions=2, records=10)
        group = ConsumerGroup(broker, "t", "g1")
        first = group.join()
        assert len(first.poll()) == 10
        second = group.join()  # rebalance
        producer.send(timestamp=100.0, value="late", key=0)
        delivered = [r.value for r in first.poll()] + [r.value for r in second.poll()]
        assert delivered == ["late"]

    def test_lag_accounting(self):
        broker, producer = setup_topic(partitions=2, records=6)
        group = ConsumerGroup(broker, "t", "g1")
        member = group.join()
        assert group.lag() == 6
        member.poll()
        assert group.lag() == 0
        producer.send(7.0, "x", key=1)
        assert group.lag() == 1

    def test_member_poll_respects_max_records(self):
        broker, _ = setup_topic(partitions=1, records=10)
        member = ConsumerGroup(broker, "t", "g1").join()
        assert len(member.poll(max_records=4)) == 4
        assert len(member.poll()) == 6

    def test_poll_sorted_by_timestamp(self):
        broker, _ = setup_topic(partitions=3, records=30)
        member = ConsumerGroup(broker, "t", "g1").join()
        records = member.poll()
        timestamps = [r.timestamp for r in records]
        assert timestamps == sorted(timestamps)

    def test_close_leaves_group(self):
        broker, _ = setup_topic(partitions=4, records=0)
        group = ConsumerGroup(broker, "t", "g1")
        a, b = group.join(), group.join()
        a.close()
        assert len(group.members) == 1
        assert sorted(b.assignment) == [0, 1, 2, 3]
