"""Checkpoint round-trip properties: snapshot → restore is exact.

The fault-tolerance service is only sound if restoring a checkpoint
reproduces the uninterrupted run bit for bit — same samples, same RNG
draws, same budget decisions.  These tests pin that property with
Hypothesis over arbitrary interval boundaries, item mixes, and seeds:

* `repro.core.recovery.sampler_state` / ``restore_sampler`` round-trip the
  OASRS sampler (reservoirs, counters, allocation policy, and both the
  Python and per-reservoir NumPy RNG streams),
* `repro.runtime.checkpoint.controller_state` / ``restore_controller``
  round-trip the §4.2 budget controller mid-trajectory,
* `repro.runtime.driver.execute_plan(resume_from=…)` resumes a direct-
  engine plan from any pane checkpoint to the uninterrupted panes.

Plus plain unit coverage of the `CheckpointStore` / `PaneCheckpoint`
surface (persistence, validation, plan-compatibility checks).
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import AccuracyBudget
from repro.core.error import ErrorBound
from repro.core.oasrs import OASRSSampler, WaterFillingAllocation
from repro.core.query import StratumStats
from repro.core.recovery import restore_sampler, sampler_state
from repro.core.strata import stratum_weight
from repro.runtime import (
    CheckpointPolicy,
    CheckpointStore,
    ListSource,
    PaneCheckpoint,
    PlanError,
    StreamQuery,
    SystemConfig,
    WindowConfig,
    build_plan,
    execute_plan,
)
from repro.runtime.checkpoint import controller_state, restore_controller
from repro.runtime.control import BudgetController

KEY = lambda item: item[0]  # noqa: E731

items_strategy = st.lists(
    st.tuples(st.sampled_from("abc"), st.floats(-100, 100)),
    min_size=0,
    max_size=60,
)


def sample_fingerprint(sample):
    """Order-independent exact identity of a `WeightedSample`."""
    return sorted(
        (s.key, tuple(s.items), s.count, s.weight) for s in sample
    )


def make_sampler(seed, total=12):
    return OASRSSampler(
        WaterFillingAllocation(total), KEY, rng=random.Random(seed)
    )


def feed_interval(sampler, items, chunk):
    if chunk:
        for start in range(0, len(items), chunk):
            sampler.process_chunk(items[start : start + chunk])
    else:
        for item in items:
            sampler.offer(item)
    return sampler.close_interval()


class TestSamplerRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        before=items_strategy,
        after=items_strategy,
        seed=st.integers(0, 2**16),
        chunk=st.sampled_from([0, 5]),
    )
    def test_restore_at_interval_boundary_is_exact(
        self, before, after, seed, chunk
    ):
        # Uninterrupted sampler: two intervals back to back.
        original = make_sampler(seed)
        feed_interval(original, before, chunk)
        uninterrupted = feed_interval(original, after, chunk)

        # Crashed-and-restored sampler: snapshot at the boundary, restore
        # into a fresh instance built the way a resumed run builds it.
        crashed = make_sampler(seed)
        feed_interval(crashed, before, chunk)
        state = sampler_state(crashed)
        restored = make_sampler(0)
        restore_sampler(restored, state)
        resumed = feed_interval(restored, after, chunk)

        assert sample_fingerprint(resumed) == sample_fingerprint(uninterrupted)
        assert restored._rng.getstate() == original._rng.getstate()

    @settings(max_examples=25, deadline=None)
    @given(before=items_strategy, seed=st.integers(0, 2**16))
    def test_snapshot_does_not_perturb_the_sampler(self, before, seed):
        # Taking a checkpoint must be a pure observation.
        observed = make_sampler(seed)
        plain = make_sampler(seed)
        feed_interval(observed, before, 0)
        feed_interval(plain, before, 0)
        sampler_state(observed)
        extra = [("a", 1.0), ("b", 2.0)] * 10
        assert sample_fingerprint(feed_interval(observed, extra, 0)) == (
            sample_fingerprint(feed_interval(plain, extra, 0))
        )
        assert observed._rng.getstate() == plain._rng.getstate()

    def test_vectorized_reservoir_rng_round_trips(self):
        # Chunks >= VECTOR_MIN route through each reservoir's private NumPy
        # generator; its bit-stream position must survive the round-trip.
        pytest.importorskip("numpy")
        chunk = [("a", float(i)) for i in range(256)]
        original = make_sampler(99, total=8)
        original.process_chunk(chunk)
        original.close_interval()

        state = sampler_state(original)
        restored = make_sampler(0, total=8)
        restore_sampler(restored, state)

        follow_up = [("a", float(-i)) for i in range(512)]
        original.process_chunk(follow_up)
        restored.process_chunk(follow_up)
        assert sample_fingerprint(restored.close_interval()) == (
            sample_fingerprint(original.close_interval())
        )


def synthetic_pane(values, population):
    """One pane's (strata, bound) from a list of per-stratum sample sizes."""
    strata = []
    for index, y in enumerate(values):
        c = max(y, population)
        strata.append(
            StratumStats(
                key=f"s{index}", y=y, c=c, weight=stratum_weight(c, y),
                total=float(y), mean=1.0, variance=1.0 + index,
            )
        )
    sampled = sum(s.y for s in strata)
    bound = ErrorBound(value=1.0, variance=1.0, confidence=0.95,
                       margin=1.0 / (sampled + 1))
    return strata, bound


class TestControllerRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        panes=st.lists(
            st.lists(st.integers(1, 400), min_size=1, max_size=4),
            min_size=1,
            max_size=6,
        ),
        split=st.integers(0, 5),
    )
    def test_restored_controller_makes_identical_decisions(self, panes, split):
        split = min(split, len(panes))
        config = SystemConfig(sampling_fraction=0.5, seed=3)
        window = WindowConfig(10.0, 5.0)
        budget = AccuracyBudget(target_margin=0.05)

        uninterrupted = BudgetController(budget, config, window)
        decisions = []
        for values in panes:
            strata, bound = synthetic_pane(values, 1000)
            decisions.append(uninterrupted.on_pane(strata, bound, 1000))

        crashed = BudgetController(budget, config, window)
        for values in panes[:split]:
            strata, bound = synthetic_pane(values, 1000)
            crashed.on_pane(strata, bound, 1000)
        state = controller_state(crashed)
        restored = BudgetController(budget, config, window)
        restore_controller(restored, state)

        resumed = []
        for values in panes[split:]:
            strata, bound = synthetic_pane(values, 1000)
            resumed.append(restored.on_pane(strata, bound, 1000))
        assert resumed == decisions[split:]
        assert [p.sample_budget for p in restored.trajectory] == (
            [p.sample_budget for p in uninterrupted.trajectory]
        )


# ---------------------------------------------------------------------------
# Plan-level resume on the direct engine
# ---------------------------------------------------------------------------


def tiny_stream(seed, n=400):
    rng = random.Random(seed)
    return [
        (i * (12.0 / n), (rng.choice("abc"), rng.gauss(10.0, 2.0)))
        for i in range(n)
    ]


def tiny_plan(stream, **config_overrides):
    query = StreamQuery(key_fn=KEY, value_fn=lambda it: it[1], kind="mean")
    config = SystemConfig(sampling_fraction=0.4, seed=11, **config_overrides)
    return build_plan(
        query, WindowConfig(6.0, 3.0), config,
        engine="direct", strategy="oasrs",
        source=ListSource(stream), name="tiny",
    )


def pane_fingerprint(results):
    return [
        (r.end, r.estimate, r.sampled_items, r.total_items,
         r.error.margin if r.error else None)
        for r in results
    ]


class TestPlanLevelResume:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_direct_resume_matches_uninterrupted_from_every_checkpoint(
        self, seed
    ):
        stream = tiny_stream(seed)
        base, _ = execute_plan(tiny_plan(stream))
        store = CheckpointStore()
        policy = CheckpointPolicy(every=1)
        observed, _ = execute_plan(
            tiny_plan(stream, checkpoint=policy), checkpoint_store=store
        )
        assert pane_fingerprint(observed) == pane_fingerprint(base)
        assert len(store) == len(base)
        for index in store.indices():
            resumed, _ = execute_plan(
                tiny_plan(stream, checkpoint=policy),
                resume_from=store.get(index),
            )
            assert pane_fingerprint(resumed) == pane_fingerprint(base)


# ---------------------------------------------------------------------------
# Store / checkpoint surface and validation
# ---------------------------------------------------------------------------


def one_checkpoint(stream=None):
    stream = stream if stream is not None else tiny_stream(5)
    store = CheckpointStore()
    execute_plan(
        tiny_plan(stream, checkpoint=CheckpointPolicy(every=1)),
        checkpoint_store=store,
    )
    return store


class TestCheckpointSurface:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(every=0)
        with pytest.raises(ValueError):
            SystemConfig(checkpoint="yes")
        with pytest.raises(ValueError):
            SystemConfig(faults="chaos")

    def test_store_latest_and_indices(self):
        store = one_checkpoint()
        indices = store.indices()
        assert indices == sorted(indices)
        latest = store.latest()
        assert latest is not None
        assert latest.pane_index == max(indices)
        assert store.get(indices[0]).pane_index == indices[0]

    def test_checkpoint_bytes_round_trip(self):
        checkpoint = one_checkpoint().latest()
        clone = PaneCheckpoint.from_bytes(checkpoint.to_bytes())
        assert clone.pane_index == checkpoint.pane_index
        assert clone.pane_end == checkpoint.pane_end
        assert pane_fingerprint(clone.results) == (
            pane_fingerprint(checkpoint.results)
        )

    def test_from_bytes_rejects_other_pickles(self):
        with pytest.raises(TypeError):
            PaneCheckpoint.from_bytes(pickle.dumps({"not": "a checkpoint"}))

    def test_store_dump_load_round_trip(self, tmp_path):
        stream = tiny_stream(5)
        store = one_checkpoint(stream)
        path = tmp_path / "checkpoints.pkl"
        store.dump(path)
        loaded = CheckpointStore.load(path)
        assert loaded.indices() == store.indices()
        # A checkpoint that crossed the disk boundary still resumes exactly.
        base, _ = execute_plan(tiny_plan(stream))
        resumed, _ = execute_plan(
            tiny_plan(stream, checkpoint=CheckpointPolicy(every=1)),
            resume_from=loaded.latest(),
        )
        assert pane_fingerprint(resumed) == pane_fingerprint(base)

    def test_checkpoint_requires_replayable_source(self):
        class OneShotSource(ListSource):
            # A source that cannot re-produce its events (e.g. a live feed).
            replayable = False

        query = StreamQuery(key_fn=KEY, value_fn=lambda it: it[1])
        with pytest.raises(PlanError, match="replayable"):
            build_plan(
                query, WindowConfig(6.0, 3.0),
                SystemConfig(checkpoint=CheckpointPolicy(every=1)),
                engine="direct", strategy="oasrs",
                source=OneShotSource(tiny_stream(1)), name="bad",
            )

    def test_faults_require_shardable_parallel_plan(self):
        from repro.core.recovery import FaultSchedule, ShardKill

        query = StreamQuery(key_fn=KEY, value_fn=lambda it: it[1])
        faults = FaultSchedule(kills=(ShardKill(interval=0, worker=0),))
        with pytest.raises(PlanError, match="parallelism"):
            build_plan(
                query, WindowConfig(6.0, 3.0),
                SystemConfig(faults=faults),
                engine="direct", strategy="oasrs",
                source=ListSource(tiny_stream(1)), name="bad",
            )

    def test_resume_rejects_engine_mismatch(self):
        stream = tiny_stream(5)
        checkpoint = one_checkpoint(stream).latest()
        query = StreamQuery(key_fn=KEY, value_fn=lambda it: it[1])
        batched_plan = build_plan(
            query, WindowConfig(6.0, 3.0),
            SystemConfig(sampling_fraction=0.4, seed=11,
                         checkpoint=CheckpointPolicy(every=1)),
            engine="batched", strategy="oasrs",
            source=ListSource(stream), name="other",
        )
        with pytest.raises(PlanError, match="cannot resume"):
            execute_plan(batched_plan, resume_from=checkpoint)

    def test_resume_rejects_truncated_source(self):
        stream = tiny_stream(5)
        checkpoint = one_checkpoint(stream).latest()
        short = stream[: checkpoint.stream_position - 1]
        with pytest.raises(PlanError, match="beyond the source"):
            execute_plan(
                tiny_plan(short, checkpoint=CheckpointPolicy(every=1)),
                resume_from=checkpoint,
            )
