"""Tests for the pipelined (Flink-like) engine."""

import random

import pytest

from repro.core.oasrs import FixedPerStratum, OASRSSampler
from repro.core.query import approximate_mean
from repro.engine.cluster import SimulatedCluster
from repro.engine.pipelined.dataflow import Pipeline

KEY = lambda item: item[0]  # noqa: E731
VAL = lambda item: item[1]  # noqa: E731


@pytest.fixture
def cluster():
    return SimulatedCluster(nodes=1, cores_per_node=4)


class TestPipelineBasics:
    def test_map_filter_sink(self, cluster):
        out = (
            Pipeline(cluster)
            .map(lambda x: x * 2)
            .filter(lambda x: x > 2)
            .sink_collect()
            .run([(0.1, 1), (0.2, 2), (0.3, 3)])
        )
        assert [v for _ts, v in out] == [4, 6]

    def test_run_without_sink_raises(self, cluster):
        with pytest.raises(RuntimeError):
            Pipeline(cluster).map(lambda x: x).run([(0.0, 1)])

    def test_stage_after_sink_raises(self, cluster):
        p = Pipeline(cluster).sink_collect()
        with pytest.raises(RuntimeError):
            p.map(lambda x: x)

    def test_out_of_order_stream_rejected(self, cluster):
        p = Pipeline(cluster).sink_collect()
        with pytest.raises(ValueError):
            p.run([(1.0, "a"), (0.5, "b")])

    def test_source_charges_ingest(self, cluster):
        Pipeline(cluster).sink_collect().run([(0.1, i) for i in range(10)])
        assert cluster.stats.items_ingested == 10

    def test_process_sink_charges_processing(self, cluster):
        Pipeline(cluster).sink_process().run([(0.1, i) for i in range(10)])
        assert cluster.stats.items_processed == 10

    def test_no_batch_overheads_on_pipelined_path(self, cluster):
        """Structural Flink property: no jobs, tasks, RDDs, or barriers."""
        Pipeline(cluster).map(lambda x: x).sink_process().run(
            [(0.01 * i, i) for i in range(100)]
        )
        s = cluster.stats
        assert s.jobs_launched == 0
        assert s.tasks_launched == 0
        assert s.rdds_created == 0
        assert s.barriers == 0


class TestSlidingWindowOperator:
    def test_window_aggregation(self, cluster):
        stream = [(float(t), 1) for t in range(1, 21)]
        out = (
            Pipeline(cluster)
            .window(length=10.0, slide=5.0, aggregate=lambda pane: len(pane))
            .sink_collect()
            .run(stream)
        )
        fires = {ts: v for ts, v in out}
        assert fires[10.0] == 9  # items at t=1..9 (t=10 arrives after the fire)
        assert fires[15.0] == 10  # t=5..14

    def test_eviction(self, cluster):
        stream = [(0.5, "old")] + [(float(t), "new") for t in range(20, 25)]
        out = (
            Pipeline(cluster)
            .window(length=5.0, slide=5.0, aggregate=lambda pane: [v for _t, v in pane])
            .sink_collect()
            .run(stream)
        )
        final_panes = [v for _ts, v in out[1:]]
        assert all("old" not in pane for pane in final_panes)

    def test_window_charges_processing_per_pane_item(self, cluster):
        stream = [(float(t), t) for t in range(1, 11)]
        Pipeline(cluster).window(
            length=5.0, slide=5.0, aggregate=len
        ).sink_collect().run(stream)
        assert cluster.stats.items_processed > 0


class TestOASRSOperator:
    def _run(self, cluster, stream, capacity=8, slide=5.0):
        sampler = OASRSSampler(FixedPerStratum(capacity), key_fn=KEY, rng=random.Random(0))
        return (
            Pipeline(cluster)
            .sample_oasrs(sampler, slide=slide)
            .sink_collect()
            .run(stream)
        )

    def test_one_sample_per_slide(self, cluster):
        stream = [(t * 0.1, ("a", t)) for t in range(1, 200)]
        out = self._run(cluster, stream)
        # 19.9 seconds of stream, slide 5 s → fires at 5, 10, 15 (+ final flush).
        fire_times = [ts for ts, _s in out]
        assert fire_times[:3] == [5.0, 10.0, 15.0]

    def test_sample_respects_capacity_and_counts(self, cluster):
        stream = [(t * 0.01, ("a", t)) for t in range(1, 400)]
        out = self._run(cluster, stream, capacity=8, slide=1.0)
        first = out[0][1]
        assert first["a"].sample_size == 8
        assert first["a"].count == 99  # items with ts in (0, 1)

    def test_sampling_charged_per_seen_item(self, cluster):
        stream = [(t * 0.1, ("a", t)) for t in range(1, 51)]
        self._run(cluster, stream)
        assert cluster.stats.items_sampled == 50

    def test_end_to_end_mean_estimate(self, cluster):
        rng = random.Random(7)
        stream = [(t * 0.001, ("s", rng.gauss(100, 5))) for t in range(1, 5001)]
        sampler = OASRSSampler(FixedPerStratum(200), key_fn=KEY, rng=random.Random(1))
        out = (
            Pipeline(cluster)
            .sample_oasrs(sampler, slide=5.0)
            .map(lambda sample: approximate_mean(sample, VAL).value)
            .sink_collect()
            .run(stream)
        )
        assert out, "no panes emitted"
        # The first pane covers ~5000 items; the trailing flush pane may hold
        # only a handful, so judge accuracy on well-populated panes only.
        assert abs(out[0][1] - 100.0) < 2.0


class TestSampleWindowOperator:
    def test_merges_slide_samples_into_window(self, cluster):
        sampler = OASRSSampler(FixedPerStratum(100), key_fn=KEY, rng=random.Random(2))
        stream = [(t * 0.1, ("a", 1.0)) for t in range(1, 101)]  # 10 seconds
        out = (
            Pipeline(cluster)
            .sample_oasrs(sampler, slide=5.0)
            .window_samples(intervals_per_window=2, aggregate=lambda s: s.total_count)
            .sink_collect()
            .run(stream)
        )
        # The pane firing at t=10 merges both 5-second samples (~100 items);
        # a trailing flush pane may follow with fewer.
        by_ts = dict(out)
        assert by_ts[10.0] == pytest.approx(99, abs=1)
