"""Tests for the Kafka-like stream aggregator substrate."""

import pytest

from repro.aggregator.broker import Broker
from repro.aggregator.consumer import Consumer
from repro.aggregator.producer import Producer, SubStreamProducer
from repro.aggregator.replay import ReplayTool, interleave_substreams


class TestBroker:
    def test_create_and_lookup(self):
        broker = Broker()
        topic = broker.create_topic("events", num_partitions=3)
        assert broker.topic("events") is topic
        assert broker.has_topic("events")
        assert broker.topics() == ["events"]

    def test_duplicate_topic_rejected(self):
        broker = Broker()
        broker.create_topic("t")
        with pytest.raises(KeyError):
            broker.create_topic("t")

    def test_unknown_topic(self):
        with pytest.raises(KeyError):
            Broker().topic("nope")

    def test_partition_count_validation(self):
        with pytest.raises(ValueError):
            Broker().create_topic("t", num_partitions=0)

    def test_keyed_routing_stable(self):
        broker = Broker()
        topic = broker.create_topic("t", num_partitions=4)
        p1 = topic.partition_for("sensor-1")
        p2 = topic.partition_for("sensor-1")
        assert p1 is p2

    def test_unkeyed_round_robin(self):
        broker = Broker()
        topic = broker.create_topic("t", num_partitions=2)
        a = topic.partition_for(None)
        b = topic.partition_for(None)
        assert a is not b

    def test_offsets_monotonic(self):
        broker = Broker()
        topic = broker.create_topic("t", num_partitions=1)
        assert topic.append(0.1, "k", "a") == 0
        assert topic.append(0.2, "k", "b") == 1
        assert topic.total_records == 2


class TestProducerConsumer:
    def test_producer_counts(self):
        broker = Broker()
        broker.create_topic("t")
        producer = Producer(broker, "t")
        producer.send_all([(0.1, "a"), (0.2, "b")])
        assert producer.sent == 2

    def test_substream_producer_tags_key(self):
        broker = Broker()
        broker.create_topic("t")
        producer = SubStreamProducer(broker, "t", source_id="S1")
        producer.send(0.1, "x")
        record = broker.topic("t").partitions[0].fetch(0)[0]
        assert record.key == "S1"

    def test_substream_producer_rejects_foreign_key(self):
        broker = Broker()
        broker.create_topic("t")
        producer = SubStreamProducer(broker, "t", source_id="S1")
        with pytest.raises(ValueError):
            producer.send(0.1, "x", key="S2")

    def test_consumer_merges_by_timestamp(self):
        # Integer keys hash to themselves, so each lands in its own
        # partition; the consumer must re-merge them into timestamp order.
        broker = Broker()
        broker.create_topic("t", num_partitions=3)
        producer = Producer(broker, "t")
        producer.send(0.3, "c", key=2)
        producer.send(0.1, "a", key=0)
        producer.send(0.2, "b", key=1)
        consumer = Consumer(broker, "t")
        values = [v for _ts, v in consumer.stream()]
        assert values == ["a", "b", "c"]

    def test_poll_resumes_from_offset(self):
        broker = Broker()
        broker.create_topic("t", num_partitions=1)
        producer = Producer(broker, "t")
        producer.send(0.1, "a")
        consumer = Consumer(broker, "t")
        assert [r.value for r in consumer.poll()] == ["a"]
        producer.send(0.2, "b")
        assert [r.value for r in consumer.poll()] == ["b"]

    def test_lag_and_seek(self):
        broker = Broker()
        broker.create_topic("t", num_partitions=1)
        Producer(broker, "t").send_all([(0.1, "a"), (0.2, "b")])
        consumer = Consumer(broker, "t")
        assert consumer.lag == 2
        consumer.poll()
        assert consumer.lag == 0
        consumer.seek_to_beginning()
        assert consumer.lag == 2

    def test_poll_max_records(self):
        broker = Broker()
        broker.create_topic("t", num_partitions=1)
        Producer(broker, "t").send_all([(0.1, "a"), (0.2, "b"), (0.3, "c")])
        consumer = Consumer(broker, "t")
        assert len(consumer.poll(max_records=2)) == 2
        assert len(consumer.poll()) == 1


class TestReplay:
    def test_interleave_rates(self):
        """A 10 items/s sub-stream emits twice as often as a 5 items/s one."""
        merged = list(
            interleave_substreams(
                {"fast": (10.0, ["f"] * 10), "slow": (5.0, ["s"] * 5)}
            )
        )
        assert len(merged) == 15
        timestamps = [ts for ts, _v in merged]
        assert timestamps == sorted(timestamps)
        # Both finish at t = 1.0.
        assert timestamps[-1] == pytest.approx(1.0)

    def test_interleave_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            list(interleave_substreams({"s": (0.0, [1])}))

    def test_interleave_empty_substream_skipped(self):
        merged = list(interleave_substreams({"empty": (1.0, []), "one": (1.0, ["x"])}))
        assert [v for _ts, v in merged] == ["x"]

    def test_replay_through_broker(self):
        broker = Broker()
        tool = ReplayTool(broker, "events", num_partitions=2)
        sent = tool.replay({"A": (100.0, range(10)), "B": (50.0, range(5))})
        assert sent == 15
        consumer = Consumer(broker, "events")
        records = consumer.poll()
        assert len(records) == 15
        # Stratification preserved: every record keyed by its source.
        assert {r.key for r in records} == {"A", "B"}
