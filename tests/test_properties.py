"""Cross-module property-based tests (hypothesis) on system invariants.

These complement the per-module suites with properties that span layers:
conservation of items through batching/windowing, budget accounting in the
water-filling allocator, algebraic laws of the sample merge, and estimator
consistency between the sampled and exact paths.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oasrs import oasrs_sample, water_filling_capacities
from repro.core.query import approximate_mean, approximate_sum
from repro.core.strata import (
    StratumSample,
    WeightedSample,
    combine_worker_samples,
    stratum_weight,
)
from repro.engine.batched.dstream import Batcher, SlidingWindower
from repro.sampling.srs import ScaSRSSampler

KEY = lambda it: it[0]  # noqa: E731
VAL = lambda it: it[1]  # noqa: E731


# ---------------------------------------------------------------- batching

@settings(max_examples=50, deadline=None)
@given(
    timestamps=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=0,
        max_size=200,
    ),
    interval=st.sampled_from([0.25, 0.5, 1.0, 2.0]),
)
def test_batcher_conserves_items(timestamps, interval):
    """Every stream item lands in exactly one micro-batch, in its interval."""
    stream = [(ts, i) for i, ts in enumerate(sorted(timestamps))]
    batches = list(Batcher(interval).batches(stream))
    emitted = [x for b in batches for x in b.items]
    assert sorted(emitted) == [i for i, _ts in enumerate(timestamps)]
    for batch in batches:
        for item in batch.items:
            ts = stream[item][0]
            assert batch.start <= ts < batch.end + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 150),
    per_window=st.integers(1, 6),
    per_slide=st.integers(1, 3),
)
def test_window_panes_cover_expected_batches(n, per_window, per_slide):
    if per_slide > per_window:
        per_window = per_slide
    interval = 1.0
    stream = [(t + 0.5, t) for t in range(n)]
    windower = SlidingWindower(per_window * interval, per_slide * interval, interval)
    for pane in windower.panes(Batcher(interval).batches(stream)):
        assert 1 <= len(pane.batches) <= per_window
        # Batches inside a pane are consecutive and end at the pane's end.
        indices = [b.index for b in pane.batches]
        assert indices == list(range(indices[0], indices[0] + len(indices)))
        assert pane.batches[-1].end == pytest.approx(pane.end)


# ---------------------------------------------------------------- allocation

@settings(max_examples=100)
@given(
    counts=st.dictionaries(
        st.integers(0, 20), st.integers(0, 10_000), min_size=1, max_size=10
    ),
    budget=st.integers(1, 5_000),
)
def test_water_filling_budget_accounting(counts, budget):
    capacities = water_filling_capacities(counts, budget)
    active = {k: c for k, c in counts.items() if c > 0}
    assert set(capacities) == set(active)
    for key, cap in capacities.items():
        assert cap >= 1
        # Never allocate above the stratum's own size (beyond the 1 floor).
        assert cap <= max(1, active[key])
    # Total allocation stays within budget + the per-stratum floors.
    assert sum(capacities.values()) <= budget + len(active)


@settings(max_examples=60)
@given(
    counts=st.dictionaries(
        st.integers(0, 10), st.integers(1, 1000), min_size=2, max_size=8
    ),
    budget=st.integers(10, 2000),
)
def test_water_filling_small_strata_kept_whole(counts, budget):
    """Any stratum smaller than the final level is retained entirely."""
    capacities = water_filling_capacities(counts, budget)
    level = max(capacities.values())
    for key, count in counts.items():
        if count < level:
            assert capacities[key] == max(1, min(count, capacities[key]))
            if count <= budget // len(counts):
                assert capacities[key] == max(1, count)


# ---------------------------------------------------------------- merge laws

def _stratum(key, values, count):
    return StratumSample(key, tuple(values), count, stratum_weight(count, len(values)))


@settings(max_examples=50)
@given(
    counts=st.lists(st.integers(1, 100), min_size=2, max_size=5),
    seed=st.integers(0, 10_000),
)
def test_merge_is_order_independent(counts, seed):
    """combine_worker_samples gives the same totals in any worker order."""
    rng = random.Random(seed)
    parts = []
    for i, c in enumerate(counts):
        y = rng.randint(1, c)
        ws = WeightedSample()
        ws.add(_stratum("s", [float(rng.randint(0, 9)) for _ in range(y)], c))
        parts.append(ws)
    forward = combine_worker_samples(parts)
    backward = combine_worker_samples(list(reversed(parts)))
    assert forward["s"].count == backward["s"].count
    assert forward["s"].sample_size == backward["s"].sample_size
    assert forward["s"].weight == pytest.approx(backward["s"].weight)
    assert approximate_sum(forward).value == pytest.approx(
        approximate_sum(backward).value
    )


@settings(max_examples=50)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    count_extra=st.integers(0, 1000),
)
def test_sum_estimate_scales_linearly_with_weight(values, count_extra):
    """SUM(sample) == weight × Σ values — the linear-query identity."""
    count = len(values) + count_extra
    ws = WeightedSample()
    ws.add(_stratum("s", values, count))
    expected = stratum_weight(count, len(values)) * sum(values)
    assert approximate_sum(ws).value == pytest.approx(expected, rel=1e-9, abs=1e-6)


# ---------------------------------------------------------------- estimators

@settings(max_examples=30, deadline=None)
@given(
    sizes=st.dictionaries(
        st.sampled_from(["a", "b", "c"]), st.integers(1, 200), min_size=1, max_size=3
    ),
    seed=st.integers(0, 2**31 - 1),
)
def test_estimates_exact_when_capacity_covers_stream(sizes, seed):
    """If every reservoir is large enough, OASRS degenerates to identity."""
    rng = random.Random(seed)
    items = [(k, rng.uniform(-100, 100)) for k, n in sizes.items() for _ in range(n)]
    capacity = max(sizes.values())
    sample = oasrs_sample(items, capacity, key_fn=KEY, rng=random.Random(seed))
    truth_sum = sum(v for _k, v in items)
    truth_mean = truth_sum / len(items)
    assert approximate_sum(sample, VAL).value == pytest.approx(truth_sum, rel=1e-9, abs=1e-6)
    assert approximate_mean(sample, VAL).value == pytest.approx(truth_mean, rel=1e-9, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(10, 2000),
    k=st.integers(1, 200),
    seed=st.integers(0, 2**31 - 1),
)
def test_srs_sample_is_exact_size_without_replacement(n, k, seed):
    result = ScaSRSSampler(rng=random.Random(seed)).sample(list(range(n)), k)
    assert len(result.items) == min(n, k)
    assert len(set(result.items)) == len(result.items)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), capacity=st.integers(1, 500))
def test_mean_estimate_within_value_hull(seed, capacity):
    """A weighted mean can never leave [min, max] of the stream's values."""
    rng = random.Random(seed)
    items = [("s", rng.uniform(0, 1000)) for _ in range(300)]
    sample = oasrs_sample(items, capacity, key_fn=KEY, rng=random.Random(seed + 1))
    estimate = approximate_mean(sample, VAL).value
    values = [v for _k, v in items]
    assert min(values) - 1e-9 <= estimate <= max(values) + 1e-9
