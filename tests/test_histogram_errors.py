"""Tests for per-bin histogram error bounds (`grouped_sum_results`)."""

import random

import pytest

from repro.core.error import estimate_error
from repro.core.oasrs import oasrs_sample
from repro.core.query import grouped_sum, grouped_sum_results, histogram, histogram_with_errors
from repro.core.strata import StratumSample, WeightedSample

KEY = lambda item: item[0]  # noqa: E731
VAL = lambda item: item[1]  # noqa: E731


def fixed_sample():
    ws = WeightedSample()
    ws.add(StratumSample("s1", (("g", 1.0), ("g", 3.0), ("h", 2.0)), 9, 3.0))
    ws.add(StratumSample("s2", (("g", 5.0),), 1, 1.0))
    return ws


class TestGroupedSumResults:
    def test_values_match_grouped_sum(self):
        ws = fixed_sample()
        plain = grouped_sum(ws, group_fn=KEY, value_fn=VAL)
        rich = grouped_sum_results(ws, group_fn=KEY, value_fn=VAL)
        for group, result in rich.items():
            assert result.value == pytest.approx(plain[group])

    def test_results_carry_per_stratum_stats(self):
        rich = grouped_sum_results(fixed_sample(), group_fn=KEY, value_fn=VAL)
        g = rich["g"]
        assert g.kind == "sum"
        assert len(g.strata) == 2  # group g spans both strata

    def test_error_bounds_attachable(self):
        rich = grouped_sum_results(fixed_sample(), group_fn=KEY, value_fn=VAL)
        bound = estimate_error(rich["g"], confidence=0.95)
        assert bound.margin >= 0.0
        assert bound.value == pytest.approx(rich["g"].value)

    def test_fully_kept_group_zero_variance(self):
        ws = WeightedSample()
        ws.add(StratumSample("s", (("g", 1.0), ("g", 2.0)), 2, 1.0))
        rich = grouped_sum_results(ws, group_fn=KEY, value_fn=VAL)
        bound = estimate_error(rich["g"])
        assert bound.margin == 0.0


class TestHistogramWithErrors:
    def test_bin_estimates_match_plain_histogram(self):
        ws = fixed_sample()
        plain = histogram(ws, bin_fn=KEY)
        rich = histogram_with_errors(ws, bin_fn=KEY)
        for bin_key, result in rich.items():
            assert result.value == pytest.approx(plain[bin_key])

    def test_bounds_cover_true_bin_counts(self):
        """2σ bins cover the true counts most of the time on a real sample."""
        rng = random.Random(4)
        items = [("s", rng.choice("abcd")) for _ in range(8000)]
        true_counts = {}
        for _k, letter in items:
            true_counts[letter] = true_counts.get(letter, 0) + 1

        covered = trials = 0
        for seed in range(30):
            sample = oasrs_sample(items, 600, key_fn=KEY, rng=random.Random(seed))
            rich = histogram_with_errors(sample, bin_fn=lambda it: it[1])
            for letter, result in rich.items():
                bound = estimate_error(result, confidence=0.95)
                trials += 1
                covered += bound.covers(true_counts[letter])
        assert covered / trials >= 0.8

    def test_rare_bin_has_wider_relative_bound(self):
        rng = random.Random(5)
        items = [("s", "common") for _ in range(9900)] + [("s", "rare")] * 100
        rng.shuffle(items)
        sample = oasrs_sample(items, 500, key_fn=KEY, rng=random.Random(6))
        rich = histogram_with_errors(sample, bin_fn=lambda it: it[1])
        if "rare" in rich and "common" in rich:
            rare = estimate_error(rich["rare"])
            common = estimate_error(rich["common"])
            assert rare.relative_margin >= common.relative_margin
