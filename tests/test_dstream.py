"""Tests for micro-batching and sliding windows (batched engine)."""

import pytest

from repro.engine.batched.context import StreamingContext
from repro.engine.batched.dstream import Batcher, SlidingWindower


def ts_stream(values):
    """[(timestamp, item)...] convenience."""
    return list(values)


class TestBatcher:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            Batcher(0)

    def test_items_assigned_to_their_interval(self):
        batches = list(Batcher(1.0).batches([(0.1, "a"), (0.9, "b"), (1.5, "c")]))
        assert [b.items for b in batches] == [("a", "b"), ("c",)]
        assert batches[0].start == 0.0
        assert batches[1].start == 1.0

    def test_empty_intervals_emitted(self):
        batches = list(Batcher(1.0).batches([(0.5, "a"), (3.5, "b")]))
        assert [len(b) for b in batches] == [1, 0, 0, 1]
        assert [b.index for b in batches] == [0, 1, 2, 3]

    def test_boundary_item_goes_to_next_batch(self):
        batches = list(Batcher(1.0).batches([(0.5, "a"), (1.0, "b")]))
        assert batches[0].items == ("a",)
        assert batches[1].items == ("b",)

    def test_pre_start_timestamp_rejected(self):
        with pytest.raises(ValueError):
            list(Batcher(1.0, start=5.0).batches([(1.0, "x")]))

    def test_batch_time_span(self):
        batch = next(iter(Batcher(0.25).batches([(0.1, "a")])))
        assert batch.end == pytest.approx(0.25)


class TestSlidingWindower:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindower(0, 5, 1)
        with pytest.raises(ValueError):
            SlidingWindower(10, -5, 1)
        with pytest.raises(ValueError):
            SlidingWindower(10, 2.5, 1)  # not a multiple

    def test_paper_configuration(self):
        """w = 10 s, δ = 5 s, batch = 1 s: a pane every 5 batches covering 10."""
        stream = [(t + 0.5, t) for t in range(30)]
        batches = Batcher(1.0).batches(stream)
        panes = list(SlidingWindower(10.0, 5.0, 1.0).panes(batches))
        assert [p.end for p in panes] == [5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
        # From the third pane on, each covers exactly 10 batches.
        assert all(len(p.batches) == 10 for p in panes[1:])
        # Items in the pane ending at 15 are those with 5 <= t < 15.
        pane15 = panes[2]
        assert sorted(pane15.items) == list(range(5, 15))

    def test_early_panes_partial(self):
        stream = [(t + 0.5, t) for t in range(5)]
        panes = list(SlidingWindower(10.0, 5.0, 1.0).panes(Batcher(1.0).batches(stream)))
        assert len(panes) == 1
        assert len(panes[0].batches) == 5  # only 5 batches exist yet

    def test_tumbling_window(self):
        stream = [(t + 0.5, t) for t in range(9)]
        panes = list(SlidingWindower(3.0, 3.0, 1.0).panes(Batcher(1.0).batches(stream)))
        assert [sorted(p.items) for p in panes] == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]

    def test_pane_start_property(self):
        stream = [(t + 0.5, t) for t in range(20)]
        panes = list(SlidingWindower(10.0, 5.0, 1.0).panes(Batcher(1.0).batches(stream)))
        assert panes[-1].start == panes[-1].end - 10.0


class TestStreamingContext:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingContext(batch_interval=0)

    def test_rdd_of_charges_all_items(self):
        ctx = StreamingContext(batch_interval=1.0)
        ctx.rdd_of(list(range(100)))
        assert ctx.cluster.stats.items_ingested == 100

    def test_presampled_rdd_charges_ingest_for_skipped(self):
        ctx = StreamingContext(batch_interval=1.0)
        ctx.rdd_of_presampled(list(range(40)), skipped=60)
        assert ctx.cluster.stats.items_ingested == 100

    def test_presampled_cheaper_than_full(self):
        """Sampling before RDD formation saves the copy for dropped items."""
        full = StreamingContext(batch_interval=1.0)
        full.rdd_of(list(range(10_000)))
        pre = StreamingContext(batch_interval=1.0)
        pre.rdd_of_presampled(list(range(4_000)), skipped=6_000)
        assert pre.cluster.elapsed() < full.cluster.elapsed()

    def test_factories(self):
        ctx = StreamingContext(batch_interval=0.5)
        assert ctx.batcher().interval == 0.5
        w = ctx.windower(10.0, 5.0)
        assert w.length == 10.0 and w.slide == 5.0
