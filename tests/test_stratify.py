"""Tests for the §7 online stratifiers (bootstrap and semi-supervised)."""

import random
import statistics

import pytest

from repro.core.oasrs import OASRSSampler, WaterFillingAllocation
from repro.core.query import approximate_mean
from repro.core.stratify import GaussianMixtureStratifier, QuantileStratifier


class TestQuantileStratifier:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileStratifier(0)
        with pytest.raises(ValueError):
            QuantileStratifier(10, sketch_size=5)
        with pytest.raises(ValueError):
            QuantileStratifier(2, refresh_every=0)

    def test_single_stratum_before_refresh(self):
        s = QuantileStratifier(4, refresh_every=1000, rng=random.Random(0))
        assert s.assign(5.0) == 0
        assert s.assign(-3.0) == 0
        assert s.boundaries == []

    def test_boundaries_converge_to_quantiles(self):
        rng = random.Random(1)
        s = QuantileStratifier(4, sketch_size=1024, refresh_every=128, rng=random.Random(2))
        for _ in range(5000):
            s.assign(rng.uniform(0, 100))
        cuts = s.boundaries
        assert len(cuts) == 3
        # Uniform(0,100) quartiles are 25/50/75; allow generous sketch noise.
        for cut, expected in zip(cuts, (25.0, 50.0, 75.0)):
            assert abs(cut - expected) < 10.0

    def test_buckets_roughly_balanced(self):
        rng = random.Random(3)
        s = QuantileStratifier(4, rng=random.Random(4))
        for _ in range(2000):
            s.assign(rng.gauss(0, 1))
        counts = [0, 0, 0, 0]
        for _ in range(4000):
            counts[s.assign(rng.gauss(0, 1))] += 1
        for count in counts:
            assert 500 < count < 1700  # ≈1000 each, sketch noise allowed

    def test_heavy_ties_collapse_buckets_safely(self):
        s = QuantileStratifier(4, refresh_every=64, rng=random.Random(5))
        for _ in range(500):
            key = s.assign(7.0)  # constant stream
            assert 0 <= key <= 3

    def test_assignment_monotone_in_value(self):
        rng = random.Random(6)
        s = QuantileStratifier(3, rng=random.Random(7))
        for _ in range(2000):
            s.assign(rng.uniform(0, 10))
        low = s.assign(0.5)
        high = s.assign(9.5)
        assert low <= high


class TestGaussianMixtureStratifier:
    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMixtureStratifier(0)
        with pytest.raises(ValueError):
            GaussianMixtureStratifier(2, learning_rate=0.0)
        with pytest.raises(ValueError):
            GaussianMixtureStratifier(2, seeds=[[1.0]])
        with pytest.raises(ValueError):
            GaussianMixtureStratifier(2, seeds=[[1.0], []])

    def test_seeded_centres(self):
        s = GaussianMixtureStratifier(2, seeds=[[10.0, 12.0], [100.0]])
        assert s.centres == [11.0, 100.0]

    def test_separates_two_modes(self):
        rng = random.Random(8)
        s = GaussianMixtureStratifier(2, seeds=[[10.0], [1000.0]])
        labels = {0: [], 1: []}
        for _ in range(2000):
            if rng.random() < 0.5:
                v = rng.gauss(10, 3)
            else:
                v = rng.gauss(1000, 30)
            labels[s.assign(v)].append(v)
        means = sorted(statistics.fmean(vs) for vs in labels.values() if vs)
        assert abs(means[0] - 10) < 5
        assert abs(means[1] - 1000) < 50

    def test_unseeded_bootstrap(self):
        s = GaussianMixtureStratifier(2)
        a = s.assign(1.0)
        b = s.assign(100.0)
        assert {a, b} <= {0, 1}
        assert len(s.centres) == 2

    def test_centres_track_drift(self):
        s = GaussianMixtureStratifier(1, seeds=[[0.0]], learning_rate=0.2)
        for _ in range(200):
            s.assign(50.0)
        assert abs(s.centres[0] - 50.0) < 1.0


class TestEndToEndWithOASRS:
    def test_unlabeled_stream_stratified_then_sampled(self):
        """§7 composition: stratifier as OASRS's key_fn on a raw stream."""
        rng = random.Random(9)
        # Two hidden sources mixed into one unlabeled value stream.
        values = []
        for _ in range(20_000):
            values.append(rng.gauss(10, 2) if rng.random() < 0.95 else rng.gauss(5000, 100))
        truth = statistics.fmean(values)

        stratifier = GaussianMixtureStratifier(2, seeds=[[10.0], [5000.0]])
        sampler = OASRSSampler(
            WaterFillingAllocation(800, expected_strata=2),
            key_fn=stratifier.assign,
            rng=random.Random(10),
        )
        sampler.offer_many(values)
        sample = sampler.close_interval()
        estimate = approximate_mean(sample).value
        assert abs(estimate - truth) / truth < 0.02
        # Both hidden strata got their own reservoir.
        assert len(sample) == 2
