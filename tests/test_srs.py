"""Tests for the Spark-style simple random sampling baseline (ScaSRS)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.srs import ScaSRSSampler, simple_random_sample


class TestBasics:
    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            ScaSRSSampler(rng=random.Random(0)).sample([1, 2, 3], -1)

    def test_empty_batch(self):
        result = ScaSRSSampler(rng=random.Random(0)).sample([], 5)
        assert result.items == []
        assert result.population == 0

    def test_k_zero(self):
        result = ScaSRSSampler(rng=random.Random(0)).sample([1, 2, 3], 0)
        assert result.items == []

    def test_k_at_least_n_returns_all(self):
        batch = list(range(10))
        result = ScaSRSSampler(rng=random.Random(0)).sample(batch, 10)
        assert result.items == batch
        result = ScaSRSSampler(rng=random.Random(0)).sample(batch, 50)
        assert result.items == batch

    def test_exact_sample_size(self):
        rng = random.Random(1)
        for k in (1, 10, 100, 500):
            result = ScaSRSSampler(rng=rng).sample(list(range(1000)), k)
            assert len(result.items) == k

    def test_sample_is_subset(self):
        batch = list(range(2000))
        result = ScaSRSSampler(rng=random.Random(2)).sample(batch, 100)
        assert set(result.items) <= set(batch)
        assert len(set(result.items)) == 100  # without replacement

    def test_fraction_api(self):
        result = ScaSRSSampler(rng=random.Random(3)).sample_fraction(list(range(1000)), 0.25)
        assert len(result.items) == 250
        with pytest.raises(ValueError):
            ScaSRSSampler().sample_fraction([1], 1.5)


class TestPruningProfile:
    def test_partition_accounting(self):
        batch = list(range(10_000))
        result = ScaSRSSampler(rng=random.Random(4)).sample(batch, 1000)
        assert result.accepted_directly + result.waitlisted + result.discarded <= len(batch) + 1000
        assert result.population == 10_000
        # Pruning must be effective: waitlist far smaller than the batch.
        assert result.waitlisted < len(batch) * 0.2

    def test_sort_work_reflects_waitlist(self):
        batch = list(range(50_000))
        result = ScaSRSSampler(rng=random.Random(5)).sample(batch, 5000)
        assert result.sort_work > 0
        assert result.sort_work < len(batch) * 17  # far less than full-sort n log n

    def test_weight(self):
        result = ScaSRSSampler(rng=random.Random(6)).sample(list(range(100)), 20)
        assert result.weight == pytest.approx(5.0)
        empty = ScaSRSSampler(rng=random.Random(6)).sample([], 0)
        assert empty.weight == 1.0


class TestStatistics:
    def test_uniformity(self):
        """Inclusion frequency ≈ k/n for all items over many trials."""
        n, k, trials = 40, 8, 3000
        counts = Counter()
        rng = random.Random(77)
        for _ in range(trials):
            counts.update(simple_random_sample(list(range(n)), k, rng=rng))
        expected = trials * k / n
        sd = (expected * (1 - k / n)) ** 0.5
        for x in range(n):
            assert abs(counts[x] - expected) < 5 * sd

    def test_rare_stratum_often_missed(self):
        """The weakness OASRS fixes: SRS can miss tiny sub-streams."""
        batch = [("big", i) for i in range(10_000)] + [("rare", 0)]
        rng = random.Random(8)
        missed = 0
        trials = 200
        for _ in range(trials):
            sample = simple_random_sample(batch, 100, rng=rng)
            if not any(k == "rare" for k, _v in sample):
                missed += 1
        # P(miss) ≈ (1 - 1/10001)^... ≈ 0.99 per draw of 100 → mostly missed.
        assert missed > trials * 0.8

    @settings(max_examples=50)
    @given(
        n=st.integers(0, 500),
        k=st.integers(0, 500),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_size_property(self, n, k, seed):
        result = ScaSRSSampler(rng=random.Random(seed)).sample(list(range(n)), k)
        assert len(result.items) == min(n, k)
