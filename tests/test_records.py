"""Columnar record format properties: the batch is an execution detail.

`repro.core.records.RecordBatch` is the pipeline's native record format;
these tests pin the contract that makes that safe:

* round-trip — a batch IS the event list it was built from (list subclass,
  `ColumnSlice` views materialize the identical ``(key, float)`` tuples,
  pickling ships plain events), checked with Hypothesis over arbitrary
  streams,
* bitwise equivalence — every engine × strategy combination produces
  bit-identical pane results with the columnar path on (default) and off
  (``REPRO_NO_COLUMNAR=1``, the per-item shim),
* checkpoint/resume over batched sources — resuming a chunked columnar run
  from any pane checkpoint reproduces the uninterrupted panes exactly,
* fallback surfacing — batches the codec cannot represent (non-float
  payloads, unhashable keys) and queries with custom projections report a
  ``columnar_fallback`` reason instead of silently degrading.
"""

import os
import pickle

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import (
    ColumnSlice,
    RecordBatch,
    _FloatRun,
    _StratumMembers,
    item_key,
    item_value,
)
from repro.runtime import (
    CheckpointPolicy,
    CheckpointStore,
    ListSource,
    StreamQuery,
    SystemConfig,
    WindowConfig,
    build_plan,
    execute_plan,
)
from repro.system import NativeStreamApproxSystem
from repro.system import WindowConfig as SysWindow
from repro.workloads.netflow import flow_bytes, flow_protocol, netflow_stream
from repro.workloads.synthetic import stream_by_rates

np = pytest.importorskip("numpy")

events_strategy = st.lists(
    st.tuples(
        st.floats(0, 100, allow_nan=False),
        st.tuples(
            st.sampled_from("abc"),
            st.floats(-1e6, 1e6, allow_nan=False),
        ),
    ),
    min_size=0,
    max_size=80,
).map(lambda evs: sorted(evs, key=lambda e: e[0]))


# ---------------------------------------------------------------------------
# Round trip: batch ⇄ events
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(events=events_strategy)
    def test_batch_is_its_event_list(self, events):
        batch = RecordBatch(events)
        assert list(batch) == events
        assert list(batch.iter_items()) == events
        assert batch.columnar_reason is None
        assert batch.has_columns
        n = len(events)
        assert batch.ts.shape == (n,)
        view = batch.item_slice(0, n)
        assert view.materialize() == [item for _ts, item in events]

    @settings(max_examples=50, deadline=None)
    @given(events=events_strategy, data=st.data())
    def test_column_slice_views_match_list_slices(self, events, data):
        batch = RecordBatch(events)
        n = len(events)
        lo = data.draw(st.integers(0, n))
        hi = data.draw(st.integers(lo, n))
        step = data.draw(st.integers(1, 4))
        items = [item for _ts, item in events]
        view = batch.item_slice(lo, hi)
        assert list(view) == items[lo:hi]
        strided = view[::step]
        assert isinstance(strided, ColumnSlice)
        assert list(strided) == items[lo:hi][::step]
        for i in range(len(view)):
            materialized = view[i]
            assert materialized == items[lo + i]
            assert type(materialized[1]) is float

    @settings(max_examples=25, deadline=None)
    @given(events=events_strategy)
    def test_pickle_round_trip(self, events):
        batch = RecordBatch(events)
        clone = pickle.loads(pickle.dumps(batch))
        assert isinstance(clone, RecordBatch)
        assert list(clone) == events
        if events:
            view = batch.item_slice(0, len(events))
            assert pickle.loads(pickle.dumps(view)) == view.materialize()

    def test_take_gathers_materialized_items(self):
        events = [(float(i), ("ab"[i % 2], float(i) * 1.5)) for i in range(10)]
        view = RecordBatch(events).item_slice(0, 10)
        positions = np.asarray([7, 0, 3])
        assert view.take(positions) == [view[7], view[0], view[3]]

    def test_float_run_and_members_interop(self):
        values = np.asarray([1.0, 2.0, 3.0])
        run = _FloatRun(values)
        assert list(run) == [1.0, 2.0, 3.0]
        assert run[1] == 2.0
        assert run.take(np.asarray([2, 0])) == [3.0, 1.0]

        members = _StratumMembers("k", values)
        assert list(members) == [("k", 1.0), ("k", 2.0), ("k", 3.0)]
        assert members.value_list() == [1.0, 2.0, 3.0]
        assert members == [("k", 1.0), ("k", 2.0), ("k", 3.0)]
        # Merge interop (sample merging concatenates member sequences).
        assert members + (("k", 9.0),) == (
            ("k", 1.0), ("k", 2.0), ("k", 3.0), ("k", 9.0),
        )
        # Serialization ships plain tuples.
        assert pickle.loads(pickle.dumps(members)) == tuple(members)


# ---------------------------------------------------------------------------
# Columnar ≡ per-item shim, bitwise, across engines × strategies
# ---------------------------------------------------------------------------


def _columnar_stream():
    return stream_by_rates({"A": 600, "B": 150, "C": 15}, duration=12, seed=9)


def _plan(stream, engine, strategy, **config_overrides):
    query = StreamQuery(
        key_fn=item_key, value_fn=item_value, kind="mean", name="records-ab"
    )
    config = SystemConfig(sampling_fraction=0.5, seed=31, **config_overrides)
    return build_plan(
        query, WindowConfig(6.0, 3.0), config,
        engine=engine, strategy=strategy,
        source=ListSource(stream), name="records-ab",
    )


def _fingerprint(results):
    return [
        (
            r.end,
            r.estimate,
            r.exact,
            r.sampled_items,
            r.total_items,
            r.error.margin if r.error else None,
            sorted(r.groups.items()),
        )
        for r in results
    ]


# Every engine × strategy combination the planner accepts.
_COMBOS = [
    ("batched", "none"),
    ("batched", "srs"),
    ("batched", "sts"),
    ("batched", "oasrs"),
    ("pipelined", "none"),
    ("pipelined", "oasrs"),
    ("direct", "oasrs"),
]


@pytest.mark.parametrize("engine,strategy", _COMBOS)
def test_columnar_matches_shim_bitwise(engine, strategy):
    stream = _columnar_stream()
    columnar, _ = execute_plan(_plan(stream, engine, strategy, chunk_size=256))
    os.environ["REPRO_NO_COLUMNAR"] = "1"
    try:
        shim, _ = execute_plan(_plan(stream, engine, strategy, chunk_size=256))
    finally:
        os.environ.pop("REPRO_NO_COLUMNAR", None)
    assert _fingerprint(columnar) == _fingerprint(shim)


def test_columnar_matches_shim_at_small_chunks():
    # chunk=64 exercises the small-chunk Python-grouping route of
    # `OASRSSampler._process_columns`; chunk=1 the single-offer route.
    stream = _columnar_stream()
    for chunk in (1, 64):
        columnar, _ = execute_plan(_plan(stream, "direct", "oasrs", chunk_size=chunk))
        os.environ["REPRO_NO_COLUMNAR"] = "1"
        try:
            shim, _ = execute_plan(_plan(stream, "direct", "oasrs", chunk_size=chunk))
        finally:
            os.environ.pop("REPRO_NO_COLUMNAR", None)
        assert _fingerprint(columnar) == _fingerprint(shim), f"chunk={chunk}"


# ---------------------------------------------------------------------------
# Checkpoint / resume over batched sources
# ---------------------------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16), chunk=st.sampled_from([64, 256, 1024]))
def test_chunked_columnar_resume_matches_uninterrupted(seed, chunk):
    stream = stream_by_rates({"A": 400, "B": 100}, duration=12, seed=seed % 997)
    assert isinstance(stream, RecordBatch) and stream.has_columns

    def plan(**overrides):
        return _plan(stream, "direct", "oasrs", chunk_size=chunk, **overrides)

    base, _ = execute_plan(plan())
    store = CheckpointStore()
    observed, _ = execute_plan(
        plan(checkpoint=CheckpointPolicy(every=1)), checkpoint_store=store
    )
    assert _fingerprint(observed) == _fingerprint(base)
    for index in store.indices():
        resumed, _ = execute_plan(
            plan(checkpoint=CheckpointPolicy(every=1)),
            resume_from=store.get(index),
        )
        assert _fingerprint(resumed) == _fingerprint(base)


# ---------------------------------------------------------------------------
# Fallback surfacing
# ---------------------------------------------------------------------------


class TestFallbackSurfacing:
    def test_non_tuple_items_record_reason(self):
        batch = RecordBatch([(0.0, "not-a-tuple"), (1.0, "still-not")])
        assert batch.ts is not None
        assert not batch.has_columns
        assert "not plain (key, value) tuples" in batch.columnar_reason

    def test_non_float_payloads_record_reason(self):
        batch = RecordBatch([(0.0, ("a", 1)), (1.0, ("b", 2))])
        assert not batch.has_columns
        assert "value is not a plain float" in batch.columnar_reason
        with pytest.raises(ValueError):
            batch.item_slice(0, 2)

    def test_unhashable_keys_record_reason(self):
        batch = RecordBatch([(0.0, (["un", "hashable"], 1.0))])
        assert not batch.has_columns
        assert "unhashable keys" in batch.columnar_reason

    def test_netflow_projections_intern_onto_columnar_path(self):
        # FlowRecord payloads are not (key, float) tuples, but the query's
        # flow_protocol/flow_bytes projections ARE columnar-representable:
        # the driver interns them once at run start and the whole run takes
        # the columnar path — bitwise identical to the per-item shim.
        stream = netflow_stream(total_rate=400, duration=6, seed=5)
        query = StreamQuery(
            key_fn=flow_protocol, value_fn=flow_bytes, kind="sum", name="nf"
        )
        config = SystemConfig(sampling_fraction=0.6, seed=3, chunk_size=256)
        system = NativeStreamApproxSystem(query, SysWindow(3.0, 3.0), config)
        report = system.run(stream)
        assert report.columnar_fallback is None
        assert report.results, "interned run still produces panes"
        os.environ["REPRO_NO_COLUMNAR"] = "1"
        try:
            shim = NativeStreamApproxSystem(query, SysWindow(3.0, 3.0), config).run(
                stream
            )
        finally:
            os.environ.pop("REPRO_NO_COLUMNAR", None)
        assert shim.columnar_fallback is not None
        assert _fingerprint(report.results) == _fingerprint(shim.results)

    def test_custom_projections_intern_onto_columnar_path(self):
        # Even ad-hoc lambdas intern when they extract (hashable, float).
        stream = _columnar_stream()
        query = StreamQuery(
            key_fn=lambda it: it[0], value_fn=lambda it: it[1],
            kind="mean", name="custom",
        )
        config = SystemConfig(sampling_fraction=0.5, seed=31, chunk_size=256)
        report = NativeStreamApproxSystem(query, SysWindow(6.0, 3.0), config).run(
            stream
        )
        assert report.columnar_fallback is None
        canonical = NativeStreamApproxSystem(
            StreamQuery(key_fn=item_key, value_fn=item_value, kind="mean",
                        name="custom"),
            SysWindow(6.0, 3.0), config,
        ).run(stream)
        # Interning rewrote the run to the canonical plan over the same
        # (key, value) events, so the answers match it bitwise.
        assert _fingerprint(report.results) == _fingerprint(canonical.results)

    def test_non_columnar_projections_still_surface_fallback(self):
        # A value projection yielding non-floats cannot intern: the run
        # stays on the per-item shim and the report says why.
        stream = _columnar_stream()
        query = StreamQuery(
            key_fn=lambda it: it[0], value_fn=lambda it: int(it[1]),
            kind="mean", name="intvals",
        )
        config = SystemConfig(sampling_fraction=0.5, seed=31, chunk_size=256)
        report = NativeStreamApproxSystem(query, SysWindow(6.0, 3.0), config).run(
            stream
        )
        assert "custom key/value projections" in report.columnar_fallback

    def test_group_fn_distinct_from_key_fn_blocks_interning(self):
        # A third independent projection has no column to intern into.
        stream = _columnar_stream()
        query = StreamQuery(
            key_fn=lambda it: it[0], value_fn=lambda it: it[1],
            group_fn=lambda it: it[0], kind="mean", name="grouped",
        )
        config = SystemConfig(sampling_fraction=0.5, seed=31, chunk_size=256)
        report = NativeStreamApproxSystem(query, SysWindow(6.0, 3.0), config).run(
            stream
        )
        assert "custom key/value projections" in report.columnar_fallback

    def test_canonical_projections_take_columnar_path(self):
        stream = _columnar_stream()
        query = StreamQuery(
            key_fn=item_key, value_fn=item_value, kind="mean", name="canon"
        )
        config = SystemConfig(sampling_fraction=0.5, seed=31, chunk_size=256)
        report = NativeStreamApproxSystem(query, SysWindow(6.0, 3.0), config).run(
            stream
        )
        assert report.columnar_fallback is None
