"""Tests for error estimation (Equations 5–9 and the 68-95-99.7 rule)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.error import (
    ErrorBound,
    confidence_z,
    estimate_error,
    required_sample_size,
    variance_of_mean,
    variance_of_sum,
)
from repro.core.oasrs import oasrs_sample
from repro.core.query import (
    StratumStats,
    approximate_count,
    approximate_mean,
    approximate_sum,
)

KEY = lambda item: item[0]  # noqa: E731
VAL = lambda item: item[1]  # noqa: E731


def stats(key="s", y=10, c=100, weight=10.0, total=50.0, mean=5.0, variance=4.0):
    return StratumStats(key=key, y=y, c=c, weight=weight, total=total, mean=mean, variance=variance)


class TestConfidenceRule:
    def test_68_95_997(self):
        assert confidence_z(0.68) == 1.0
        assert confidence_z(0.95) == 2.0
        assert confidence_z(0.997) == 3.0

    def test_unknown_confidence_rejected(self):
        with pytest.raises(ValueError):
            confidence_z(0.5)


class TestVarianceFormulas:
    def test_equation6_single_stratum(self):
        # C (C - Y) s^2 / Y = 100 * 90 * 4 / 10 = 3600
        assert variance_of_sum([stats()]) == pytest.approx(3600.0)

    def test_equation6_additivity(self):
        a, b = stats(key="a"), stats(key="b", c=50, y=5, variance=2.0)
        assert variance_of_sum([a, b]) == pytest.approx(
            variance_of_sum([a]) + variance_of_sum([b])
        )

    def test_fully_sampled_stratum_contributes_zero(self):
        full = stats(y=100, c=100, weight=1.0)
        assert variance_of_sum([full]) == 0.0
        assert variance_of_mean([full]) == 0.0

    def test_single_item_stratum_contributes_zero(self):
        assert variance_of_sum([stats(y=1)]) == 0.0

    def test_equation9_single_stratum(self):
        # omega = 1; (s2/Y) * (C-Y)/C = (4/10) * 0.9 = 0.36
        assert variance_of_mean([stats()]) == pytest.approx(0.36)

    def test_equation9_omega_weighting(self):
        a = stats(key="a", c=900, y=10, variance=4.0)
        b = stats(key="b", c=100, y=10, variance=4.0)
        va = (900 / 1000) ** 2 * (4.0 / 10) * (890 / 900)
        vb = (100 / 1000) ** 2 * (4.0 / 10) * (90 / 100)
        assert variance_of_mean([a, b]) == pytest.approx(va + vb)

    def test_empty_strata(self):
        assert variance_of_sum([]) == 0.0
        assert variance_of_mean([]) == 0.0

    @settings(max_examples=80)
    @given(
        c=st.integers(2, 10**5),
        y=st.integers(2, 10**3),
        variance=st.floats(0, 1e6, allow_nan=False),
    )
    def test_variances_non_negative(self, c, y, variance):
        s = stats(c=max(c, y), y=y, variance=variance)
        assert variance_of_sum([s]) >= 0.0
        assert variance_of_mean([s]) >= 0.0


class TestErrorBound:
    def test_margin_is_z_sigma(self):
        bound = ErrorBound(value=10.0, variance=4.0, confidence=0.95, margin=4.0)
        assert bound.stddev == 2.0
        assert bound.interval == (6.0, 14.0)
        assert bound.covers(7.0) and not bound.covers(15.0)

    def test_relative_margin(self):
        bound = ErrorBound(value=100.0, variance=1.0, confidence=0.95, margin=2.0)
        assert bound.relative_margin == pytest.approx(0.02)
        zero = ErrorBound(value=0.0, variance=1.0, confidence=0.95, margin=2.0)
        assert math.isinf(zero.relative_margin)

    def test_str_format(self):
        bound = ErrorBound(value=1.0, variance=0.01, confidence=0.95, margin=0.2)
        assert "±" in str(bound)

    def test_estimate_error_dispatch(self):
        ws_items = [("a", float(v)) for v in range(100)]
        sample = oasrs_sample(ws_items, 20, key_fn=KEY, rng=random.Random(0))
        sum_bound = estimate_error(approximate_sum(sample, VAL))
        mean_bound = estimate_error(approximate_mean(sample, VAL))
        count_bound = estimate_error(approximate_count(sample))
        assert sum_bound.margin > 0
        assert mean_bound.margin > 0
        assert count_bound.margin == 0.0  # counters are exact under OASRS

    def test_unknown_kind_rejected(self):
        from repro.core.query import QueryResult

        with pytest.raises(ValueError):
            estimate_error(QueryResult(value=1.0, strata=[], kind="median"))


class TestCoverage:
    def test_two_sigma_interval_covers_truth_about_95_percent(self):
        """Statistical validation of §3.3 on a Gaussian stream."""
        rng = random.Random(123)
        population = [("s", rng.gauss(50, 10)) for _ in range(2000)]
        truth = sum(v for _k, v in population)
        covered = 0
        trials = 200
        for seed in range(trials):
            sample = oasrs_sample(population, 200, key_fn=KEY, rng=random.Random(seed))
            bound = estimate_error(approximate_sum(sample, VAL), confidence=0.95)
            covered += bound.covers(truth)
        # Expect ≈ 95%; accept anything ≥ 88% to avoid flakiness.
        assert covered / trials >= 0.88

    def test_error_shrinks_with_sample_size(self):
        rng = random.Random(9)
        population = [("s", rng.gauss(0, 1)) for _ in range(5000)]
        margins = []
        for n in (50, 200, 1000):
            sample = oasrs_sample(population, n, key_fn=KEY, rng=random.Random(1))
            margins.append(estimate_error(approximate_sum(sample, VAL)).margin)
        assert margins[0] > margins[1] > margins[2]


class TestRequiredSampleSize:
    def test_zero_population(self):
        assert required_sample_size(0, 1.0, 0.1) == 0

    def test_full_population_when_no_tolerance(self):
        assert required_sample_size(100, 1.0, 0.0) == 100

    def test_monotone_in_margin(self):
        loose = required_sample_size(10_000, 25.0, 5000.0)
        tight = required_sample_size(10_000, 25.0, 500.0)
        assert tight >= loose

    def test_achieves_margin(self):
        """Plugging the answer back into Eq. 6 meets the target margin."""
        c, s2, margin = 10_000, 25.0, 2000.0
        y = required_sample_size(c, s2, margin, confidence=0.95)
        achieved = 2.0 * math.sqrt(c * (c - y) * s2 / y)
        assert achieved <= margin * 1.01
