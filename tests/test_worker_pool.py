"""Persistent worker pool: lifecycle, transports, and degraded paths.

`repro.core.distributed.ShardedExecutor` keeps one process per shard
alive for the whole run and moves chunk payloads over shared memory.
These tests pin the contracts the rest of the runtime builds on:

* **Bitwise determinism across execution modes** — a pooled run, the
  ``REPRO_NO_MP`` in-process fallback, and every transport tier (flat
  pickle, shared-memory chunk codec, pinned index span) produce the
  exact same merged samples, because shard samplers are rebuilt from
  coordinator-drawn seeds every interval.
* **Pool lifecycle** — workers spawn once (lazily, on the first parallel
  interval), survive across intervals without respawning, die on
  ``close``, and a permanent `ShardKill` terminates the real process
  while the pool re-widens over the survivors.
* **Degraded paths** — fallbacks are never silent: the first cause is
  recorded on the executor and surfaced as ``SystemReport.parallel_fallback``.
* **Checkpoint/resume** — `restore` tears the pool down and a resumed
  ``execute_plan`` matches the uninterrupted run bitwise.
"""

import random

import pytest

from repro.core.distributed import ShardedExecutor, ShardedIntervalSampler
from repro.core.oasrs import FixedPerStratum, WaterFillingAllocation
from repro.core.recovery import FaultSchedule, ShardKill
from repro.runtime import (
    CheckpointPolicy,
    CheckpointStore,
    ListSource,
    StreamQuery,
    SystemConfig,
    WindowConfig,
    build_plan,
    execute_plan,
)
from repro.system.native import NativeStreamApproxSystem
from repro.workloads.synthetic import stream_by_rates

KEY = lambda item: item[0]  # noqa: E731


def fingerprint(sample):
    """Exact identity of a merged WeightedSample, order-independent."""
    return tuple(sorted((s.key, s.items, s.count, s.weight) for s in sample))


def make_intervals(n_intervals=5, n_items=3000, seed=7):
    rng = random.Random(seed)
    return [
        [(rng.choice("abcd"), float(rng.randrange(100))) for _ in range(n_items)]
        for _ in range(n_intervals)
    ]


def make_executor(**kwargs):
    kwargs.setdefault("workers", 4)
    kwargs.setdefault("policy", WaterFillingAllocation(total=200))
    kwargs.setdefault("key_fn", KEY)
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("chunk_size", 256)
    return ShardedExecutor(**kwargs)


@pytest.fixture
def intervals():
    return make_intervals()


class TestBitwiseAcrossModes:
    """Pooled, fallback, and all three transports: one identical answer."""

    def reference_fingerprints(self, monkeypatch, intervals):
        monkeypatch.setenv("REPRO_NO_MP", "1")
        ex = make_executor()
        fps = [fingerprint(ex.run(items)) for items in intervals]
        assert not ex.last_run_parallel
        ex.close()
        monkeypatch.delenv("REPRO_NO_MP")
        return fps

    def test_pooled_flat_matches_in_process(self, monkeypatch, intervals):
        expected = self.reference_fingerprints(monkeypatch, intervals)
        ex = make_executor()
        try:
            got = [fingerprint(ex.run(items)) for items in intervals]
            assert ex.last_run_parallel
            assert ex.fallback_reason is None
        finally:
            ex.close()
        assert got == expected

    def test_pooled_chunked_matches_in_process(self, monkeypatch, intervals):
        expected = self.reference_fingerprints(monkeypatch, intervals)
        ex = make_executor()
        try:
            got = []
            for items in intervals:
                chunks = [items[i : i + 512] for i in range(0, len(items), 512)]
                got.append(fingerprint(ex.run_chunks(chunks)))
            assert ex.last_run_parallel
        finally:
            ex.close()
        assert got == expected

    def test_pooled_span_matches_in_process(self, monkeypatch, intervals):
        expected = self.reference_fingerprints(monkeypatch, intervals)
        events, spans = [], []
        for items in intervals:
            lo = len(events)
            events.extend((float(len(events) + i), item) for i, item in enumerate(items))
            spans.append((lo, len(events)))
        ex = make_executor()
        ex.pin_source(events)
        try:
            got = [fingerprint(ex.run_span(lo, hi)) for lo, hi in spans]
            assert ex.last_run_parallel
        finally:
            ex.close()
        assert got == expected

    def test_non_codec_items_match_in_process(self, monkeypatch):
        """Int-valued records miss the shm codec; the pickle tier agrees."""
        rng = random.Random(3)
        intervals = [
            [(rng.choice("xyz"), rng.randrange(50)) for _ in range(1500)]
            for _ in range(3)
        ]
        expected = self.reference_fingerprints(monkeypatch, intervals)
        ex = make_executor()
        try:
            got = [fingerprint(ex.run(items)) for items in intervals]
            assert ex.last_run_parallel
        finally:
            ex.close()
        assert got == expected


class TestPoolLifecycle:
    def test_pool_spawns_lazily_and_once(self, intervals):
        ex = make_executor()
        try:
            assert not ex.pooled  # construction spawns nothing
            pids = []
            for items in intervals:
                ex.run(items)
                assert ex.pooled
                pids.append(tuple(sorted(w.process.pid for w in ex._pool.values())))
            assert len(set(pids)) == 1, f"pool respawned mid-run: {set(pids)}"
            assert len(pids[0]) == 4
        finally:
            ex.close()

    def test_close_terminates_workers(self, intervals):
        ex = make_executor()
        ex.run(intervals[0])
        processes = [w.process for w in ex._pool.values()]
        ex.close()
        assert not ex.pooled
        for process in processes:
            assert not process.is_alive()
        ex.close()  # idempotent

    def test_close_without_spawn_is_noop(self):
        ex = make_executor()
        ex.close()
        assert not ex.pooled

    def test_permanent_kill_terminates_live_worker(self, intervals):
        faults = FaultSchedule(
            kills=(ShardKill(interval=1, worker=2, permanent=True),)
        )
        ex = make_executor(faults=faults)
        try:
            ex.run(intervals[0])
            before = {w: worker.process.pid for w, worker in ex._pool.items()}
            assert sorted(before) == [0, 1, 2, 3]
            doomed = ex._pool[2].process
            ex.run(intervals[1])  # the kill interval
            assert ex.live_workers == [0, 1, 3]
            assert sorted(ex._pool) == [0, 1, 3]
            doomed.join(timeout=5.0)
            assert not doomed.is_alive()
            # Survivors keep their processes — the pool re-widens, it does
            # not respawn.
            after = {w: worker.process.pid for w, worker in ex._pool.items()}
            assert after == {w: before[w] for w in (0, 1, 3)}
            ex.run(intervals[2])
            assert ex.last_run_parallel
        finally:
            ex.close()

    def test_restore_tears_pool_down(self, intervals):
        ex = make_executor()
        ex.run(intervals[0])
        snapshot = ex.state()
        assert ex.pooled
        ex.restore(snapshot)
        assert not ex.pooled
        try:
            assert fingerprint(ex.run(intervals[1])) == fingerprint(
                make_and_run(snapshot, intervals[1])
            )
        finally:
            ex.close()


def make_and_run(snapshot, items):
    """Fresh executor restored from `snapshot`, run over one interval."""
    ex = make_executor()
    ex.restore(snapshot)
    try:
        return ex.run(items)
    finally:
        ex.close()


class TestFallbackSurfacing:
    def test_no_mp_records_reason(self, monkeypatch, intervals):
        monkeypatch.setenv("REPRO_NO_MP", "1")
        ex = make_executor()
        ex.run(intervals[0])
        assert not ex.last_run_parallel
        assert "REPRO_NO_MP" in ex.fallback_reason
        ex.close()

    def test_first_reason_wins(self, monkeypatch, intervals):
        ex = make_executor()
        ex._note_fallback("first cause")
        ex._note_fallback("second cause")
        assert ex.fallback_reason == "first cause"
        ex.close()

    def test_single_worker_never_pools(self, intervals):
        ex = make_executor(workers=1)
        ex.run(intervals[0])
        assert not ex.last_run_parallel
        assert not ex.pooled
        ex.close()

    def test_report_surfaces_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MP", "1")
        report = run_parallel_system()
        assert report.parallel_fallback is not None
        assert "REPRO_NO_MP" in report.parallel_fallback

    def test_report_silent_when_pool_healthy(self):
        report = run_parallel_system()
        assert report.parallel_fallback is None

    def test_report_none_without_parallelism(self):
        report = run_parallel_system(parallelism=1)
        assert report.parallel_fallback is None


def run_parallel_system(parallelism=4):
    query = StreamQuery(key_fn=KEY, value_fn=lambda it: it[1], kind="mean")
    config = SystemConfig(sampling_fraction=0.5, seed=17, parallelism=parallelism)
    stream = stream_by_rates({"A": 300, "B": 60}, duration=10, seed=5)
    return NativeStreamApproxSystem(query, WindowConfig(5, 2.5), config).run(stream)


class TestResumeAcrossPool:
    """`execute_plan(resume_from=...)` re-spawns the pool and matches bitwise."""

    def plan(self, stream, **overrides):
        config = SystemConfig(
            sampling_fraction=0.5, seed=17, parallelism=4, **overrides
        )
        return build_plan(
            StreamQuery(key_fn=KEY, value_fn=lambda it: it[1], kind="mean"),
            WindowConfig(length=5.0, slide=2.5),
            config,
            engine="direct",
            strategy="oasrs",
            source=ListSource(stream),
            name="pool-resume",
        )

    @staticmethod
    def pane_fingerprint(results):
        return [
            (r.end, r.estimate, r.sampled_items,
             r.error.margin if r.error is not None else None)
            for r in results
        ]

    def test_resume_matches_uninterrupted_pooled_run(self):
        stream = stream_by_rates({"A": 300, "B": 60, "C": 10}, duration=15, seed=11)
        base, _ = execute_plan(self.plan(stream))
        store = CheckpointStore()
        execute_plan(
            self.plan(stream, checkpoint=CheckpointPolicy(every=1)),
            checkpoint_store=store,
        )
        assert len(store) >= 2, "workload too short to exercise resume"
        for index in store.indices():
            resumed, _ = execute_plan(
                self.plan(stream, checkpoint=CheckpointPolicy(every=1)),
                resume_from=store.get(index),
            )
            assert self.pane_fingerprint(resumed) == self.pane_fingerprint(base), (
                f"resume from checkpoint {index} diverged"
            )


class TestIntervalSamplerBuffering:
    def test_process_chunk_keeps_chunk_intact(self):
        ex = make_executor(workers=2, policy=FixedPerStratum(4))
        sampler = ShardedIntervalSampler(ex)
        chunk = [("a", float(i)) for i in range(64)]
        sampler.process_chunk(chunk)
        assert sampler._chunks[-1] is chunk  # stored by reference, not re-buffered
        sampler.close()

    def test_mixed_offer_and_chunks_cover_all_items(self):
        ex = make_executor(workers=2, policy=FixedPerStratum(4), seed=1)
        sampler = ShardedIntervalSampler(ex)
        sampler.offer(("a", 1.0))
        sampler.process_chunk([("a", float(i)) for i in range(50)])
        sampler.offer_many([("b", float(i)) for i in range(10)])
        merged = sampler.close_interval()
        assert merged["a"].count == 51
        assert merged["b"].count == 10
        # The buffer drains: a second close sees an empty interval.
        assert len(sampler.close_interval()) == 0
        sampler.close()

    def test_state_flattens_buffer_and_restores(self):
        ex = make_executor(workers=2, policy=FixedPerStratum(4), seed=1)
        sampler = ShardedIntervalSampler(ex)
        sampler.process_chunk([("a", float(i)) for i in range(20)])
        sampler.process_chunk([("b", float(i)) for i in range(5)])
        snapshot = sampler.state()
        assert snapshot["buffer"] == (
            [("a", float(i)) for i in range(20)] + [("b", float(i)) for i in range(5)]
        )
        ex2 = make_executor(workers=2, policy=FixedPerStratum(4), seed=99)
        restored = ShardedIntervalSampler(ex2)
        restored.restore(snapshot)
        a = sampler.close_interval()
        b = restored.close_interval()
        assert fingerprint(a) == fingerprint(b)
        sampler.close()
        restored.close()
