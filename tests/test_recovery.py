"""Tests for fault-tolerant distributed OASRS (worker failure injection)."""

import random

import pytest

from repro.core.oasrs import FixedPerStratum
from repro.core.query import approximate_mean
from repro.core.recovery import ResilientDistributedOASRS

KEY = lambda it: it[0]  # noqa: E731
VAL = lambda it: it[1]  # noqa: E731


def make_items(n, seed=0, mu=100.0, sigma=10.0, key="A"):
    rng = random.Random(seed)
    return [(key, rng.gauss(mu, sigma)) for _ in range(n)]


def make_sampler(workers=4, capacity=50, checkpoint_every=None, seed=1):
    return ResilientDistributedOASRS(
        workers=workers,
        policy_factory=lambda: FixedPerStratum(capacity),
        key_fn=KEY,
        rng=random.Random(seed),
        checkpoint_every=checkpoint_every,
    )


class TestValidation:
    def test_worker_count(self):
        with pytest.raises(ValueError):
            make_sampler(workers=0)

    def test_checkpoint_interval(self):
        with pytest.raises(ValueError):
            make_sampler(checkpoint_every=0)


class TestHealthyOperation:
    def test_no_failures_behaves_like_distributed(self):
        sampler = make_sampler()
        items = make_items(2000)
        sampler.offer_many(items)
        merged = sampler.close_interval()
        assert merged["A"].count == 2000
        est = approximate_mean(merged, VAL).value
        assert abs(est - 100.0) < 3.0
        assert sampler.coverage(2000) == 1.0

    def test_round_robin_over_alive(self):
        sampler = make_sampler(workers=3)
        assigned = [sampler.offer(("A", 1.0)) for _ in range(6)]
        assert assigned == [0, 1, 2, 0, 1, 2]


class TestFailures:
    def test_single_failure_drops_only_that_workers_items(self):
        sampler = make_sampler(workers=4)
        sampler.offer_many(make_items(1000))
        sampler.fail_worker(0)
        merged = sampler.close_interval()
        # Worker 0 held 250 items; the rest survive with exact counters.
        assert merged["A"].count == 750
        assert sampler.failures_seen == 1

    def test_estimate_unbiased_over_survivors(self):
        sampler = make_sampler(workers=4, capacity=100)
        sampler.offer_many(make_items(4000, seed=2))
        sampler.fail_worker(2)
        merged = sampler.close_interval()
        est = approximate_mean(merged, VAL).value
        assert abs(est - 100.0) < 3.0  # unbiased, just fewer items

    def test_rerouting_after_failure(self):
        sampler = make_sampler(workers=3)
        sampler.fail_worker(1)
        # Worker 1 restarts immediately (recover) — still routable; crash
        # without restart is modelled by failing again just before close.
        assigned = {sampler.offer(("A", 1.0)) for _ in range(9)}
        assert assigned <= {0, 1, 2}

    def test_all_workers_failed(self):
        sampler = make_sampler(workers=1)

        class DeadWorkerSampler(ResilientDistributedOASRS):
            pass

        sampler.workers[0].alive = False
        with pytest.raises(RuntimeError):
            sampler.offer(("A", 1.0))

    def test_double_failure_idempotent(self):
        sampler = make_sampler(workers=2)
        sampler.offer_many(make_items(100))
        sampler.fail_worker(0)
        lost = sampler.items_lost
        # Worker restarted by recover(); failing the restarted worker with
        # no new items loses nothing more.
        sampler.fail_worker(0)
        assert sampler.items_lost == lost

    def test_coverage_metric(self):
        sampler = make_sampler(workers=4)
        sampler.offer_many(make_items(1000))
        sampler.fail_worker(3)
        assert sampler.coverage(1000) == pytest.approx(0.75)
        assert sampler.coverage(0) == 1.0


class TestCheckpointing:
    def test_checkpoint_bounds_loss(self):
        sampler = make_sampler(workers=2, checkpoint_every=100)
        sampler.offer_many(make_items(1000))  # 500 per worker, checkpoints every 100
        sampler.fail_worker(0)
        # At most 100 items (the checkpoint window) can be lost.
        assert sampler.items_lost <= 100

    def test_salvaged_checkpoint_counts_in_interval(self):
        sampler = make_sampler(workers=2, checkpoint_every=50)
        sampler.offer_many(make_items(400))  # 200 each; both checkpointed at 200
        sampler.fail_worker(0)
        merged = sampler.close_interval()
        # Survivor's 200 plus worker 0's checkpointed 200 (no post-checkpoint
        # items at exactly the boundary).
        assert merged["A"].count == 400

    def test_no_checkpoint_loses_whole_worker_interval(self):
        sampler = make_sampler(workers=2, checkpoint_every=None)
        sampler.offer_many(make_items(400))
        sampler.fail_worker(0)
        merged = sampler.close_interval()
        assert merged["A"].count == 200

    def test_interval_reset_clears_loss_accounting(self):
        sampler = make_sampler(workers=2)
        sampler.offer_many(make_items(100))
        sampler.fail_worker(0)
        sampler.close_interval()
        assert sampler.items_lost == 0
