"""Tests for the workload generators (§5.1, §6.2, §6.3)."""

import random
import statistics

import pytest

from repro.workloads.netflow import (
    PROTOCOL_MIX,
    flow_bytes,
    flow_protocol,
    generate_flows,
    netflow_stream,
)
from repro.workloads.synthetic import (
    SubStreamSpec,
    _poisson,
    gaussian_skew_substreams,
    gaussian_substreams,
    make_stream,
    poisson_substreams,
    stream_by_rates,
    stream_by_shares,
)
from repro.workloads.taxi import (
    BOROUGH_MIX,
    generate_rides,
    ride_borough,
    ride_distance,
    taxi_stream,
)


class TestSubStreamSpec:
    def test_gaussian_values(self):
        spec = SubStreamSpec("A", "gaussian", mu=100, sigma=5)
        rng = random.Random(0)
        values = [next(spec.values(rng)) for _ in range(2000)]
        assert abs(statistics.fmean(values) - 100) < 1.0

    def test_poisson_values(self):
        spec = SubStreamSpec("B", "poisson", lam=50)
        rng = random.Random(1)
        gen = spec.values(rng)
        values = [next(gen) for _ in range(2000)]
        assert abs(statistics.fmean(values) - 50) < 2.0

    def test_unknown_distribution(self):
        spec = SubStreamSpec("X", "zipf")
        with pytest.raises(ValueError):
            next(spec.values(random.Random(0)))

    def test_paper_parameterisations(self):
        gauss = {s.source: (s.mu, s.sigma) for s in gaussian_substreams()}
        assert gauss == {"A": (10, 5), "B": (1000, 50), "C": (10000, 500)}
        skew = {s.source: (s.mu, s.sigma) for s in gaussian_skew_substreams()}
        assert skew == {"A": (100, 10), "B": (1000, 100), "C": (10000, 1000)}
        poi = {s.source: s.lam for s in poisson_substreams()}
        assert poi == {"A": 10, "B": 1000, "C": 100_000_000}


class TestPoissonSampler:
    def test_small_lambda_knuth(self):
        rng = random.Random(2)
        values = [_poisson(rng, 3.0) for _ in range(4000)]
        assert abs(statistics.fmean(values) - 3.0) < 0.15

    def test_large_lambda_normal_approx(self):
        rng = random.Random(3)
        values = [_poisson(rng, 1e8) for _ in range(200)]
        mean = statistics.fmean(values)
        assert abs(mean - 1e8) / 1e8 < 1e-4

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            _poisson(random.Random(0), 0.0)


class TestMakeStream:
    def test_counts_match_rates(self):
        stream = stream_by_rates({"A": 100, "B": 50, "C": 10}, duration=10, seed=0)
        counts = {}
        for _ts, (source, _v) in stream:
            counts[source] = counts.get(source, 0) + 1
        assert counts == {"A": 1000, "B": 500, "C": 100}

    def test_time_ordered(self):
        stream = stream_by_rates({"A": 200, "B": 100}, duration=5, seed=1)
        timestamps = [ts for ts, _ in stream]
        assert timestamps == sorted(timestamps)

    def test_deterministic_given_seed(self):
        a = stream_by_rates({"A": 100}, duration=2, seed=7)
        b = stream_by_rates({"A": 100}, duration=2, seed=7)
        assert a == b

    def test_changing_one_rate_keeps_other_values(self):
        """Independent child RNGs: sub-stream B's values are identical even
        when A's rate changes."""
        low = stream_by_rates({"A": 10, "B": 100}, duration=2, seed=9)
        high = stream_by_rates({"A": 1000, "B": 100}, duration=2, seed=9)
        b_low = [v for _ts, (s, v) in low if s == "B"]
        b_high = [v for _ts, (s, v) in high if s == "B"]
        assert b_low == b_high

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            make_stream(gaussian_substreams(), {"A": 1, "B": 1, "C": 1}, duration=0)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            stream_by_shares(
                gaussian_substreams(), {"A": 0.5, "B": 0.1, "C": 0.1}, 100, 1
            )

    def test_shares_split(self):
        stream = stream_by_shares(
            gaussian_skew_substreams(),
            {"A": 0.80, "B": 0.19, "C": 0.01},
            total_rate=1000,
            duration=10,
            seed=0,
        )
        counts = {}
        for _ts, (source, _v) in stream:
            counts[source] = counts.get(source, 0) + 1
        assert counts["A"] == 8000 and counts["B"] == 1900 and counts["C"] == 100


class TestNetflow:
    def test_mix_matches_paper(self):
        assert PROTOCOL_MIX["TCP"] == pytest.approx(0.623, abs=0.001)
        assert PROTOCOL_MIX["UDP"] == pytest.approx(0.362, abs=0.001)
        assert PROTOCOL_MIX["ICMP"] == pytest.approx(0.0151, abs=0.001)
        assert sum(PROTOCOL_MIX.values()) == pytest.approx(1.0)

    def test_generate_flows_shapes(self):
        rng = random.Random(4)
        tcp = generate_flows("TCP", 3000, rng)
        icmp = generate_flows("ICMP", 3000, rng)
        mean_tcp = statistics.fmean(f.bytes for f in tcp)
        mean_icmp = statistics.fmean(f.bytes for f in icmp)
        assert mean_tcp > 10 * mean_icmp  # TCP flows dominate bytes
        assert all(f.bytes >= 40 and f.packets >= 1 for f in tcp + icmp)

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            generate_flows("SCTP", 1, random.Random(0))

    def test_stream_composition(self):
        stream = netflow_stream(total_rate=10_000, duration=5, seed=0)
        counts = {}
        for _ts, item in stream:
            counts[flow_protocol(item)] = counts.get(flow_protocol(item), 0) + 1
        total = sum(counts.values())
        assert counts["TCP"] / total == pytest.approx(0.623, abs=0.01)
        assert counts["ICMP"] / total == pytest.approx(0.015, abs=0.005)

    def test_value_accessor(self):
        stream = netflow_stream(total_rate=1000, duration=1, seed=1)
        assert all(flow_bytes(item) >= 40 for _ts, item in stream)


class TestTaxi:
    def test_mix_sums_to_one(self):
        assert sum(BOROUGH_MIX.values()) == pytest.approx(1.0)

    def test_manhattan_dominates(self):
        assert BOROUGH_MIX["Manhattan"] > 0.5
        assert BOROUGH_MIX["Staten Island"] < 0.01

    def test_distance_distributions_differ(self):
        rng = random.Random(5)
        manhattan = statistics.fmean(
            r.distance_miles for r in generate_rides("Manhattan", 2000, rng)
        )
        staten = statistics.fmean(
            r.distance_miles for r in generate_rides("Staten Island", 2000, rng)
        )
        assert staten > 2 * manhattan

    def test_unknown_borough(self):
        with pytest.raises(ValueError):
            generate_rides("Atlantis", 1, random.Random(0))

    def test_stream_accessors(self):
        stream = taxi_stream(total_rate=5_000, duration=4, seed=0)
        assert stream
        boroughs = {ride_borough(item) for _ts, item in stream}
        assert "Manhattan" in boroughs and "Staten Island" in boroughs
        assert all(0 < ride_distance(item) <= 60 for _ts, item in stream)

    def test_fares_positive(self):
        rides = generate_rides("Queens", 100, random.Random(6))
        assert all(r.fare_usd > 2.5 for r in rides)
