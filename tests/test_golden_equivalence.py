"""Cross-system golden equivalence: the runtime reproduces the seed outputs.

``tests/golden/systems_golden.json`` was captured from the *pre-refactor*
implementations — the seven per-system ``_execute`` loops that predate the
unified `repro.runtime` layer — for a fixed workload and seed.  These
tests assert that every refactored system still produces the same
`SystemReport` (estimates, error bounds, accuracy loss, sampled counts,
virtual time) number for number.

Floats are compared at rel=1e-9: the legacy implementations themselves
drift in the last bit across processes (stratum iteration orders feeding
``fsum`` depend on ``PYTHONHASHSEED``), so bit-exact equality was never a
property of the seed code either.
"""

import json

import pytest

from golden_config import GOLDEN_PATH, golden_cases

with open(GOLDEN_PATH) as fh:
    GOLDEN = json.load(fh)

CASES = dict(golden_cases())


def assert_matches(got, want, path=""):
    assert type(got) is type(want) or (
        isinstance(got, (int, float)) and isinstance(want, (int, float))
    ), f"{path}: type {type(got).__name__} != {type(want).__name__}"
    if isinstance(want, dict):
        assert set(got) == set(want), f"{path}: keys differ"
        for key in want:
            assert_matches(got[key], want[key], f"{path}.{key}")
    elif isinstance(want, list):
        assert len(got) == len(want), f"{path}: length {len(got)} != {len(want)}"
        for i, (g, w) in enumerate(zip(got, want)):
            assert_matches(g, w, f"{path}[{i}]")
    elif isinstance(want, bool) or want is None or isinstance(want, (str, int)):
        assert got == want, f"{path}: {got!r} != {want!r}"
    else:
        assert got == pytest.approx(want, rel=1e-9, abs=1e-12), (
            f"{path}: {got!r} != {want!r}"
        )


def test_golden_file_covers_all_seven_systems():
    systems = {name.split("@")[0] for name in GOLDEN}
    assert systems == {
        "native-spark",
        "native-flink",
        "native-streamapprox",
        "spark-srs",
        "spark-sts",
        "spark-streamapprox",
        "flink-streamapprox",
    }
    assert set(CASES) == set(GOLDEN)


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_refactored_system_matches_seed_output(case):
    from golden_config import report_fingerprint

    got = report_fingerprint(CASES[case]())
    assert_matches(got, GOLDEN[case], path=case)
