"""Cross-system golden equivalence: the runtime reproduces the seed outputs.

``tests/golden/systems_golden.json`` was captured from the *pre-refactor*
implementations — the seven per-system ``_execute`` loops that predate the
unified `repro.runtime` layer — for a fixed workload and seed.  These
tests assert that every refactored system still produces the same
`SystemReport` (estimates, error bounds, accuracy loss, sampled counts,
virtual time) number for number.

Floats are compared at rel=1e-9: the legacy implementations themselves
drift in the last bit across processes (stratum iteration orders feeding
``fsum`` depend on ``PYTHONHASHSEED``), so bit-exact equality was never a
property of the seed code either.
"""

import json

import pytest

from golden_config import GOLDEN_PATH, golden_cases

with open(GOLDEN_PATH) as fh:
    GOLDEN = json.load(fh)

CASES = dict(golden_cases())


def assert_matches(got, want, path=""):
    assert type(got) is type(want) or (
        isinstance(got, (int, float)) and isinstance(want, (int, float))
    ), f"{path}: type {type(got).__name__} != {type(want).__name__}"
    if isinstance(want, dict):
        assert set(got) == set(want), f"{path}: keys differ"
        for key in want:
            assert_matches(got[key], want[key], f"{path}.{key}")
    elif isinstance(want, list):
        assert len(got) == len(want), f"{path}: length {len(got)} != {len(want)}"
        for i, (g, w) in enumerate(zip(got, want)):
            assert_matches(g, w, f"{path}[{i}]")
    elif isinstance(want, bool) or want is None or isinstance(want, (str, int)):
        assert got == want, f"{path}: {got!r} != {want!r}"
    else:
        assert got == pytest.approx(want, rel=1e-9, abs=1e-12), (
            f"{path}: {got!r} != {want!r}"
        )


def test_golden_file_covers_all_seven_systems():
    systems = {name.split("@")[0] for name in GOLDEN}
    assert systems == {
        "native-spark",
        "native-flink",
        "native-streamapprox",
        "spark-srs",
        "spark-sts",
        "spark-streamapprox",
        "flink-streamapprox",
    }
    assert set(CASES) == set(GOLDEN)


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_refactored_system_matches_seed_output(case):
    from golden_config import report_fingerprint

    got = report_fingerprint(CASES[case]())
    assert_matches(got, GOLDEN[case], path=case)


# ---------------------------------------------------------------------------
# Telemetry neutrality: tracing + metrics leave every number untouched
#
# The observability layer promises to be loss-free: a run with
# ``SystemConfig(telemetry=TelemetryConfig())`` fingerprints *identically*
# to the golden JSON — spans and counters observe the run, they never touch
# the RNG stream, the sampled sets, or the estimates.  The whole golden
# matrix re-runs with telemetry on to pin that.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_telemetry_enabled_run_matches_golden(case):
    from golden_config import golden_cases, report_fingerprint
    from repro.obs import TelemetryConfig

    report = dict(golden_cases(telemetry=TelemetryConfig()))[case]()
    assert_matches(report_fingerprint(report), GOLDEN[case], path=f"{case}@telemetry")
    telemetry = report.telemetry
    assert telemetry is not None
    assert telemetry.pane_stages, "stage table should cover the run's panes"
    assert [root["name"] for root in telemetry.tracer.structure()] == ["run"]
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["panes"] == len(telemetry.pane_stages)
    assert counters["items.observed"] > 0


# ---------------------------------------------------------------------------
# Budget-driven plans across the seven systems
#
# ``SystemConfig(budget=…)`` cannot be compared number-for-number against the
# golden JSON (adapting the sample size is the point), but it must not change
# the *shape* of a run: the five sampled systems still fire the same panes
# over the same populations with the same ground truth, and the two native
# systems — whose ``none`` strategy has nothing to adapt — are rejected at
# plan-build time.  Running these in the same harness also pins that adding
# ``budget`` to `SystemConfig` left the fixed-fraction cases above bitwise
# intact.
# ---------------------------------------------------------------------------


def _budget_report(cls):
    from golden_config import WINDOW, golden_config, golden_query, golden_stream
    from repro.core.budget import AccuracyBudget

    config = golden_config(budget=AccuracyBudget(target_margin=0.5))
    return cls(golden_query(), WINDOW, config).run(golden_stream())


@pytest.mark.parametrize("case", sorted(
    {name.split("@")[0] for name in GOLDEN}
    - {"native-spark", "native-flink"}
))
def test_budget_driven_run_keeps_golden_pane_structure(case):
    from golden_config import _SEVEN

    cls = {c.name: c for c in _SEVEN}[case]
    report = _budget_report(cls)
    golden_panes = GOLDEN[case]["panes"]
    assert len(report.results) == len(golden_panes)
    for got, want in zip(report.results, golden_panes):
        assert got.end == pytest.approx(want["end"])
        assert got.total_items == want["total_items"]
        assert got.exact == pytest.approx(want["exact"], rel=1e-9)
    # The adaptive loop actually ran: one decision per pane.
    assert len(report.adaptation) == len(report.results)


@pytest.mark.parametrize("case", ["native-spark", "native-flink"])
def test_budget_driven_native_systems_rejected(case):
    from golden_config import _SEVEN
    from repro.runtime import PlanError

    cls = {c.name: c for c in _SEVEN}[case]
    with pytest.raises(PlanError, match="requires a sampling strategy"):
        _budget_report(cls)


# ---------------------------------------------------------------------------
# Checkpoint / resume against the golden reference
#
# The fault-tolerance service must be invisible to the numbers: a run that
# checkpoints every pane still fingerprints identically to the golden JSON,
# and a run killed after pane k and resumed from its checkpoint reproduces
# the golden panes bit for bit — one case per engine (batched / pipelined /
# direct), which between them cover all three driver loops.
# ---------------------------------------------------------------------------

_RESUME_CASES = ["spark-streamapprox", "flink-streamapprox", "native-streamapprox"]


def _checkpointed_system(cls):
    from golden_config import WINDOW, golden_config, golden_query
    from repro.runtime import CheckpointPolicy

    config = golden_config(checkpoint=CheckpointPolicy(every=1))
    return cls(golden_query(), WINDOW, config)


@pytest.mark.parametrize("case", _RESUME_CASES)
def test_checkpointed_run_still_matches_golden(case):
    from golden_config import _SEVEN, golden_stream, report_fingerprint

    cls = {c.name: c for c in _SEVEN}[case]
    system = _checkpointed_system(cls)
    got = report_fingerprint(system.run(golden_stream()))
    assert_matches(got, GOLDEN[case], path=f"{case}@checkpointed")
    assert system.checkpoints is not None and len(system.checkpoints) >= 2


@pytest.mark.parametrize("case", _RESUME_CASES)
def test_resume_from_every_checkpoint_matches_golden(case):
    from golden_config import _SEVEN, golden_stream, report_fingerprint

    cls = {c.name: c for c in _SEVEN}[case]
    stream = golden_stream()
    system = _checkpointed_system(cls)
    system.run(stream)
    store = system.checkpoints
    for index in store.indices():
        resumed = _checkpointed_system(cls).run(
            stream, resume_from=store.get(index)
        )
        # Pane-level comparison only: the resumed run re-processes just the
        # stream suffix, so its virtual-time charge is legitimately lower.
        assert_matches(
            report_fingerprint(resumed)["panes"], GOLDEN[case]["panes"],
            path=f"{case}@resume[{index}]",
        )
