"""The observability layer: metrics, tracing, pane timing, and neutrality.

Three layers of coverage:

* unit behaviour of the instruments (`Counter`/`Gauge`/`Histogram`), the
  registry get-or-create semantics, and the `Tracer` span algebra
  (nesting, retroactive attachment, exports);
* the disabled twins (`NULL_METRICS`, `NULL_TRACER`, `NULL_PANE_TIMER`)
  — shared no-op singletons, so the telemetry-off hot path allocates
  nothing;
* end-to-end properties on real runs: span *structure* is deterministic
  (two identical runs produce identical trees — no clock fields
  asserted), the driver's stage table covers every pane, budget
  re-targets surface as trace events, and the sharded executor's
  worker-pool counters reconcile with the driver's item counters.
"""

import json

import pytest

from repro import StreamQuery, SystemConfig, WindowConfig
from repro.core.budget import AccuracyBudget
from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NULL_PANE_TIMER,
    NULL_TRACER,
    RunTelemetry,
    TelemetryConfig,
    Tracer,
    run_telemetry,
    write_chrome_trace,
)
from repro.system.native import NativeStreamApproxSystem
from repro.workloads.synthetic import stream_by_rates

WINDOW = WindowConfig(length=10.0, slide=5.0)
QUERY = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])


def _stream(seed=11):
    return stream_by_rates({"A": 400, "B": 100, "C": 10}, duration=12, seed=seed)


# ---------------------------------------------------------------------------
# metrics instruments


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("items")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5.0
    gauge = registry.gauge("depth")
    gauge.set(7)
    gauge.inc()
    gauge.dec(3)
    assert gauge.value == 5.0


def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(TypeError, match="already registered"):
        registry.gauge("x")


def test_histogram_buckets_and_percentiles():
    h = Histogram("lat", bounds=(0.01, 0.1, 1.0))
    for value in (0.005, 0.02, 0.02, 0.5, 5.0):
        h.observe(value)
    assert h.count == 5
    assert h.max == 5.0
    assert h.mean == pytest.approx(sum((0.005, 0.02, 0.02, 0.5, 5.0)) / 5)
    # Nearest-rank estimates land on bucket upper edges...
    assert h.percentile(50) == 0.1
    # ...and the overflow bucket reports the observed max.
    assert h.percentile(99) == 5.0
    summary = h.summary()
    assert summary["count"] == 5 and summary["p99"] == 5.0


def test_histogram_empty_summary_is_zeroes():
    h = Histogram("lat")
    assert h.percentile(99) == 0.0
    assert h.summary()["count"] == 0
    assert tuple(h.bounds) == DEFAULT_BUCKETS


def test_registry_snapshot_is_name_sorted():
    registry = MetricsRegistry()
    registry.counter("zeta").inc()
    registry.counter("alpha").inc(2)
    registry.gauge("mid").set(1.5)
    registry.histogram("lat").observe(0.02)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["alpha", "zeta"]
    assert snap["counters"]["alpha"] == 2.0
    assert snap["gauges"]["mid"] == 1.5
    assert snap["histograms"]["lat"]["count"] == 1


def test_null_registry_is_shared_noop():
    assert NULL_METRICS.enabled is False
    counter = NULL_METRICS.counter("anything")
    assert counter is NULL_METRICS.counter("something-else")
    counter.inc(10)
    assert counter.value == 0.0
    NULL_METRICS.histogram("h").observe(1.0)
    assert NULL_METRICS.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }


# ---------------------------------------------------------------------------
# tracer


def _fake_clock(start=0.0, step=1.0):
    state = {"now": start - step}

    def clock():
        state["now"] += step
        return state["now"]

    return clock


def test_tracer_nesting_and_structure():
    tracer = Tracer(clock=_fake_clock())
    tracer.begin("run", system="s")
    with tracer.span("interval", index=1):
        tracer.event("mark")
    tracer.end()
    assert tracer.structure() == [{
        "name": "run",
        "attrs": {"system": "s"},
        "children": [{
            "name": "interval",
            "attrs": {"index": 1},
            "children": [{"name": "mark"}],
        }],
    }]


def test_tracer_add_span_attaches_retroactively():
    tracer = Tracer(clock=_fake_clock())
    tracer.begin("run")
    interval = tracer.add_span("interval", 1.0, 5.0, {"index": 1})
    tracer.add_span("ingest", 1.0, 2.0, parent=interval)
    tracer.close()
    (run,) = tracer.roots
    assert [c.name for c in run.children] == ["interval"]
    assert [c.name for c in run.children[0].children] == ["ingest"]
    assert run.children[0].duration == pytest.approx(4.0)


def test_tracer_close_ends_open_spans():
    tracer = Tracer(clock=_fake_clock())
    tracer.begin("run")
    tracer.begin("interval")
    tracer.close()
    for span, _depth in tracer.spans():
        assert span.end is not None


def test_jsonl_export_shape():
    tracer = Tracer(clock=_fake_clock())
    with tracer.span("run", system="x"):
        with tracer.span("interval"):
            pass
    lines = [json.loads(line) for line in tracer.jsonl_lines()]
    assert [(l["name"], l["depth"]) for l in lines] == [("run", 0), ("interval", 1)]
    assert lines[0]["start_us"] == 0.0
    assert lines[0]["attrs"] == {"system": "x"}


def test_chrome_trace_export(tmp_path):
    tracer = Tracer(clock=_fake_clock())
    with tracer.span("run"):
        tracer.event("mark")
    path = tmp_path / "trace.json"
    write_chrome_trace(path, [("sys-a", tracer)])
    with open(path) as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert meta[0]["args"]["name"] == "sys-a"
    spans = {e["name"]: e for e in events if e["ph"] != "M"}
    assert spans["run"]["ph"] == "X" and spans["run"]["dur"] > 0
    assert spans["mark"]["ph"] == "i"


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    span = NULL_TRACER.begin("x", a=1)
    with NULL_TRACER.span("y"):
        pass
    assert NULL_TRACER.add_span("z", 0, 1) is span
    assert NULL_TRACER.structure() == []
    assert list(NULL_TRACER.jsonl_lines()) == []


# ---------------------------------------------------------------------------
# telemetry bundle and pane timer


def test_telemetry_config_flags_pick_implementations():
    both = RunTelemetry(TelemetryConfig())
    assert both.tracer.enabled and both.metrics.enabled
    no_trace = RunTelemetry(TelemetryConfig(tracing=False))
    assert no_trace.tracer is NULL_TRACER and no_trace.metrics.enabled
    no_metrics = RunTelemetry(TelemetryConfig(metrics=False))
    assert no_metrics.metrics is NULL_METRICS and no_metrics.tracer.enabled


def test_telemetry_config_rejects_non_bools():
    with pytest.raises(TypeError, match="bools"):
        TelemetryConfig(tracing="yes")


def test_run_telemetry_resolution():
    assert run_telemetry(None) is None
    live = RunTelemetry()
    assert run_telemetry(live) is live
    built = run_telemetry(TelemetryConfig(metrics=False))
    assert isinstance(built, RunTelemetry) and built.metrics is NULL_METRICS


def test_system_config_validates_telemetry():
    SystemConfig(telemetry=TelemetryConfig())
    SystemConfig(telemetry=RunTelemetry())
    with pytest.raises(ValueError, match="telemetry"):
        SystemConfig(telemetry=True)


def test_pane_timer_builds_stage_rows_and_interval_spans():
    telemetry = RunTelemetry(TelemetryConfig())
    telemetry.tracer._clock = _fake_clock()
    timer = telemetry.pane_timer()
    telemetry.tracer.begin("run")
    timer.open()
    timer.lap("ingest")
    timer.lap("offer")
    timer.lap("offer")  # same-stage laps accumulate
    timer.close(1, end=5.0)
    telemetry.tracer.close()
    (row,) = telemetry.pane_stages
    assert row["index"] == 1 and row["end"] == 5.0
    assert set(row["stages"]) == {"ingest", "offer"}
    (run,) = telemetry.tracer.roots
    (interval,) = run.children
    assert interval.name == "interval" and interval.attrs["index"] == 1
    assert [c.name for c in interval.children] == ["ingest", "offer", "offer"]
    assert telemetry.stage_seconds()["offer"] == row["stages"]["offer"]


def test_note_stage_credits_last_pane():
    telemetry = RunTelemetry(TelemetryConfig())
    timer = telemetry.pane_timer()
    timer.open()
    timer.lap("estimate")
    timer.close(1)
    telemetry.note_stage("checkpoint", 10.0, 10.5)
    assert telemetry.pane_stages[-1]["stages"]["checkpoint"] == pytest.approx(0.5)


def test_null_pane_timer_is_inert():
    NULL_PANE_TIMER.open()
    NULL_PANE_TIMER.lap("ingest")
    NULL_PANE_TIMER.close(1, end=5.0)  # no state, no error


# ---------------------------------------------------------------------------
# end-to-end: deterministic span trees, stage coverage, attribution


def _run(config=None):
    config = config or SystemConfig(telemetry=TelemetryConfig())
    return NativeStreamApproxSystem(QUERY, WINDOW, config).run(_stream())


def test_span_structure_is_deterministic_across_runs():
    first = _run().telemetry
    second = _run().telemetry
    assert first.tracer.structure() == second.tracer.structure()
    assert [row["stages"].keys() for row in first.pane_stages] == [
        row["stages"].keys() for row in second.pane_stages
    ]
    assert first.metrics.snapshot()["counters"] == (
        second.metrics.snapshot()["counters"]
    )


def test_stage_table_covers_every_pane():
    report = _run()
    telemetry = report.telemetry
    assert len(telemetry.pane_stages) == len(report.results)
    for row, pane in zip(telemetry.pane_stages, report.results):
        assert row["end"] == pane.end
        assert set(row["stages"]) >= {"ingest", "estimate"}
    summary = telemetry.summary()
    assert summary["panes"] == len(report.results)
    assert summary["metrics"]["counters"]["items.observed"] == report.items_total


def test_telemetry_off_report_carries_none():
    report = NativeStreamApproxSystem(QUERY, WINDOW, SystemConfig()).run(_stream())
    assert report.telemetry is None


def test_budget_retargets_surface_as_trace_events():
    config = SystemConfig(
        telemetry=TelemetryConfig(), budget=AccuracyBudget(target_margin=0.5)
    )
    report = _run(config)
    telemetry = report.telemetry
    events = [
        span for span, _depth in telemetry.tracer.spans()
        if span.name == "budget.retarget"
    ]
    assert len(events) == len(report.adaptation)
    for event, point in zip(events, report.adaptation):
        assert event.attrs["sample_budget"] == point.sample_budget
        assert event.attrs["interval_end"] == point.interval_end
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["budget.retargets"] == len(report.adaptation)


def test_sharded_run_reconciles_worker_counters():
    config = SystemConfig(telemetry=TelemetryConfig(), parallelism=3)
    report = _run(config)
    counters = report.telemetry.metrics.snapshot()["counters"]
    if report.parallel_fallback is not None:
        assert counters["transport.inprocess_intervals"] > 0
        return
    # Workers saw every item exactly once and kept exactly what the panes
    # report; the pinned-stream fast path means every interval crossed as
    # an index span.
    assert counters["pool.workers_spawned"] == 3
    assert counters["pool.worker_items"] == counters["items.observed"]
    assert counters["pool.worker_kept"] == counters["items.sampled"]
    assert counters["transport.span_intervals"] == counters["panes"]
    assert counters["pool.policy_snapshots"] == 3 * counters["panes"]
    histograms = report.telemetry.metrics.snapshot()["histograms"]
    assert histograms["pool.shard_seconds"]["count"] == 3 * counters["panes"]


def test_run_telemetry_instance_can_be_shared_by_caller():
    # The CLI holds the collector directly to merge traces across systems.
    collector = RunTelemetry()
    config = SystemConfig(telemetry=collector)
    report = NativeStreamApproxSystem(QUERY, WINDOW, config).run(_stream())
    assert report.telemetry is collector
    assert collector.pane_stages
