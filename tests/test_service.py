"""Tests for the multi-tenant query service (`repro.service`).

Covers the serving-layer contracts the runtime tests cannot:

* tenant isolation — one tenant exhausting its budget never starves
  another, and the ``sampled <= observed * budget`` invariant holds at
  every instant (zero cross-tenant leakage);
* determinism — concurrently submitted queries return answers bitwise
  identical to the same plans run standalone through `execute_plan`,
  regardless of submission order or thread interleaving;
* admission rejections — every typed `RejectionReason` surfaces, both
  in-process and over the TCP wire;
* graceful shutdown — ``close(drain=True)`` refuses new work but
  finishes in-flight queries;
* fair-share capacity — queued tenants are granted least-granted-first,
  FIFO within a tenant, with grant-when-idle as the deadlock backstop.

Plain pytest: each async scenario runs under its own ``asyncio.run``.
"""

import asyncio

import pytest

from repro.runtime import StreamQuery, SystemConfig, WindowConfig, execute_plan
from repro.service import (
    AdmissionRejected,
    QueryService,
    QuerySubmission,
    RejectionReason,
    TenantScheduler,
)
from repro.workloads.synthetic import stream_by_rates


def _stream(seed=9):
    return stream_by_rates({"A": 500, "B": 120, "C": 30}, duration=12, seed=seed)


def _service(capacity=1_000_000.0, max_workers=2, **tenants):
    service = QueryService(
        scheduler=TenantScheduler(capacity=capacity), max_workers=max_workers
    )
    for name, budget in (tenants or {"alice": 1.0}).items():
        service.register_tenant(name, budget)
    service.hub.register("ticks", _stream())
    return service


def _sub(tenant="alice", source="ticks", seed=7, fraction=0.3, **kwargs):
    return QuerySubmission(
        tenant_id=tenant,
        source=source,
        config=SystemConfig(sampling_fraction=fraction, seed=seed),
        **kwargs,
    )


# ---------------------------------------------------------------------------
# scheduler: ratio-accounting admission


def test_budget_validation():
    sched = TenantScheduler()
    with pytest.raises(ValueError):
        sched.register("a", budget=0.0)
    with pytest.raises(ValueError):
        sched.register("a", budget=1.5)
    with pytest.raises(ValueError):
        TenantScheduler(capacity=0.0)


def test_unknown_tenant_raises_typed_rejection():
    sched = TenantScheduler()
    with pytest.raises(AdmissionRejected) as exc:
        sched.admit("ghost", 1.0)
    assert exc.value.reason is RejectionReason.UNKNOWN_TENANT


def test_full_budget_admits_everything():
    sched = TenantScheduler()
    sched.register("alice", budget=1.0)
    for _ in range(50):
        sched.admit("alice", 123.4)
    account = sched.account("alice")
    assert account.admitted == 50 and account.rejected == 0
    assert account.ratio == pytest.approx(1.0)


def test_half_budget_alternates_and_never_leaks():
    sched = TenantScheduler()
    sched.register("bob", budget=0.5)
    outcomes = []
    for _ in range(20):
        try:
            sched.admit("bob", 100.0)
            outcomes.append(True)
        except AdmissionRejected as exc:
            assert exc.reason is RejectionReason.BUDGET_EXHAUSTED
            outcomes.append(False)
        account = sched.account("bob")
        # The zero-leakage invariant, checked after every single decision.
        assert account.sampled <= account.observed * account.budget + 1e-6
    # Unit-cost submissions against budget 0.5: reject, admit, reject, ...
    assert outcomes == [False, True] * 10
    assert sched.account("bob").ratio == pytest.approx(0.5)


def test_rejected_work_still_grows_observed():
    sched = TenantScheduler()
    sched.register("bob", budget=0.25)
    admitted = 0
    for _ in range(100):
        try:
            sched.admit("bob", 10.0)
            admitted += 1
        except AdmissionRejected:
            pass
    assert admitted == 25  # the ratio converges to the budget exactly
    assert sched.account("bob").ratio == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# scheduler: fair-share capacity


def test_fair_share_grants_least_granted_tenant_first():
    async def scenario():
        sched = TenantScheduler(capacity=10.0)
        sched.register("a")
        sched.register("b")
        await sched.acquire("a", 10.0)  # fills capacity
        order = []

        async def wait(tenant, tag):
            await sched.acquire(tenant, 10.0)
            order.append(tag)
            sched.release(tenant, 10.0)

        # a queues three more, then b queues one.
        tasks = [
            asyncio.ensure_future(wait("a", "a1")),
            asyncio.ensure_future(wait("a", "a2")),
            asyncio.ensure_future(wait("a", "a3")),
            asyncio.ensure_future(wait("b", "b1")),
        ]
        await asyncio.sleep(0)  # let every waiter enqueue
        sched.release("a", 10.0)
        await asyncio.gather(*tasks)
        return order

    order = asyncio.run(scenario())
    # b has the least cumulative granted cost, so it goes first despite
    # queueing last; a's waiters then drain FIFO.
    assert order == ["b1", "a1", "a2", "a3"]


def test_grant_when_idle_prevents_deadlock():
    async def scenario():
        sched = TenantScheduler(capacity=5.0)
        sched.register("a")
        await sched.acquire("a", 50.0)  # 10x capacity, but nothing in flight
        sched.release("a", 50.0)
        return True

    assert asyncio.run(scenario())


def test_cancelled_waiter_is_removed_from_queue():
    async def scenario():
        sched = TenantScheduler(capacity=10.0)
        sched.register("a")
        sched.register("b")
        await sched.acquire("a", 10.0)
        doomed = asyncio.ensure_future(sched.acquire("a", 10.0))
        survivor = asyncio.ensure_future(sched.acquire("b", 10.0))
        await asyncio.sleep(0)
        doomed.cancel()
        await asyncio.gather(doomed, return_exceptions=True)
        sched.release("a", 10.0)
        await survivor
        sched.release("b", 10.0)
        return sched.account("a").active_cost, sched.account("b").active_cost

    a_active, b_active = asyncio.run(scenario())
    assert a_active == 0.0 and b_active == 0.0


# ---------------------------------------------------------------------------
# service: submission, streaming, determinism


def test_submit_streams_panes_then_answer():
    async def scenario():
        service = _service()
        try:
            handle = await service.submit(_sub())
            panes = [pane async for pane in handle.panes()]
            answer = await handle.result()
            return panes, answer
        finally:
            await service.close()

    panes, answer = asyncio.run(scenario())
    assert len(panes) == len(answer.report.results) > 0
    assert panes == answer.report.results
    assert answer.estimate == answer.report.results[-1].estimate
    assert answer.time_to_first_pane is not None
    assert answer.time_to_answer >= answer.time_to_first_pane >= 0.0


def test_answer_bitwise_equal_to_standalone_execute_plan():
    async def scenario():
        service = _service()
        try:
            handle = await service.submit(_sub(seed=13, fraction=0.4))
            answer = await handle.result()
            return handle.plan, answer
        finally:
            await service.close()

    plan, answer = asyncio.run(scenario())
    standalone, _cluster = execute_plan(plan)
    assert answer.report.results == standalone


@pytest.mark.parametrize("engine", ["direct", "batched", "pipelined"])
def test_all_engines_serve_and_match_standalone(engine):
    async def scenario():
        service = _service()
        try:
            handle = await service.submit(_sub(engine=engine, seed=21))
            answer = await handle.result()
            return handle.plan, answer
        finally:
            await service.close()

    plan, answer = asyncio.run(scenario())
    standalone, _cluster = execute_plan(plan)
    assert answer.report.results == standalone


def test_concurrent_submissions_are_deterministic():
    """Same seeds => same answers, regardless of submission order or
    thread interleaving."""
    seeds = [3, 11, 29, 47]

    def run_batch(order):
        async def scenario():
            service = _service(max_workers=2)
            try:
                handles = await asyncio.gather(
                    *(service.submit(_sub(seed=s)) for s in order)
                )
                answers = await asyncio.gather(*(h.result() for h in handles))
                return {
                    s: a.report.results for s, a in zip(order, answers)
                }, {s: h.plan for s, h in zip(order, handles)}
            finally:
                await service.close()

        return asyncio.run(scenario())

    forward, plans = run_batch(seeds)
    backward, _ = run_batch(list(reversed(seeds)))
    assert forward == backward
    for seed in seeds:
        standalone, _cluster = execute_plan(plans[seed])
        assert forward[seed] == standalone


def test_quantile_query_kind_streams_dkw_bounds():
    async def scenario():
        service = _service()
        try:
            handle = await service.submit(_sub(kind="quantile", q=0.9, seed=5))
            panes = [pane async for pane in handle.panes()]
            answer = await handle.result()
            return handle.plan, panes, answer
        finally:
            await service.close()

    plan, panes, answer = asyncio.run(scenario())
    assert plan.query.kind == "quantile" and plan.query.q == 0.9
    for pane in panes:
        if pane.total_items:
            assert pane.error.q == 0.9  # DKW brackets carry their rank
            lower, upper = pane.error.interval
            assert lower <= pane.estimate <= upper
    standalone, _cluster = execute_plan(plan)
    assert answer.report.results == standalone


# ---------------------------------------------------------------------------
# service: tenant isolation and admission rejections


def test_budget_exhausted_tenant_never_starves_another():
    async def scenario():
        service = _service(alice=1.0, bob=0.5)
        try:
            outcomes = {"alice": [], "bob": []}
            for _ in range(4):
                for tenant in ("bob", "alice"):
                    try:
                        handle = await service.submit(_sub(tenant=tenant))
                        await handle.result()
                        outcomes[tenant].append(True)
                    except AdmissionRejected as exc:
                        assert exc.reason is RejectionReason.BUDGET_EXHAUSTED
                        outcomes[tenant].append(False)
            return outcomes, service.scheduler.snapshot()
        finally:
            await service.close()

    outcomes, snapshot = asyncio.run(scenario())
    assert outcomes["alice"] == [True] * 4  # alice untouched by bob's rejections
    assert outcomes["bob"] == [False, True, False, True]
    for tenant, ledger in snapshot.items():
        assert ledger["sampled"] <= ledger["observed"] * ledger["budget"] + 1e-6
    # Settle-up swaps each admitted estimate for the (smaller) measured
    # actuals, so the achieved ratio lands at or below the budget instead
    # of exactly on it; the refunds show up as a negative settled total.
    assert 0 < snapshot["bob"]["ratio"] <= 0.5 + 1e-6
    assert 0 < snapshot["alice"]["ratio"] <= 1.0 + 1e-6
    assert snapshot["bob"]["settled"] < 0
    assert snapshot["bob"]["settles"] == 2


def _reject_reason(service, sub):
    async def scenario():
        try:
            await service.submit(sub)
        except AdmissionRejected as exc:
            return exc.reason
        finally:
            await service.close()
        return None

    return asyncio.run(scenario())


def test_unknown_tenant_rejected():
    assert (
        _reject_reason(_service(), _sub(tenant="ghost"))
        is RejectionReason.UNKNOWN_TENANT
    )


def test_unknown_source_rejected():
    assert (
        _reject_reason(_service(), _sub(source="nope"))
        is RejectionReason.UNKNOWN_SOURCE
    )


def test_invalid_plan_rejected():
    assert (
        _reject_reason(_service(), _sub(engine="warp-drive"))
        is RejectionReason.PLAN_INVALID
    )


def test_unknown_tenant_checked_before_source():
    # A ghost tenant naming a ghost source is rejected for the tenant:
    # identity comes before capability.
    assert (
        _reject_reason(_service(), _sub(tenant="ghost", source="nope"))
        is RejectionReason.UNKNOWN_TENANT
    )


# ---------------------------------------------------------------------------
# scheduler: settle-up reconciliation
#
# Admission charges the pre-run *estimate*; `settle` swaps it for the
# measured actual once the run reports ``sampled_items``.  With a constant
# actual a = k·e against budget b, the long-run achieved ratio converges to
# min(b, k) and the admitted *fraction* to min(1, b/k): over-estimates
# (k < 1) refund headroom so more queries get in; under-estimates (k > 1)
# charge the surplus forward so fewer do.


def _settle_run(budget, estimate, actual, rounds=400):
    sched = TenantScheduler()
    sched.register("t", budget=budget)
    admitted = 0
    for _ in range(rounds):
        try:
            sched.admit("t", estimate)
        except AdmissionRejected:
            continue
        admitted += 1
        sched.settle("t", estimate, actual)
    return sched.account("t"), admitted


def test_settle_refunds_overestimates_and_admits_more():
    # Budget 0.5, actual = 0.8x the estimate: refunds push the admitted
    # fraction to b/k = 62.5% while the achieved ratio stays on budget.
    account, admitted = _settle_run(0.5, 100.0, 80.0)
    assert account.ratio == pytest.approx(0.5, abs=0.01)
    assert admitted / 400 == pytest.approx(0.625, abs=0.02)
    assert account.settled == pytest.approx(-20.0 * admitted)
    assert account.settles == admitted
    # Refund-only settling keeps the invariant at every step's end state.
    assert account.sampled <= account.observed * account.budget + 1e-6


def test_settle_charges_underestimates_and_admits_less():
    # Budget 0.5, actual = 2x the estimate: the surplus carried forward
    # halves the admitted fraction to b/k = 25%; the measured ratio still
    # converges to the budget, so under-reporting cost buys nothing.
    account, admitted = _settle_run(0.5, 100.0, 200.0)
    assert account.ratio == pytest.approx(0.5, abs=0.01)
    assert admitted / 400 == pytest.approx(0.25, abs=0.02)
    assert account.settled == pytest.approx(100.0 * admitted)


def test_settle_clamps_at_zero():
    sched = TenantScheduler()
    sched.register("t", budget=1.0)
    sched.admit("t", 10.0)
    delta = sched.settle("t", estimated=10.0, actual=0.0)
    assert delta == -10.0
    account = sched.account("t")
    assert account.sampled == 0.0 and account.granted_cost == 0.0
    # A refund larger than the ledger cannot drive either below zero.
    sched.settle("t", estimated=50.0, actual=0.0)
    assert sched.account("t").sampled == 0.0


# ---------------------------------------------------------------------------
# service: metrics snapshot and settle-up wiring


def test_service_metrics_snapshot_structure():
    async def scenario():
        service = _service(alice=1.0, bob=0.5)
        try:
            for _ in range(2):
                handle = await service.submit(_sub())
                await handle.result()
            try:
                await service.submit(_sub(tenant="ghost"))
            except AdmissionRejected:
                pass
            return service.metrics_snapshot()
        finally:
            await service.close()

    snapshot = asyncio.run(scenario())
    service_stats = snapshot["service"]
    assert service_stats["submitted"] == 3
    assert service_stats["admitted"] == 2
    assert service_stats["rejected"] == 1
    assert service_stats["completed"] == 2
    assert service_stats["failed"] == 0
    assert service_stats["in_flight"] == 0
    assert service_stats["queue_depth"] == 0
    latency = service_stats["time_to_answer"]
    assert latency["count"] == 2 and latency["p99"] > 0
    assert service_stats["admission_wait"]["count"] == 2
    alice = snapshot["tenants"]["alice"]
    assert alice["admitted"] == 2 and alice["settles"] == 2
    assert alice["time_to_answer"]["count"] == 2
    # bob never submitted: ledger row present, no latency series yet.
    bob = snapshot["tenants"]["bob"]
    assert bob["admitted"] == 0
    assert bob["time_to_answer"]["count"] == 0


def test_answer_carries_actual_cost_and_settles_ledger():
    async def scenario():
        service = _service()
        try:
            handle = await service.submit(_sub())
            answer = await handle.result()
            return answer, handle.cost, service.scheduler.snapshot()
        finally:
            await service.close()

    answer, estimated, snapshot = asyncio.run(scenario())
    # Each kept item is charged once; summing pane.sampled_items would
    # double-count items landing in two overlapping sliding panes.
    assert 0 < answer.actual_cost <= sum(
        r.sampled_items for r in answer.report.results
    )
    ledger = snapshot["alice"]
    assert ledger["settles"] == 1
    assert ledger["settled"] == pytest.approx(answer.actual_cost - estimated)
    assert ledger["sampled"] == pytest.approx(answer.actual_cost)


# ---------------------------------------------------------------------------
# service: shared sources and shutdown


def test_source_hub_materializes_shared_sources_once():
    async def scenario():
        service = _service(alice=1.0, carol=1.0)
        try:
            handles = await asyncio.gather(
                *(
                    service.submit(_sub(tenant=t, seed=s))
                    for t in ("alice", "carol")
                    for s in (1, 2, 3)
                )
            )
            await asyncio.gather(*(h.result() for h in handles))
            return service.hub.materializations
        finally:
            await service.close()

    assert asyncio.run(scenario()) == 1


def test_workload_spec_sources_are_cached_by_parameters():
    async def scenario():
        service = _service(alice=1.0, carol=1.0)
        spec = {"workload": "gaussian", "rate": 100, "duration": 10, "seed": 4}
        try:
            handles = await asyncio.gather(
                service.submit(_sub(tenant="alice", source=dict(spec))),
                service.submit(_sub(tenant="carol", source=dict(spec))),
            )
            answers = await asyncio.gather(*(h.result() for h in handles))
            # 1 for the registered "ticks" stream + 1 for the shared spec.
            return service.hub.materializations, answers
        finally:
            await service.close()

    materializations, answers = asyncio.run(scenario())
    assert materializations == 2
    assert answers[0].report.results == answers[1].report.results


def test_graceful_shutdown_drains_in_flight_queries():
    async def scenario():
        service = _service()
        handle = await service.submit(_sub())
        await service.close(drain=True)  # waits for the query to finish
        assert handle.done
        answer = await handle.result()
        with pytest.raises(AdmissionRejected) as exc:
            await service.submit(_sub())
        return answer, exc.value.reason

    answer, reason = asyncio.run(scenario())
    assert answer.report.results
    assert reason is RejectionReason.DRAINING


def test_capacity_constrained_service_still_answers_correctly():
    """Fair-share queueing delays starts; answers stay bitwise identical."""

    async def scenario():
        # Tiny capacity: every query over ~4k events queues behind the
        # previous one, exercising acquire/release on the real service.
        service = _service(capacity=1.0, alice=1.0, carol=1.0)
        try:
            handles = await asyncio.gather(
                *(
                    service.submit(_sub(tenant=t, seed=s))
                    for t, s in [("alice", 1), ("carol", 2), ("alice", 3)]
                )
            )
            answers = await asyncio.gather(*(h.result() for h in handles))
            return [h.plan for h in handles], answers
        finally:
            await service.close()

    plans, answers = asyncio.run(scenario())
    for plan, answer in zip(plans, answers):
        standalone, _cluster = execute_plan(plan)
        assert answer.report.results == standalone


# ---------------------------------------------------------------------------
# TCP endpoint


async def _tcp_request(port, messages):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    import json

    for message in messages:
        writer.write((json.dumps(message) + "\n").encode())
    await writer.drain()
    replies = []
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout=30)
        if not line:
            break
        reply = json.loads(line)
        replies.append(reply)
        if reply["type"] in ("answer", "rejected", "error", "pong", "metrics"):
            break
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    return replies


def test_tcp_submit_round_trip():
    async def scenario():
        service = _service()
        try:
            _host, port = await service.serve_tcp(port=0)
            return await _tcp_request(
                port,
                [
                    {
                        "op": "submit",
                        "id": "c1",
                        "tenant": "alice",
                        "source": "ticks",
                        "config": {"fraction": 0.3, "seed": 7},
                    }
                ],
            )
        finally:
            await service.close()

    async def reference():
        # The same submission in-process: the wire must carry the same
        # estimates the async API yields.
        service = _service()
        try:
            handle = await service.submit(_sub(seed=7, fraction=0.3))
            return await handle.result()
        finally:
            await service.close()

    replies = asyncio.run(scenario())
    answer_ref = asyncio.run(reference())
    assert replies[0]["type"] == "admitted" and replies[0]["id"] == "c1"
    panes = [r for r in replies if r["type"] == "pane"]
    assert len(panes) == len(answer_ref.report.results)
    final = replies[-1]
    assert final["type"] == "answer"
    assert final["estimate"] == answer_ref.estimate
    assert final["panes"] == len(answer_ref.report.results)
    assert [p["estimate"] for p in panes] == [
        r.estimate for r in answer_ref.report.results
    ]


def test_tcp_rejections_and_ping():
    async def scenario():
        service = _service()
        try:
            _host, port = await service.serve_tcp(port=0)
            pong = await _tcp_request(port, [{"op": "ping"}])
            ghost = await _tcp_request(
                port,
                [{"op": "submit", "id": "g", "tenant": "ghost", "source": "ticks"}],
            )
            missing = await _tcp_request(
                port, [{"op": "submit", "id": "m", "tenant": "alice"}]
            )
            return pong, ghost, missing
        finally:
            await service.close()

    pong, ghost, missing = asyncio.run(scenario())
    assert pong[0]["type"] == "pong"
    assert ghost[0]["type"] == "rejected"
    assert ghost[0]["reason"] == "unknown-tenant"
    assert missing[0]["type"] == "error"
    assert "source" in missing[0]["detail"]


def test_tcp_metrics_request_reports_per_tenant_stats():
    async def scenario():
        service = _service(alice=1.0, bob=0.5)
        try:
            _host, port = await service.serve_tcp(port=0)
            # One full query over the wire first, so the counters move.
            await _tcp_request(
                port,
                [
                    {
                        "op": "submit",
                        "id": "q1",
                        "tenant": "alice",
                        "source": "ticks",
                        "config": {"fraction": 0.3, "seed": 7},
                    }
                ],
            )
            return await _tcp_request(port, [{"op": "metrics", "id": "m1"}])
        finally:
            await service.close()

    replies = asyncio.run(scenario())
    (reply,) = replies
    assert reply["type"] == "metrics" and reply["id"] == "m1"
    assert reply["service"]["submitted"] == 1
    assert reply["service"]["completed"] == 1
    assert set(reply["tenants"]) == {"alice", "bob"}
    alice = reply["tenants"]["alice"]
    assert alice["admitted"] == 1 and alice["settles"] == 1
    assert alice["time_to_answer"]["count"] == 1
    assert alice["time_to_first_pane"]["count"] == 1
