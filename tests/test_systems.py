"""Integration tests for the six end-to-end systems (Figure 3)."""

import pytest

from repro.system import (
    ALL_SYSTEMS,
    FlinkStreamApproxSystem,
    NativeFlinkSystem,
    NativeSparkSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.system.base import accuracy_loss, exact_panes
from repro.workloads.synthetic import stream_by_rates

KEY = lambda it: it[0]  # noqa: E731
VAL = lambda it: it[1]  # noqa: E731

QUERY = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean")
WINDOW = WindowConfig(length=10.0, slide=5.0)


@pytest.fixture(scope="module")
def stream():
    # 4000/1000/50 items/s for 12 s — small enough for fast tests, skewed
    # enough that stratification matters.
    return stream_by_rates({"A": 4000, "B": 1000, "C": 50}, duration=12, seed=3)


def run(cls, stream, fraction=0.6, **cfg):
    config = SystemConfig(sampling_fraction=fraction, **cfg)
    return cls(QUERY, WINDOW, config).run(stream)


class TestConfigValidation:
    def test_query_kind(self):
        with pytest.raises(ValueError):
            StreamQuery(key_fn=KEY, value_fn=VAL, kind="median")

    def test_window(self):
        with pytest.raises(ValueError):
            WindowConfig(length=-1, slide=5)
        with pytest.raises(ValueError):
            WindowConfig(length=5, slide=10)
        assert WindowConfig(10, 5).intervals_per_window == 2

    def test_system_config(self):
        with pytest.raises(ValueError):
            SystemConfig(sampling_fraction=0.0)
        with pytest.raises(ValueError):
            SystemConfig(sampling_fraction=1.5)
        with pytest.raises(ValueError):
            SystemConfig(batch_interval=0)
        with pytest.raises(ValueError):
            SystemConfig(nodes=0)


class TestExactPanes:
    def test_mean_truth(self, stream):
        truth = exact_panes(stream, QUERY, WINDOW)
        assert truth, "no panes computed"
        for _end, (exact, _groups, count) in truth.items():
            assert count > 0
            assert exact > 0

    def test_accuracy_loss_metric(self):
        assert accuracy_loss(101.0, 100.0) == pytest.approx(0.01)
        assert accuracy_loss(0.0, 0.0) == 0.0
        assert accuracy_loss(1.0, 0.0) == float("inf")


class TestNativeSystems:
    @pytest.mark.parametrize("cls", [NativeSparkSystem, NativeFlinkSystem])
    def test_exact_results(self, stream, cls):
        report = run(cls, stream, fraction=1.0)
        assert report.results, "no panes"
        for pane in report.results:
            assert pane.accuracy_loss == pytest.approx(0.0, abs=1e-9)
            assert pane.error is not None and pane.error.margin == pytest.approx(0.0)

    def test_native_flink_faster_than_native_spark(self, stream):
        spark = run(NativeSparkSystem, stream, fraction=1.0)
        flink = run(NativeFlinkSystem, stream, fraction=1.0)
        assert flink.throughput > spark.throughput


class TestSampledSystems:
    @pytest.mark.parametrize(
        "cls",
        [SparkStreamApproxSystem, FlinkStreamApproxSystem, SparkSRSSystem, SparkSTSSystem],
    )
    def test_runs_and_estimates(self, stream, cls):
        report = run(cls, stream)
        assert report.results
        # Mean query over values dominated by C (~10000): estimates must be
        # in a plausible band around the truth.
        for pane in report.results:
            assert pane.exact is not None
            assert pane.accuracy_loss is not None
            assert pane.accuracy_loss < 0.25

    @pytest.mark.parametrize(
        "cls", [SparkStreamApproxSystem, FlinkStreamApproxSystem]
    )
    def test_streamapprox_samples_roughly_the_fraction(self, stream, cls):
        report = run(cls, stream, fraction=0.4)
        mid_panes = report.results[1:-1]
        for pane in mid_panes:
            achieved = pane.sampled_items / pane.total_items
            assert 0.25 < achieved < 0.6

    def test_error_bounds_cover_truth(self, stream):
        report = run(SparkStreamApproxSystem, stream, fraction=0.3)
        covered = sum(
            1 for p in report.results if p.error is not None and p.error.covers(p.exact)
        )
        assert covered / len(report.results) >= 0.7  # 95% nominal, tiny n

    def test_sampled_systems_faster_than_native(self, stream):
        native = run(NativeSparkSystem, stream, fraction=1.0)
        for cls in (SparkStreamApproxSystem, SparkSRSSystem):
            report = run(cls, stream, fraction=0.1)
            assert report.throughput > native.throughput


class TestPaperOrderings:
    """The qualitative claims of Figures 4, 8, 9 at the 60% operating point."""

    @pytest.fixture(scope="class")
    def reports(self, stream):
        return {name: run(cls, stream) for name, cls in ALL_SYSTEMS.items()}

    def test_flink_streamapprox_fastest(self, reports):
        top = max(reports.values(), key=lambda r: r.throughput)
        assert top.system == "flink-streamapprox"

    def test_sts_slowest(self, reports):
        bottom = min(reports.values(), key=lambda r: r.throughput)
        assert bottom.system == "spark-sts"

    def test_streamapprox_beats_sts_by_papers_factor(self, reports):
        ratio = (
            reports["spark-streamapprox"].throughput
            / reports["spark-sts"].throughput
        )
        assert 1.3 < ratio < 2.6  # paper: 1.68× at 60%

    def test_streamapprox_similar_to_srs(self, reports):
        ratio = reports["spark-streamapprox"].throughput / reports["spark-srs"].throughput
        assert 0.9 < ratio < 1.5  # paper: "similar throughput"

    def test_native_spark_beats_sts(self, reports):
        assert reports["native-spark"].throughput > reports["spark-sts"].throughput

    def test_stratified_more_accurate_than_srs(self, reports):
        srs_loss = reports["spark-srs"].mean_accuracy_loss()
        for name in ("spark-streamapprox", "flink-streamapprox", "spark-sts"):
            assert reports[name].mean_accuracy_loss() < srs_loss

    def test_latency_ordering(self, reports):
        """Fig 10: StreamApprox < SRS < STS in dataset-processing latency."""
        assert (
            reports["spark-streamapprox"].latency
            < reports["spark-srs"].latency
            < reports["spark-sts"].latency
        )


class TestGroupedQuery:
    def test_per_group_estimates(self, stream):
        query = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean", group_fn=KEY)
        report = SparkStreamApproxSystem(query, WINDOW, SystemConfig()).run(stream)
        pane = report.results[1]
        assert set(pane.groups) == {"A", "B", "C"}
        for group, exact in pane.exact_groups.items():
            assert pane.groups[group] == pytest.approx(exact, rel=0.2)

    def test_srs_misses_rare_group(self):
        """On a very skewed stream at a low fraction, SRS can drop stratum C."""
        skewed = stream_by_rates({"A": 20000, "B": 4000, "C": 1}, duration=6, seed=5)
        query = StreamQuery(key_fn=KEY, value_fn=VAL, kind="mean", group_fn=KEY)
        srs = SparkSRSSystem(query, WINDOW, SystemConfig(sampling_fraction=0.02)).run(skewed)
        approx = SparkStreamApproxSystem(
            query, WINDOW, SystemConfig(sampling_fraction=0.02)
        ).run(skewed)
        # OASRS keeps C in every pane; SRS misses it in at least one.
        assert all("C" in p.groups for p in approx.results)
        assert any("C" not in p.groups for p in srs.results)


class TestBatchIntervalEffect:
    def test_smaller_intervals_widen_streamapprox_lead(self, stream):
        """Fig 4c: SA/STS throughput ratio grows as the interval shrinks."""
        ratios = {}
        for interval in (0.25, 1.0):
            sa = run(SparkStreamApproxSystem, stream, batch_interval=interval)
            sts = run(SparkSTSSystem, stream, batch_interval=interval)
            ratios[interval] = sa.throughput / sts.throughput
        assert ratios[0.25] > ratios[1.0]


class TestScalability:
    def test_more_nodes_increase_throughput(self, stream):
        one = run(SparkStreamApproxSystem, stream, nodes=1)
        three = run(SparkStreamApproxSystem, stream, nodes=3)
        assert three.throughput > one.throughput

    def test_sts_scales_worse_than_streamapprox(self, stream):
        """Fig 6a: STS's barriers erode its scaling."""
        def scaling(cls):
            r1 = run(cls, stream, fraction=0.4, nodes=1)
            r3 = run(cls, stream, fraction=0.4, nodes=3)
            return r3.throughput / r1.throughput

        assert scaling(SparkStreamApproxSystem) > scaling(SparkSTSSystem)
