"""Shared fixture for the cross-system golden-equivalence suite.

Defines the fixed workload, queries, and configurations the golden
reference (``tests/golden/systems_golden.json``) was captured with, plus
the fingerprinting that flattens a `SystemReport` into JSON-comparable
numbers.  Used by both the capture script (``tests/golden/capture_golden.py``)
and the regression test (``tests/test_golden_equivalence.py``).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterator, List, Tuple

from repro.system import (
    FlinkStreamApproxSystem,
    NativeFlinkSystem,
    NativeSparkSystem,
    NativeStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from repro.core.records import item_key, item_value
from repro.workloads.synthetic import stream_by_rates

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "systems_golden.json")

WINDOW = WindowConfig(length=10.0, slide=5.0)

_SEVEN = [
    NativeSparkSystem,
    NativeFlinkSystem,
    NativeStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
]

# Systems whose chunked execution predates the unified runtime; their
# chunk_size > 1 output is part of the golden contract too.
_CHUNKED = [
    NativeFlinkSystem,
    NativeStreamApproxSystem,
    SparkStreamApproxSystem,
    FlinkStreamApproxSystem,
]


def golden_stream() -> List[Tuple[float, object]]:
    """Skewed three-strata stream, small enough for a fast test run."""
    return stream_by_rates({"A": 800, "B": 200, "C": 20}, duration=12, seed=7)


def golden_query(grouped: bool = False) -> StreamQuery:
    # Canonical projections: their identity is what arms the runtime's
    # columnar path, so the golden suite exercises it by default.
    return StreamQuery(
        key_fn=item_key,
        value_fn=item_value,
        kind="mean",
        group_fn=item_key if grouped else None,
        name="golden-mean",
    )


def golden_config(**overrides) -> SystemConfig:
    base = dict(sampling_fraction=0.5, seed=42)
    base.update(overrides)
    return SystemConfig(**base)


def report_fingerprint(report) -> Dict[str, object]:
    """Flatten a `SystemReport` to plain JSON-comparable numbers."""
    panes = []
    for r in report.results:
        panes.append(
            {
                "end": r.end,
                "estimate": r.estimate,
                "exact": r.exact,
                "margin": r.error.margin if r.error is not None else None,
                "groups": {str(g): v for g, v in sorted(r.groups.items())},
                "sampled_items": r.sampled_items,
                "total_items": r.total_items,
                "accuracy_loss": r.accuracy_loss,
            }
        )
    return {
        "system": report.system,
        "items_total": report.items_total,
        "virtual_seconds": report.virtual_seconds,
        "mean_accuracy_loss": report.mean_accuracy_loss(),
        "panes": panes,
    }


def golden_cases(**config_overrides) -> Iterator[Tuple[str, Callable[[], object]]]:
    """Yield (case name, runner) pairs covering all seven systems.

    Per-item execution for every system; the pre-existing chunked paths at
    chunk_size=256; a grouped query through each engine family's
    StreamApprox variant.  ``config_overrides`` apply on top of every
    case's config (the telemetry-neutrality suite re-runs the whole matrix
    with ``telemetry=TelemetryConfig()``).
    """
    stream = golden_stream()

    def runner(cls, query, config):
        return lambda: cls(query, WINDOW, config).run(stream)

    for cls in _SEVEN:
        yield cls.name, runner(cls, golden_query(), golden_config(**config_overrides))
    for cls in _CHUNKED:
        yield (
            f"{cls.name}@chunk256",
            runner(cls, golden_query(), golden_config(chunk_size=256, **config_overrides)),
        )
    for cls in (SparkStreamApproxSystem, FlinkStreamApproxSystem, NativeStreamApproxSystem):
        yield (
            f"{cls.name}@grouped",
            runner(cls, golden_query(grouped=True), golden_config(**config_overrides)),
        )
