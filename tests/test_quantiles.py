"""Tests for weighted quantiles and heavy hitters over OASRS samples."""

import random

import pytest

from repro.core.oasrs import oasrs_sample
from repro.core.quantiles import (
    approximate_median,
    approximate_quantile,
    heavy_hitters,
)
from repro.core.strata import StratumSample, WeightedSample

KEY = lambda it: it[0]  # noqa: E731
VAL = lambda it: it[1]  # noqa: E731


def full_sample(values, key="s"):
    ws = WeightedSample()
    ws.add(StratumSample(key, tuple(values), len(values), 1.0))
    return ws


class TestQuantileValidation:
    def test_q_bounds(self):
        ws = full_sample([1.0, 2.0])
        with pytest.raises(ValueError):
            approximate_quantile(ws, 0.0)
        with pytest.raises(ValueError):
            approximate_quantile(ws, 1.0)

    def test_confidence_bounds(self):
        ws = full_sample([1.0])
        with pytest.raises(ValueError):
            approximate_quantile(ws, 0.5, confidence=1.0)

    def test_empty_sample(self):
        with pytest.raises(ValueError):
            approximate_quantile(WeightedSample(), 0.5)


class TestQuantileEstimates:
    def test_exact_on_fully_kept_sample(self):
        ws = full_sample([float(v) for v in range(1, 101)])
        est = approximate_median(ws)
        assert est.value == pytest.approx(50.0, abs=1.0)
        assert est.lower <= est.value <= est.upper

    def test_quantile_monotone_in_q(self):
        ws = full_sample([float(v) for v in range(1000)])
        q25 = approximate_quantile(ws, 0.25).value
        q75 = approximate_quantile(ws, 0.75).value
        assert q25 < q75

    def test_weighted_median_respects_weights(self):
        """One heavy item outweighs many light ones."""
        ws = WeightedSample()
        ws.add(StratumSample("light", tuple([1.0] * 10), 10, 1.0))
        ws.add(StratumSample("heavy", (100.0,), 50, 50.0))
        est = approximate_median(ws)
        assert est.value == 100.0  # 50 of 60 weighted points are 100

    def test_interval_covers_truth_on_sampled_stream(self):
        rng = random.Random(0)
        values = sorted(rng.gauss(0, 1) for _ in range(20_000))
        true_median = values[10_000]
        covered = 0
        for seed in range(25):
            items = [("s", v) for v in values]
            sample = oasrs_sample(items, 800, key_fn=KEY, rng=random.Random(seed))
            est = approximate_median(sample, VAL, confidence=0.95)
            covered += est.lower <= true_median <= est.upper
        assert covered >= 22  # DKW is conservative; expect ≥ 95% coverage

    def test_interval_tightens_with_sample_size(self):
        rng = random.Random(1)
        items = [("s", rng.uniform(0, 100)) for _ in range(50_000)]
        small = approximate_median(
            oasrs_sample(items, 100, key_fn=KEY, rng=random.Random(2)), VAL
        )
        large = approximate_median(
            oasrs_sample(items, 5000, key_fn=KEY, rng=random.Random(3)), VAL
        )
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_effective_n_discounts_unequal_weights(self):
        equal = full_sample([1.0] * 100)
        skewed = WeightedSample()
        skewed.add(StratumSample("a", tuple([1.0] * 50), 50, 1.0))
        skewed.add(StratumSample("b", tuple([2.0] * 50), 5000, 100.0))
        est_equal = approximate_median(equal)
        est_skewed = approximate_median(skewed)
        assert est_skewed.effective_n < est_equal.effective_n


class TestHeavyHitters:
    def _sample_with_counts(self, counts, capacity=400, seed=4):
        items = []
        for key, n in counts.items():
            items.extend(("s", key) for _ in range(n))
        random.Random(seed).shuffle(items)
        return oasrs_sample(items, capacity, key_fn=KEY, rng=random.Random(seed + 1))

    def test_threshold_validation(self):
        ws = full_sample(["a"])
        with pytest.raises(ValueError):
            heavy_hitters(ws, key_fn=lambda x: x, threshold=0.0)

    def test_empty_sample(self):
        assert heavy_hitters(WeightedSample(), key_fn=lambda x: x) == []

    def test_finds_frequent_keys(self):
        counts = {"hot": 6000, "warm": 3000, "cold1": 500, "cold2": 500}
        sample = self._sample_with_counts(counts)
        hitters = heavy_hitters(sample, key_fn=lambda it: it[1], threshold=0.2)
        names = [h.key for h in hitters]
        assert names[0] == "hot"
        assert "warm" in names
        assert "cold1" not in names and "cold2" not in names

    def test_counts_near_truth(self):
        counts = {"hot": 6000, "warm": 3000, "cold": 1000}
        sample = self._sample_with_counts(counts)
        for hitter in heavy_hitters(sample, key_fn=lambda it: it[1], threshold=0.05):
            assert abs(hitter.estimated_count - counts[hitter.key]) < 0.25 * counts[hitter.key]

    def test_sorted_descending(self):
        counts = {"a": 5000, "b": 3000, "c": 2000}
        sample = self._sample_with_counts(counts)
        hitters = heavy_hitters(sample, key_fn=lambda it: it[1], threshold=0.05)
        estimates = [h.estimated_count for h in hitters]
        assert estimates == sorted(estimates, reverse=True)

    def test_share_and_interval(self):
        counts = {"a": 9000, "b": 1000}
        sample = self._sample_with_counts(counts)
        top = heavy_hitters(sample, key_fn=lambda it: it[1], threshold=0.5)[0]
        assert top.share == pytest.approx(0.9, abs=0.1)
        lo, hi = top.interval
        assert lo <= top.estimated_count <= hi
