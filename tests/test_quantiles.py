"""Tests for weighted quantiles and heavy hitters over OASRS samples."""

import random

import pytest

from repro.core.oasrs import oasrs_sample
from repro.core.quantiles import (
    approximate_median,
    approximate_quantile,
    heavy_hitters,
)
from repro.core.strata import StratumSample, WeightedSample

KEY = lambda it: it[0]  # noqa: E731
VAL = lambda it: it[1]  # noqa: E731


def full_sample(values, key="s"):
    ws = WeightedSample()
    ws.add(StratumSample(key, tuple(values), len(values), 1.0))
    return ws


class TestQuantileValidation:
    def test_q_bounds(self):
        ws = full_sample([1.0, 2.0])
        with pytest.raises(ValueError):
            approximate_quantile(ws, 0.0)
        with pytest.raises(ValueError):
            approximate_quantile(ws, 1.0)

    def test_confidence_bounds(self):
        ws = full_sample([1.0])
        with pytest.raises(ValueError):
            approximate_quantile(ws, 0.5, confidence=1.0)

    def test_empty_sample(self):
        with pytest.raises(ValueError):
            approximate_quantile(WeightedSample(), 0.5)


class TestQuantileEstimates:
    def test_exact_on_fully_kept_sample(self):
        ws = full_sample([float(v) for v in range(1, 101)])
        est = approximate_median(ws)
        assert est.value == pytest.approx(50.0, abs=1.0)
        assert est.lower <= est.value <= est.upper

    def test_quantile_monotone_in_q(self):
        ws = full_sample([float(v) for v in range(1000)])
        q25 = approximate_quantile(ws, 0.25).value
        q75 = approximate_quantile(ws, 0.75).value
        assert q25 < q75

    def test_weighted_median_respects_weights(self):
        """One heavy item outweighs many light ones."""
        ws = WeightedSample()
        ws.add(StratumSample("light", tuple([1.0] * 10), 10, 1.0))
        ws.add(StratumSample("heavy", (100.0,), 50, 50.0))
        est = approximate_median(ws)
        assert est.value == 100.0  # 50 of 60 weighted points are 100

    def test_interval_covers_truth_on_sampled_stream(self):
        rng = random.Random(0)
        values = sorted(rng.gauss(0, 1) for _ in range(20_000))
        true_median = values[10_000]
        covered = 0
        for seed in range(25):
            items = [("s", v) for v in values]
            sample = oasrs_sample(items, 800, key_fn=KEY, rng=random.Random(seed))
            est = approximate_median(sample, VAL, confidence=0.95)
            covered += est.lower <= true_median <= est.upper
        assert covered >= 22  # DKW is conservative; expect ≥ 95% coverage

    def test_interval_tightens_with_sample_size(self):
        rng = random.Random(1)
        items = [("s", rng.uniform(0, 100)) for _ in range(50_000)]
        small = approximate_median(
            oasrs_sample(items, 100, key_fn=KEY, rng=random.Random(2)), VAL
        )
        large = approximate_median(
            oasrs_sample(items, 5000, key_fn=KEY, rng=random.Random(3)), VAL
        )
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_effective_n_discounts_unequal_weights(self):
        equal = full_sample([1.0] * 100)
        skewed = WeightedSample()
        skewed.add(StratumSample("a", tuple([1.0] * 50), 50, 1.0))
        skewed.add(StratumSample("b", tuple([2.0] * 50), 5000, 100.0))
        est_equal = approximate_median(equal)
        est_skewed = approximate_median(skewed)
        assert est_skewed.effective_n < est_equal.effective_n


class TestHeavyHitters:
    def _sample_with_counts(self, counts, capacity=400, seed=4):
        items = []
        for key, n in counts.items():
            items.extend(("s", key) for _ in range(n))
        random.Random(seed).shuffle(items)
        return oasrs_sample(items, capacity, key_fn=KEY, rng=random.Random(seed + 1))

    def test_threshold_validation(self):
        ws = full_sample(["a"])
        with pytest.raises(ValueError):
            heavy_hitters(ws, key_fn=lambda x: x, threshold=0.0)

    def test_empty_sample(self):
        assert heavy_hitters(WeightedSample(), key_fn=lambda x: x) == []

    def test_finds_frequent_keys(self):
        counts = {"hot": 6000, "warm": 3000, "cold1": 500, "cold2": 500}
        sample = self._sample_with_counts(counts)
        hitters = heavy_hitters(sample, key_fn=lambda it: it[1], threshold=0.2)
        names = [h.key for h in hitters]
        assert names[0] == "hot"
        assert "warm" in names
        assert "cold1" not in names and "cold2" not in names

    def test_counts_near_truth(self):
        counts = {"hot": 6000, "warm": 3000, "cold": 1000}
        sample = self._sample_with_counts(counts)
        for hitter in heavy_hitters(sample, key_fn=lambda it: it[1], threshold=0.05):
            assert abs(hitter.estimated_count - counts[hitter.key]) < 0.25 * counts[hitter.key]

    def test_sorted_descending(self):
        counts = {"a": 5000, "b": 3000, "c": 2000}
        sample = self._sample_with_counts(counts)
        hitters = heavy_hitters(sample, key_fn=lambda it: it[1], threshold=0.05)
        estimates = [h.estimated_count for h in hitters]
        assert estimates == sorted(estimates, reverse=True)

    def test_share_and_interval(self):
        counts = {"a": 9000, "b": 1000}
        sample = self._sample_with_counts(counts)
        top = heavy_hitters(sample, key_fn=lambda it: it[1], threshold=0.5)[0]
        assert top.share == pytest.approx(0.9, abs=0.1)
        lo, hi = top.interval
        assert lo <= top.estimated_count <= hi


class TestDKWBound:
    def _bound(self, values, q=0.5):
        from repro.core.quantiles import quantile_bound

        return quantile_bound(approximate_quantile(full_sample(values), q))

    def test_duck_types_error_bound_surface(self):
        bound = self._bound([float(v) for v in range(1, 101)])
        lower, upper = bound.interval
        assert lower <= bound.value <= upper
        assert bound.margin == max(bound.value - lower, upper - bound.value)
        assert bound.variance == pytest.approx(bound.margin**2)
        assert bound.stddev == pytest.approx(bound.margin)
        assert bound.covers(bound.value)
        assert not bound.covers(upper + 1.0)
        assert "DKW" in str(bound) and "q=0.5" in str(bound)

    def test_relative_margin(self):
        bound = self._bound([float(v) for v in range(1, 101)])
        assert bound.relative_margin == pytest.approx(bound.margin / bound.value)

    def test_tightens_with_sample_size(self):
        small = self._bound([float(v) for v in range(1, 51)])
        large = self._bound([float(v) for v in range(1, 2001)])
        assert large.relative_margin < small.relative_margin


class TestQuantileQueryKind:
    """`kind='quantile'` as a first-class runtime query across engines."""

    def _plan(self, engine, q=0.5, fraction=1.0, seed=3):
        from repro.runtime import (
            StreamQuery,
            SystemConfig,
            WindowConfig,
            build_plan,
        )
        from repro.runtime.source import as_source
        from repro.workloads.synthetic import stream_by_rates

        stream = as_source(
            stream_by_rates({"A": 400, "B": 100}, duration=12, seed=7)
        )
        query = StreamQuery(kind="quantile", q=q, name=f"p{int(q*100)}")
        return build_plan(
            query,
            WindowConfig(),
            SystemConfig(sampling_fraction=fraction, seed=seed),
            engine=engine,
            strategy="oasrs",
            source=stream,
        )

    def test_query_validation(self):
        from repro.runtime import StreamQuery

        with pytest.raises(ValueError):
            StreamQuery(kind="quantile", q=1.0)
        with pytest.raises(ValueError):
            StreamQuery(kind="quantile", q=0.0)
        with pytest.raises(ValueError):
            StreamQuery(kind="quantile", group_fn=lambda it: it[0])

    def _truth_joined(self, plan):
        from repro.runtime import execute_plan
        from repro.runtime.report import exact_panes, join_ground_truth

        results, _cluster = execute_plan(plan)
        truth = exact_panes(plan.source.events(), plan.query, plan.window)
        return join_ground_truth(results, truth)

    @pytest.mark.parametrize("engine", ["direct", "batched", "pipelined"])
    def test_dkw_interval_brackets_exact_per_pane(self, engine):
        for q, fraction in ((0.5, 1.0), (0.9, 0.5), (0.75, 0.4)):
            joined = self._truth_joined(self._plan(engine, q=q, fraction=fraction))
            assert joined
            for pane in joined:
                if not pane.total_items:
                    continue
                assert pane.error.q == q  # the DKW bracket carries its rank
                lower, upper = pane.error.interval
                assert lower <= pane.estimate <= upper
                assert lower <= pane.exact <= upper
                # The approximation is tight, not just bracketed.
                assert abs(pane.estimate - pane.exact) <= 0.05 * abs(pane.exact)

    @pytest.mark.parametrize("engine", ["direct", "batched", "pipelined"])
    def test_quantile_kind_is_deterministic(self, engine):
        from repro.runtime import execute_plan

        first, _ = execute_plan(self._plan(engine, q=0.75, fraction=0.4))
        second, _ = execute_plan(self._plan(engine, q=0.75, fraction=0.4))
        assert first == second
