"""Capture the golden cross-system reference outputs.

Runs every system over the fixed golden workload/seed and writes
``systems_golden.json``.  The checked-in copy was produced by the
*pre-runtime-refactor* implementations (the per-system ``_execute`` loops);
``tests/test_golden_equivalence.py`` asserts the unified runtime still
reproduces it number for number.

Regenerate only when an intentional statistical change lands::

    PYTHONPATH=src python tests/golden/capture_golden.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from golden_config import (  # noqa: E402
    GOLDEN_PATH,
    golden_cases,
    report_fingerprint,
)


def main() -> None:
    payload = {name: report_fingerprint(run()) for name, run in golden_cases()}
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    print(f"wrote {len(payload)} cases to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
