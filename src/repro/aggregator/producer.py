"""Producer side of the stream aggregator.

A `Producer` appends records to a topic; `SubStreamProducer` is the shape
the paper's Figure 1 shows — one producer per sub-stream source, stamping
every record with the sub-stream's key so stratification downstream can
recover the source.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Optional, Tuple, TypeVar

from .broker import Broker

T = TypeVar("T")

__all__ = ["Producer", "SubStreamProducer"]


class Producer(Generic[T]):
    """Appends keyed, timestamped records to one topic."""

    def __init__(self, broker: Broker, topic: str) -> None:
        self._topic = broker.topic(topic)
        self.sent = 0

    def send(self, timestamp: float, value: T, key: Optional[Hashable] = None) -> int:
        offset = self._topic.append(timestamp, key, value)
        self.sent += 1
        return offset

    def send_all(self, records: Iterable[Tuple[float, T]], key: Optional[Hashable] = None) -> int:
        count = 0
        for timestamp, value in records:
            self.send(timestamp, value, key=key)
            count += 1
        return count


class SubStreamProducer(Producer[T]):
    """A producer bound to one sub-stream source (stratum).

    Every record carries the source id as its key, which both routes the
    sub-stream to a stable partition and lets consumers stratify by key.
    """

    def __init__(self, broker: Broker, topic: str, source_id: Hashable) -> None:
        super().__init__(broker, topic)
        self.source_id = source_id

    def send(self, timestamp: float, value: T, key: Optional[Hashable] = None) -> int:
        if key is not None and key != self.source_id:
            raise ValueError(
                f"sub-stream producer for {self.source_id!r} cannot send "
                f"with key {key!r}"
            )
        return super().send(timestamp, value, key=self.source_id)
