"""The Kafka-like stream aggregator substrate (Figure 1)."""

from .broker import Broker, Partition, Record, Topic
from .consumer import Consumer
from .groups import ConsumerGroup, GroupMember
from .producer import Producer, SubStreamProducer
from .replay import ReplayTool, interleave_substreams

__all__ = [
    "Broker",
    "Consumer",
    "ConsumerGroup",
    "GroupMember",
    "Partition",
    "Producer",
    "Record",
    "ReplayTool",
    "SubStreamProducer",
    "Topic",
    "interleave_substreams",
]
