"""Consumer groups for the stream aggregator (Kafka semantics subset).

The distributed systems in `repro.core.distributed` assume the input
stream is partitioned over workers; consumer groups are how Kafka realises
that: each group member is assigned a disjoint subset of a topic's
partitions, every record is delivered to exactly one member per group, and
a member joining or leaving triggers a *rebalance* that reassigns
partitions (range assignment, as in Kafka's default).

Offsets are tracked per group (not per member), so rebalances never lose
or duplicate records at the granularity the tests check.
"""

from __future__ import annotations

from typing import Dict, Generic, List, Optional, TypeVar

from .broker import Broker, Record

T = TypeVar("T")

__all__ = ["ConsumerGroup", "GroupMember"]


class ConsumerGroup(Generic[T]):
    """Coordinates partition assignment + group offsets for one topic."""

    def __init__(self, broker: Broker, topic: str, group_id: str) -> None:
        self._topic = broker.topic(topic)
        self.group_id = group_id
        self._members: List["GroupMember[T]"] = []
        self._offsets: Dict[int, int] = {
            p.index: 0 for p in self._topic.partitions
        }
        self._generation = 0

    @property
    def generation(self) -> int:
        """Rebalance counter: bumps on every join/leave."""
        return self._generation

    @property
    def members(self) -> List["GroupMember[T]"]:
        return list(self._members)

    def join(self) -> "GroupMember[T]":
        member: GroupMember[T] = GroupMember(self, len(self._members))
        self._members.append(member)
        self._rebalance()
        return member

    def leave(self, member: "GroupMember[T]") -> None:
        if member not in self._members:
            raise ValueError("member is not part of this group")
        self._members.remove(member)
        member._assigned = []
        self._rebalance()

    def _rebalance(self) -> None:
        """Range assignment: contiguous partition slices per member."""
        self._generation += 1
        partitions = [p.index for p in self._topic.partitions]
        n = len(self._members)
        if n == 0:
            return
        base, extra = divmod(len(partitions), n)
        start = 0
        for i, member in enumerate(self._members):
            take = base + (1 if i < extra else 0)
            member._assigned = partitions[start:start + take]
            start += take

    # -- group-offset fetch --------------------------------------------------

    def _poll_partition(self, index: int, max_records: Optional[int]) -> List[Record[T]]:
        partition = self._topic.partitions[index]
        records = partition.fetch(self._offsets[index], max_records)
        if records:
            self._offsets[index] = records[-1].offset + 1
        return records

    def seek_to_beginning(self) -> None:
        """Reset the group's committed offsets to the start of every partition."""
        self._offsets = {p.index: 0 for p in self._topic.partitions}

    def lag(self) -> int:
        """Records not yet delivered to this group."""
        return sum(
            self._topic.partitions[i].end_offset - off
            for i, off in self._offsets.items()
        )


class GroupMember(Generic[T]):
    """One consumer inside a group, reading only its assigned partitions."""

    def __init__(self, group: ConsumerGroup[T], member_id: int) -> None:
        self._group = group
        self.member_id = member_id
        self._assigned: List[int] = []

    @property
    def assignment(self) -> List[int]:
        return list(self._assigned)

    def poll(self, max_records: Optional[int] = None) -> List[Record[T]]:
        """Fetch new records from the member's partitions, timestamp-merged."""
        out: List[Record[T]] = []
        remaining = max_records
        for index in self._assigned:
            records = self._group._poll_partition(index, remaining)
            out.extend(records)
            if remaining is not None:
                remaining -= len(records)
                if remaining <= 0:
                    break
        out.sort(key=lambda r: (r.timestamp, r.seq))
        return out

    def close(self) -> None:
        self._group.leave(self)
