"""In-memory stream aggregator — the Kafka-like substrate (Figure 1).

The paper uses Apache Kafka to combine disjoint sub-streams into the single
input stream StreamApprox consumes.  This module provides the same shape:
a `Broker` hosts named *topics*, each split into *partitions*; producers
append timestamped records to a partition chosen by a key hash (so one
sub-stream's records stay ordered within its partition); consumers fetch
from per-partition *offsets*.

Only at-most-once, in-memory semantics are implemented — durability and
replication are irrelevant to the paper's evaluation, which replays finite
datasets through the aggregator into the analytics systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Hashable, List, Optional, TypeVar

T = TypeVar("T")

__all__ = ["Record", "Partition", "Topic", "Broker"]


@dataclass(frozen=True)
class Record(Generic[T]):
    """One timestamped record, as stored in a partition log.

    ``seq`` is the topic-global production sequence number (this broker is
    a single in-memory node, so a total production order exists); consumers
    use it to break ties between records sharing a timestamp, recovering
    the exact production order across partitions.
    """

    offset: int
    timestamp: float
    key: Optional[Hashable]
    value: T
    seq: int = 0


class Partition(Generic[T]):
    """An append-only log with integer offsets."""

    def __init__(self, index: int) -> None:
        self.index = index
        self._log: List[Record[T]] = []

    def append(
        self, timestamp: float, key: Optional[Hashable], value: T, seq: int = 0
    ) -> int:
        offset = len(self._log)
        self._log.append(Record(offset, timestamp, key, value, seq))
        return offset

    def fetch(self, offset: int, max_records: Optional[int] = None) -> List[Record[T]]:
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        end = len(self._log) if max_records is None else offset + max_records
        return self._log[offset:end]

    @property
    def end_offset(self) -> int:
        return len(self._log)

    def __len__(self) -> int:
        return len(self._log)


class Topic(Generic[T]):
    """A named set of partitions with hash-by-key routing."""

    def __init__(self, name: str, num_partitions: int = 1) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.name = name
        self.partitions: List[Partition[T]] = [
            Partition(i) for i in range(num_partitions)
        ]
        self._round_robin = 0
        self._seq = 0

    def partition_for(self, key: Optional[Hashable]) -> Partition[T]:
        if key is None:
            p = self.partitions[self._round_robin % len(self.partitions)]
            self._round_robin += 1
            return p
        return self.partitions[hash(key) % len(self.partitions)]

    def append(self, timestamp: float, key: Optional[Hashable], value: T) -> int:
        seq = self._seq
        self._seq += 1
        return self.partition_for(key).append(timestamp, key, value, seq)

    @property
    def total_records(self) -> int:
        return sum(len(p) for p in self.partitions)


class Broker(Generic[T]):
    """The aggregator node: topic registry."""

    def __init__(self) -> None:
        self._topics: Dict[str, Topic[T]] = {}

    def create_topic(self, name: str, num_partitions: int = 1) -> Topic[T]:
        if name in self._topics:
            raise KeyError(f"topic {name!r} already exists")
        topic: Topic[T] = Topic(name, num_partitions)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic[T]:
        try:
            return self._topics[name]
        except KeyError:
            raise KeyError(f"unknown topic {name!r}") from None

    def has_topic(self, name: str) -> bool:
        return name in self._topics

    def topics(self) -> List[str]:
        return sorted(self._topics)
