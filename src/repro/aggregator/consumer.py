"""Consumer side of the stream aggregator.

A `Consumer` reads one topic across all its partitions, merging records in
timestamp order (the aggregated stream of Figure 1) and tracking a
per-partition offset so repeated ``poll`` calls resume where they left off.
"""

from __future__ import annotations

import heapq
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from .broker import Broker, Record

T = TypeVar("T")

__all__ = ["Consumer"]


class Consumer(Generic[T]):
    """Reads a topic's partitions as one merged, time-ordered stream."""

    def __init__(self, broker: Broker, topic: str) -> None:
        self._topic = broker.topic(topic)
        self._offsets: List[int] = [0] * len(self._topic.partitions)

    @property
    def lag(self) -> int:
        """Records appended but not yet consumed."""
        return sum(
            p.end_offset - off
            for p, off in zip(self._topic.partitions, self._offsets)
        )

    def poll(self, max_records: Optional[int] = None) -> List[Record[T]]:
        """Fetch up to ``max_records`` new records, merged by timestamp.

        Ties on the timestamp break on the record's topic-global production
        sequence number, so the merged stream is the production order even
        when timestamps collide across partitions.
        """
        heap: List[Tuple[float, int, int, int, Record[T]]] = []
        fetched: List[List[Record[T]]] = []
        for i, partition in enumerate(self._topic.partitions):
            records = partition.fetch(self._offsets[i], max_records)
            fetched.append(records)
            if records:
                first = records[0]
                heapq.heappush(heap, (first.timestamp, first.seq, i, 0, first))

        out: List[Record[T]] = []
        cursors = [0] * len(fetched)
        while heap and (max_records is None or len(out) < max_records):
            _ts, _seq, i, j, record = heapq.heappop(heap)
            out.append(record)
            self._offsets[i] = record.offset + 1
            cursors[i] = j + 1
            if cursors[i] < len(fetched[i]):
                nxt = fetched[i][cursors[i]]
                heapq.heappush(heap, (nxt.timestamp, nxt.seq, i, cursors[i], nxt))
        return out

    def stream(self) -> Iterator[Tuple[float, T]]:
        """Drain everything currently in the topic as (timestamp, value)."""
        for record in self.poll():
            yield record.timestamp, record.value

    def seek_to_beginning(self) -> None:
        self._offsets = [0] * len(self._topic.partitions)
