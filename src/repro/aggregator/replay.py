"""Traffic replay tool (§6.1 "Methodology").

The paper built a tool that replays a case-study dataset as an input
stream, feeding N messages/second (200 data items per message) and ramping
the rate up until the evaluated system saturates.  `ReplayTool` reproduces
that: given per-sub-stream item iterables and per-sub-stream rates
(items/second), it synthesises the interleaved timestamped stream, either
directly or through a `Broker` topic.

Timestamps are deterministic (uniform inter-arrival per sub-stream), so
experiments are exactly repeatable; stochastic arrival processes live in
`repro.workloads.synthetic`, which generates *items* — the replayer only
assigns *time*.
"""

from __future__ import annotations

import heapq
from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Tuple, TypeVar

from .broker import Broker
from .producer import SubStreamProducer

T = TypeVar("T")

__all__ = ["ReplayTool", "interleave_substreams"]


def interleave_substreams(
    substreams: Dict[Hashable, Tuple[float, Iterable[T]]],
    start: float = 0.0,
) -> Iterator[Tuple[float, T]]:
    """Merge sub-streams into one time-ordered stream.

    ``substreams`` maps source id → (rate items/s, items).  Each sub-stream
    emits at uniform intervals ``1/rate`` starting at ``start``; the merge
    is a heap by next-emission time, breaking ties by source id insertion
    order so runs are deterministic.
    """
    # Heap entries: (next_emission_time, tie_break_order, pending_value).
    iterators: Dict[int, Iterator[T]] = {}
    periods: Dict[int, float] = {}
    heap: List[Tuple[float, int, T]] = []
    for order, (source, (rate, items)) in enumerate(substreams.items()):
        if rate <= 0:
            raise ValueError(f"sub-stream {source!r} rate must be positive, got {rate}")
        it = iter(items)
        try:
            first = next(it)
        except StopIteration:
            continue
        period = 1.0 / rate
        iterators[order] = it
        periods[order] = period
        heapq.heappush(heap, (start + period, order, first))

    while heap:
        timestamp, order, value = heapq.heappop(heap)
        yield timestamp, value
        try:
            nxt = next(iterators[order])
        except StopIteration:
            continue
        heapq.heappush(heap, (timestamp + periods[order], order, nxt))


class ReplayTool(Generic[T]):
    """Replay sub-streams through the aggregator at configured rates."""

    def __init__(self, broker: Broker, topic: str, num_partitions: int = 4) -> None:
        self.broker = broker
        self.topic = topic
        if not broker.has_topic(topic):
            broker.create_topic(topic, num_partitions)

    def replay(
        self,
        substreams: Dict[Hashable, Tuple[float, Iterable[T]]],
        start: float = 0.0,
    ) -> int:
        """Push every sub-stream item into the topic; return items sent.

        Items are tagged with their source id as the record key, preserving
        stratification through the aggregator.
        """
        producers = {
            source: SubStreamProducer(self.broker, self.topic, source)
            for source in substreams
        }
        def tag(source, items):
            # Bind `source` per sub-stream (a bare genexp in the dict
            # comprehension would late-bind to the last loop value).
            return ((source, item) for item in items)

        tagged = {
            source: (rate, tag(source, items))
            for source, (rate, items) in substreams.items()
        }
        sent = 0
        for timestamp, (source, item) in interleave_substreams(tagged, start=start):
            producers[source].send(timestamp, item)
            sent += 1
        return sent
