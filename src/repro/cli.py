"""Command-line interface for quick experiments.

Run single comparisons without writing a script::

    python -m repro compare --workload gaussian --fraction 0.6
    python -m repro compare --workload netflow --systems spark-streamapprox spark-sts
    python -m repro sweep --workload taxi --metric accuracy_loss
    python -m repro systems

Subcommands:

* ``systems`` — list the available systems (the paper's six plus the
  chunked/sharded ``native-streamapprox`` executor),
* ``compare`` — run chosen systems once at one sampling fraction and print
  throughput / accuracy / latency plus an ASCII bar chart,
* ``sweep`` — sweep the sampling fraction and print the resulting figure
  table and an ASCII line chart.

``--chunk-size K`` routes items through the vectorized chunk path and
``--parallelism N`` shards interval sampling over N real processes; both
apply to *every* system through the unified runtime.  Combinations the
planner cannot support (e.g. ``--parallelism`` with ``spark-srs``, whose
sampling needs the whole batch) exit with a clear error instead of being
silently ignored.  ``--via-broker`` replays the workload through the
in-memory Kafka-style aggregator first and feeds every system from a
consumer group over the topic's partitions.

Instead of a fixed ``--fraction``, a *query budget* turns on the paper's
§4.2 adaptive loop — the sample size then re-derives every interval from
the observed statistics (at most one of):

* ``--target-margin M`` — accuracy budget: hold the CI half-width ≤ M,
* ``--latency-budget S`` — token-cost latency budget: fit each interval
  into S seconds,
* ``--cores-budget N``  — resource budget: stay within N cores.

Budget runs print the per-interval adaptation trajectory (sample budget
chosen vs. margin measured).  The ``drift`` workload (a rate swap between
sub-streams mid-run) is the natural stress test:
``python -m repro compare --workload drift --target-margin 0.5``.

Fault tolerance is exposed the same way: ``--checkpoint-every K`` snapshots
each sampled system's sampler/controller state every K panes,
``compare --resume`` then resumes every system from its latest checkpoint
and verifies the remaining panes match the uninterrupted run, and
``--kill-shard W@I[:FRAC]`` (repeatable, needs ``--parallelism >= 2``)
injects a worker loss into the sharded sampling path — the run recovers by
discard-and-rewiden and reports the per-pane recovery events::

    python -m repro compare --systems native-streamapprox \
        --parallelism 4 --kill-shard 1@2 --checkpoint-every 1 --resume

The CLI is a thin veneer over the same public API the benchmarks use; it
exists so a fresh checkout can produce paper-shaped numbers in one line.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from .aggregator.broker import Broker
from .aggregator.producer import Producer
from .core.budget import AccuracyBudget, LatencyBudget, ResourceBudget
from .core.recovery import FaultSchedule, ShardKill
from .metrics.adaptation import format_trajectory
from .metrics.ascii_chart import bar_chart, line_chart
from .metrics.collector import ExperimentCollector
from .obs import TelemetryConfig, write_chrome_trace
from .runtime import CheckpointPolicy, PlanError, TopicSource
from .system import (
    ALL_SYSTEMS,
    NativeStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from .workloads.drift import drifting_stream, rate_swap_schedule
from .workloads.netflow import flow_bytes, flow_protocol, netflow_stream
from .workloads.synthetic import stream_by_rates
from .workloads.taxi import ride_borough, ride_distance, taxi_stream

__all__ = ["main", "build_parser", "make_workload"]

# The paper's six plus this repo's chunked/sharded native executor.
_CLI_SYSTEMS = {**ALL_SYSTEMS, NativeStreamApproxSystem.name: NativeStreamApproxSystem}
_DEFAULT_SYSTEMS = list(ALL_SYSTEMS)
# Systems that process everything — the sampling fraction does not apply.
_UNSAMPLED = {"native-spark", "native-flink"}


def make_workload(name: str, rate: float, duration: float, seed: int):
    """Return (stream, query) for a named workload."""
    if name == "gaussian":
        stream = stream_by_rates(
            {"A": rate * 0.8, "B": rate * 0.19, "C": rate * 0.01},
            duration=duration,
            seed=seed,
        )
        query = StreamQuery(
            key_fn=lambda it: it[0], value_fn=lambda it: it[1], kind="mean",
            name="window-mean",
        )
    elif name == "drift":
        # Rate swap halfway through the run: A dominates, then C does — the
        # §1 adaptivity scenario, and the stress test for budget-driven runs.
        # All three sub-streams scale with --rate (same 80/19/1 shares as the
        # gaussian workload), so the aggregate rate and the dominance swap
        # hold at any --rate.
        stream = drifting_stream(
            rate_swap_schedule(
                high=rate * 0.8, low=rate * 0.01,
                phase_seconds=duration / 2, mid=rate * 0.19,
            ),
            seed=seed,
        )
        query = StreamQuery(
            key_fn=lambda it: it[0], value_fn=lambda it: it[1], kind="mean",
            name="drift-mean",
        )
    elif name == "netflow":
        stream = netflow_stream(total_rate=rate, duration=duration, seed=seed)
        query = StreamQuery(
            key_fn=flow_protocol, value_fn=flow_bytes, kind="sum",
            group_fn=flow_protocol, name="traffic-per-protocol",
        )
    elif name == "taxi":
        stream = taxi_stream(total_rate=rate, duration=duration, seed=seed)
        query = StreamQuery(
            key_fn=ride_borough, value_fn=ride_distance, kind="mean",
            group_fn=ride_borough, name="distance-per-borough",
        )
    else:
        raise ValueError(f"unknown workload {name!r}")
    return stream, query


def _broker_with_stream(stream, query, partitions: int) -> Broker:
    """Replay an in-memory stream into a fresh aggregator topic.

    Records are keyed by the query's stratum key, so each sub-stream stays
    ordered within its partition — the Figure 1 ingestion shape.
    """
    broker: Broker = Broker()
    broker.create_topic("cli-input", num_partitions=partitions)
    producer: Producer = Producer(broker, "cli-input")
    key_fn = query.key_fn
    for timestamp, item in stream:
        producer.send(timestamp, item, key=key_fn(item))
    return broker


def _budget_from_args(args):
    """Build the query budget from the (mutually exclusive) budget flags."""
    chosen = [
        flag
        for flag, value in (
            ("--target-margin", args.target_margin),
            ("--latency-budget", args.latency_budget),
            ("--cores-budget", args.cores_budget),
        )
        if value is not None
    ]
    if len(chosen) > 1:
        raise PlanError(
            f"at most one query budget may be given, got {' and '.join(chosen)}"
        )
    if args.target_margin is not None:
        return AccuracyBudget(target_margin=args.target_margin)
    if args.latency_budget is not None:
        return LatencyBudget(max_seconds=args.latency_budget)
    if args.cores_budget is not None:
        return ResourceBudget(workers=args.cores_budget)
    return None


def _parse_kill_shard(spec: str) -> ShardKill:
    """Parse one ``--kill-shard W@I[:FRACTION]`` spec into a `ShardKill`."""
    try:
        worker_part, _, rest = spec.partition("@")
        if not rest:
            raise ValueError("missing '@'")
        interval_part, _, fraction_part = rest.partition(":")
        return ShardKill(
            worker=int(worker_part),
            interval=int(interval_part),
            after_fraction=float(fraction_part) if fraction_part else 0.5,
        )
    except ValueError as exc:
        raise PlanError(
            f"bad --kill-shard spec {spec!r} (expected WORKER@INTERVAL or "
            f"WORKER@INTERVAL:FRACTION, e.g. 1@2:0.5): {exc}"
        ) from None


def _run_systems(
    names: List[str],
    stream,
    query,
    fraction: float,
    window: WindowConfig,
    chunk_size: int = 0,
    parallelism: int = 1,
    broker=None,
    broker_members: int = 2,
    budget=None,
    checkpoint=None,
    faults=None,
    telemetry=None,
):
    """Run each named system once; returns (reports, system instances).

    The instances give ``compare --resume`` access to each run's collected
    checkpoints, and `StreamSystem.run` re-reads rewindable sources, so the
    same instance can replay for resume verification.
    """
    reports: Dict[str, object] = {}
    systems: Dict[str, object] = {}
    sources: Dict[str, object] = {}
    for name in names:
        cls = _CLI_SYSTEMS[name]
        config = SystemConfig(
            sampling_fraction=fraction if name not in _UNSAMPLED else 1.0,
            # Unsampled systems have no sample size to adapt and no sampler
            # state worth snapshotting or killing; they run as the exact
            # baselines alongside the budget/checkpoint/fault-driven ones.
            budget=budget if name not in _UNSAMPLED else None,
            checkpoint=checkpoint if name not in _UNSAMPLED else None,
            faults=faults if name not in _UNSAMPLED else None,
            chunk_size=chunk_size,
            parallelism=parallelism,
            telemetry=telemetry,
        )
        if broker is not None:
            # rewind (the default) re-reads the whole topic per run, so one
            # group per system is safe across sweep fractions.
            source = TopicSource(
                broker, "cli-input", group_id=f"cli-{name}", members=broker_members
            )
        else:
            source = stream
        system = cls(query, window, config)
        reports[name] = system.run(source)
        systems[name] = system
        sources[name] = source
    return reports, systems, sources


def _write_trace(path: str, named) -> None:
    """Write merged system traces: Chrome format, or JSON-lines for .jsonl."""
    if path.endswith(".jsonl"):
        import json

        with open(path, "w") as fh:
            for name, tracer in named:
                for line in tracer.jsonl_lines():
                    record = {"system": name}
                    record.update(json.loads(line))
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
        return
    write_chrome_trace(path, named)


def cmd_systems(_args) -> int:
    print("available systems (engine/strategy):")
    for name, cls in _CLI_SYSTEMS.items():
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:22s} [{cls.engine}/{cls.strategy}] {doc}")
    return 0


def cmd_compare(args) -> int:
    stream, query = make_workload(args.workload, args.rate, args.duration, args.seed)
    window = WindowConfig(args.window, args.slide)
    broker = (
        _broker_with_stream(stream, query, args.broker_partitions)
        if args.via_broker
        else None
    )
    try:
        budget = _budget_from_args(args)
        checkpoint = (
            CheckpointPolicy(every=args.checkpoint_every)
            if args.checkpoint_every is not None
            else None
        )
        if args.resume and checkpoint is None:
            raise PlanError("--resume needs --checkpoint-every to collect "
                            "checkpoints to resume from")
        faults = (
            FaultSchedule(kills=tuple(_parse_kill_shard(s) for s in args.kill_shard))
            if args.kill_shard
            else None
        )
        telemetry = (
            TelemetryConfig()
            if (args.trace_out or args.show_timings)
            else None
        )
        reports, systems, sources = _run_systems(
            args.systems, stream, query, args.fraction, window,
            chunk_size=args.chunk_size, parallelism=args.parallelism,
            broker=broker, broker_members=args.broker_members, budget=budget,
            checkpoint=checkpoint, faults=faults, telemetry=telemetry,
        )
    except PlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    knob = (
        f"budget={budget}" if budget is not None else f"fraction={args.fraction}"
    )
    print(f"workload={args.workload} items={len(stream):,} {knob}\n")
    print(f"{'system':>22} {'items/s':>12} {'loss':>9} {'latency(s)':>11}")
    for name, report in reports.items():
        print(
            f"{name:>22} {report.throughput:12,.0f} "
            f"{report.mean_accuracy_loss():9.3%} {report.latency:11.3f}"
        )
    print()
    print(bar_chart(
        {name: r.throughput for name, r in reports.items()},
        title="throughput (items per simulated second)",
    ))
    if budget is not None:
        target = getattr(budget, "target_margin", None)
        for name, report in reports.items():
            if not report.adaptation:
                continue
            print(f"\nadaptation trajectory — {name}")
            print(format_trajectory(report, target))
    if faults is not None:
        print("\nworker-loss recovery (discard-and-rewiden):")
        for name, report in reports.items():
            events = report.recovery_events
            if not events:
                print(f"  {name:>22}: no recovery events")
                continue
            for ev in events:
                print(
                    f"  {name:>22}: interval {ev.interval} worker {ev.worker} "
                    f"lost {ev.items_lost} rerouted {ev.items_rerouted}"
                    f"{' (permanent)' if ev.permanent else ''}"
                )
            print(f"  {name:>22}: total items lost {report.items_lost}")
    if args.show_timings:
        print("\nper-stage timings (seconds summed over panes):")
        for name, report in reports.items():
            tel = report.telemetry
            if tel is None or not tel.pane_stages:
                continue
            stages = tel.stage_seconds()
            print()
            print(bar_chart(
                {stage: round(seconds, 6) for stage, seconds in stages.items()},
                title=f"{name} ({len(tel.pane_stages)} panes)",
            ))
        trajectory_series = {
            name: [(p.interval_end, float(p.sample_budget))
                   for p in report.adaptation]
            for name, report in reports.items()
            if report.adaptation
        }
        if trajectory_series:
            print()
            print(line_chart(
                trajectory_series,
                title="adaptive sample budget per interval",
            ))
    if args.trace_out:
        named = [
            (name, report.telemetry.tracer)
            for name, report in reports.items()
            if report.telemetry is not None
        ]
        _write_trace(args.trace_out, named)
        print(f"\nwrote trace of {len(named)} system runs to {args.trace_out}"
              + ("" if args.trace_out.endswith(".jsonl")
                 else " (load in chrome://tracing or ui.perfetto.dev)"))
    if args.resume:
        print("\nresume-from-checkpoint verification:")
        failures = 0
        for name, system in systems.items():
            store = system.checkpoints
            if store is None or len(store) == 0:
                print(f"  {name:>22}: no checkpoints collected")
                continue
            checkpoint_at = store.latest()
            try:
                resumed = system.run(sources[name], resume_from=checkpoint_at)
            except PlanError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            base_panes = [
                (r.end, r.estimate, r.sampled_items) for r in reports[name].results
            ]
            resumed_panes = [
                (r.end, r.estimate, r.sampled_items) for r in resumed.results
            ]
            match = resumed_panes == base_panes
            failures += 0 if match else 1
            print(
                f"  {name:>22}: resumed from pane {checkpoint_at.pane_index} "
                f"(t={checkpoint_at.pane_end:g}) — panes "
                f"{'match' if match else 'DIVERGED'}"
            )
        if failures:
            return 1
    return 0


def cmd_sweep(args) -> int:
    stream, query = make_workload(args.workload, args.rate, args.duration, args.seed)
    window = WindowConfig(args.window, args.slide)
    broker = (
        _broker_with_stream(stream, query, args.broker_partitions)
        if args.via_broker
        else None
    )
    collector = ExperimentCollector(f"sweep_{args.workload}")
    try:
        if _budget_from_args(args) is not None:
            raise PlanError(
                "sweep varies the sampling fraction; budget flags only apply "
                "to 'compare'"
            )
        faults = (
            FaultSchedule(kills=tuple(_parse_kill_shard(s) for s in args.kill_shard))
            if args.kill_shard
            else None
        )
        for fraction in args.fractions:
            sampled = [name for name in args.systems if name not in _UNSAMPLED]
            reports, _systems, _sources = _run_systems(
                sampled, stream, query, fraction, window,
                chunk_size=args.chunk_size, parallelism=args.parallelism,
                broker=broker, broker_members=args.broker_members,
                faults=faults,
            )
            for report in reports.values():
                collector.record(fraction, report)
    except PlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(collector.table(args.metric))
    series = {
        system: collector.series(system, args.metric)
        for system in collector.systems()
    }
    print()
    print(line_chart(series, title=f"{args.metric} vs sampling fraction"))
    return 0


def cmd_serve(args) -> int:
    """Run the multi-tenant query service on a TCP endpoint until ^C."""
    import asyncio

    from .service import QueryService, TenantScheduler

    tenants = []
    for spec in args.tenant or ["default"]:
        name, _, budget = spec.partition(":")
        if not name:
            print(f"invalid --tenant {spec!r}: expected NAME[:BUDGET]",
                  file=sys.stderr)
            return 2
        try:
            tenants.append((name, float(budget) if budget else 1.0))
        except ValueError:
            print(f"invalid --tenant budget in {spec!r}", file=sys.stderr)
            return 2

    async def run() -> None:
        service = QueryService(
            scheduler=TenantScheduler(capacity=args.capacity),
            max_workers=args.workers,
        )
        for name, budget in tenants:
            service.register_tenant(name, budget)
        host, port = await service.serve_tcp(args.host, args.port)
        print(f"serving on {host}:{port} "
              f"(tenants: {', '.join(f'{n}:{b:g}' for n, b in tenants)}; "
              f"capacity {args.capacity:g}); newline-JSON protocol, "
              "Ctrl-C to stop", flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_metrics(args) -> int:
    """Fetch and render a running service's metrics over the wire."""
    import json
    import socket

    try:
        with socket.create_connection(
            (args.host, args.port), timeout=args.timeout
        ) as sock:
            sock.sendall(b'{"op":"metrics"}\n')
            buf = b""
            while not buf.endswith(b"\n"):
                data = sock.recv(65536)
                if not data:
                    break
                buf += data
    except OSError as exc:
        print(f"error: cannot reach service at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    try:
        reply = json.loads(buf.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        print(f"error: malformed metrics reply: {exc}", file=sys.stderr)
        return 2
    if reply.get("type") != "metrics":
        print(f"error: unexpected reply {reply.get('type')!r}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    service = reply["service"]
    print(f"service @ {args.host}:{args.port}")
    print(f"  submitted={service['submitted']:g} admitted={service['admitted']:g} "
          f"rejected={service['rejected']:g} completed={service['completed']:g} "
          f"failed={service['failed']:g}")
    print(f"  in_flight={service['in_flight']} queue_depth={service['queue_depth']} "
          f"active_cost={service['active_cost']:g} / capacity {service['capacity']:g}")
    tta = service.get("time_to_answer") or {}
    if tta.get("count"):
        print(f"  time_to_answer: p50={tta['p50']:g}s p99={tta['p99']:g}s "
              f"max={tta['max']:.3f}s over {tta['count']:g} queries")
    tenants = reply.get("tenants", {})
    if tenants:
        print(f"\n{'tenant':>16} {'budget':>7} {'ratio':>7} {'admit':>6} "
              f"{'reject':>6} {'queue':>6} {'settled':>10} {'tta p99':>8}")
        for tenant_id in sorted(tenants):
            t = tenants[tenant_id]
            t_tta = t.get("time_to_answer") or {}
            p99 = f"{t_tta['p99']:g}s" if t_tta.get("count") else "-"
            print(f"{tenant_id:>16} {t['budget']:7g} {t['ratio']:7.3f} "
                  f"{t['admitted']:6g} {t['rejected']:6g} {t['queue_depth']:6g} "
                  f"{t['settled']:10.1f} {p99:>8}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="StreamApprox reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="list available systems").set_defaults(
        func=cmd_systems
    )

    def add_common(p):
        p.add_argument("--workload", choices=("gaussian", "drift", "netflow", "taxi"),
                       default="gaussian")
        p.add_argument("--rate", type=float, default=20_000,
                       help="aggregate arrival rate, items/s")
        p.add_argument("--duration", type=float, default=12, help="stream seconds")
        p.add_argument("--window", type=float, default=10.0)
        p.add_argument("--slide", type=float, default=5.0)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--systems", nargs="+", choices=list(_CLI_SYSTEMS),
                       default=_DEFAULT_SYSTEMS)
        p.add_argument("--chunk-size", type=int, default=0, dest="chunk_size",
                       help="vectorized chunk size, honoured by every system "
                            "(0 = per-item execution)")
        p.add_argument("--parallelism", type=int, default=1,
                       help="real worker processes for interval sampling "
                            "(OASRS-based systems; others reject it)")
        p.add_argument("--via-broker", action="store_true", dest="via_broker",
                       help="replay the workload through the in-memory "
                            "aggregator and feed systems from a consumer group")
        p.add_argument("--broker-partitions", type=int, default=4,
                       dest="broker_partitions",
                       help="topic partitions when --via-broker is set")
        p.add_argument("--broker-members", type=int, default=2,
                       dest="broker_members",
                       help="consumer-group members when --via-broker is set")
        p.add_argument("--target-margin", type=float, default=None,
                       dest="target_margin", metavar="M",
                       help="accuracy budget: adapt the sample size per "
                            "interval until the CI half-width stays ≤ M "
                            "(replaces --fraction)")
        p.add_argument("--latency-budget", type=float, default=None,
                       dest="latency_budget", metavar="S",
                       help="latency budget: per-interval sample size from "
                            "the token cost model for S seconds/interval")
        p.add_argument("--cores-budget", type=int, default=None,
                       dest="cores_budget", metavar="N",
                       help="resource budget: per-interval sample size from "
                            "an N-core allotment")
        p.add_argument("--checkpoint-every", type=int, default=None,
                       dest="checkpoint_every", metavar="K",
                       help="snapshot sampler/controller state every K panes "
                            "(fault-tolerance service; sampled systems only)")
        p.add_argument("--kill-shard", action="append", default=[],
                       dest="kill_shard", metavar="W@I[:FRAC]",
                       help="inject a worker loss: kill shard worker W during "
                            "interval I after FRAC of its items (default 0.5); "
                            "repeatable; needs --parallelism >= 2")

    compare = sub.add_parser("compare", help="run systems at one fraction")
    add_common(compare)
    compare.add_argument("--fraction", type=float, default=0.6)
    compare.add_argument("--resume", action="store_true",
                         help="after the run, resume each system from its "
                              "latest checkpoint and verify the remaining "
                              "panes match (needs --checkpoint-every)")
    compare.add_argument("--trace-out", default=None, dest="trace_out",
                         metavar="PATH",
                         help="run with telemetry and write the merged span "
                              "trace: chrome://tracing JSON (default) or "
                              "JSON-lines when PATH ends in .jsonl")
    compare.add_argument("--show-timings", action="store_true",
                         dest="show_timings",
                         help="run with telemetry and print per-stage timings "
                              "plus the adaptation trajectory chart")
    compare.set_defaults(func=cmd_compare)

    sweep = sub.add_parser("sweep", help="sweep the sampling fraction")
    add_common(sweep)
    sweep.add_argument("--fractions", nargs="+", type=float,
                       default=[0.1, 0.2, 0.4, 0.6, 0.8])
    sweep.add_argument("--metric", choices=("throughput", "accuracy_loss", "latency"),
                       default="throughput")
    sweep.set_defaults(func=cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant approximate-query service (TCP, "
             "newline-JSON)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7071)
    serve.add_argument("--tenant", action="append", metavar="NAME[:BUDGET]",
                       default=None,
                       help="register a tenant with a sample-budget fraction "
                            "in (0, 1] (default 1.0); repeatable; defaults to "
                            "a single 'default:1.0' tenant")
    serve.add_argument("--capacity", type=float, default=1_000_000.0,
                       help="global in-flight sample-cost capacity shared "
                            "fair-share across tenants")
    serve.add_argument("--workers", type=int, default=4,
                       help="query-execution worker threads")
    serve.set_defaults(func=cmd_serve)

    metrics = sub.add_parser(
        "metrics",
        help="fetch a running service's admission/latency metrics over TCP",
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=int, default=7071)
    metrics.add_argument("--timeout", type=float, default=5.0,
                         help="connection timeout in seconds")
    metrics.add_argument("--json", action="store_true",
                         help="print the raw JSON reply instead of the table")
    metrics.set_defaults(func=cmd_metrics)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
