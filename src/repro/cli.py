"""Command-line interface for quick experiments.

Run single comparisons without writing a script::

    python -m repro compare --workload gaussian --fraction 0.6
    python -m repro compare --workload netflow --systems spark-streamapprox spark-sts
    python -m repro sweep --workload taxi --metric accuracy_loss
    python -m repro systems

Subcommands:

* ``systems`` — list the available systems (the paper's six plus the
  chunked/sharded ``native-streamapprox`` executor),
* ``compare`` — run chosen systems once at one sampling fraction and print
  throughput / accuracy / latency plus an ASCII bar chart,
* ``sweep`` — sweep the sampling fraction and print the resulting figure
  table and an ASCII line chart.

``--chunk-size K`` routes items through the vectorized chunk path and
``--parallelism N`` shards supported systems over N real processes.

The CLI is a thin veneer over the same public API the benchmarks use; it
exists so a fresh checkout can produce paper-shaped numbers in one line.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from .metrics.ascii_chart import bar_chart, line_chart
from .metrics.collector import ExperimentCollector
from .system import (
    ALL_SYSTEMS,
    NativeStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    WindowConfig,
)
from .workloads.netflow import flow_bytes, flow_protocol, netflow_stream
from .workloads.synthetic import stream_by_rates
from .workloads.taxi import ride_borough, ride_distance, taxi_stream

__all__ = ["main", "build_parser", "make_workload"]

# The paper's six plus this repo's chunked/sharded native executor.
_CLI_SYSTEMS = {**ALL_SYSTEMS, NativeStreamApproxSystem.name: NativeStreamApproxSystem}
_DEFAULT_SYSTEMS = list(ALL_SYSTEMS)
# Systems that process everything — the sampling fraction does not apply.
_UNSAMPLED = {"native-spark", "native-flink"}


def make_workload(name: str, rate: float, duration: float, seed: int):
    """Return (stream, query) for a named workload."""
    if name == "gaussian":
        stream = stream_by_rates(
            {"A": rate * 0.8, "B": rate * 0.19, "C": rate * 0.01},
            duration=duration,
            seed=seed,
        )
        query = StreamQuery(
            key_fn=lambda it: it[0], value_fn=lambda it: it[1], kind="mean",
            name="window-mean",
        )
    elif name == "netflow":
        stream = netflow_stream(total_rate=rate, duration=duration, seed=seed)
        query = StreamQuery(
            key_fn=flow_protocol, value_fn=flow_bytes, kind="sum",
            group_fn=flow_protocol, name="traffic-per-protocol",
        )
    elif name == "taxi":
        stream = taxi_stream(total_rate=rate, duration=duration, seed=seed)
        query = StreamQuery(
            key_fn=ride_borough, value_fn=ride_distance, kind="mean",
            group_fn=ride_borough, name="distance-per-borough",
        )
    else:
        raise ValueError(f"unknown workload {name!r}")
    return stream, query


def _run_systems(
    names: List[str],
    stream,
    query,
    fraction: float,
    window: WindowConfig,
    chunk_size: int = 0,
    parallelism: int = 1,
) -> Dict[str, object]:
    reports = {}
    for name in names:
        cls = _CLI_SYSTEMS[name]
        config = SystemConfig(
            sampling_fraction=fraction if name not in _UNSAMPLED else 1.0,
            chunk_size=chunk_size,
            parallelism=parallelism,
        )
        reports[name] = cls(query, window, config).run(stream)
    return reports


def cmd_systems(_args) -> int:
    print("available systems:")
    for name, cls in _CLI_SYSTEMS.items():
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:22s} {doc}")
    return 0


def cmd_compare(args) -> int:
    stream, query = make_workload(args.workload, args.rate, args.duration, args.seed)
    window = WindowConfig(args.window, args.slide)
    reports = _run_systems(
        args.systems, stream, query, args.fraction, window,
        chunk_size=args.chunk_size, parallelism=args.parallelism,
    )

    print(f"workload={args.workload} items={len(stream):,} fraction={args.fraction}\n")
    print(f"{'system':>22} {'items/s':>12} {'loss':>9} {'latency(s)':>11}")
    for name, report in reports.items():
        print(
            f"{name:>22} {report.throughput:12,.0f} "
            f"{report.mean_accuracy_loss():9.3%} {report.latency:11.3f}"
        )
    print()
    print(bar_chart(
        {name: r.throughput for name, r in reports.items()},
        title="throughput (items per simulated second)",
    ))
    return 0


def cmd_sweep(args) -> int:
    stream, query = make_workload(args.workload, args.rate, args.duration, args.seed)
    window = WindowConfig(args.window, args.slide)
    collector = ExperimentCollector(f"sweep_{args.workload}")
    for fraction in args.fractions:
        for name in args.systems:
            if name in _UNSAMPLED:
                continue
            report = _CLI_SYSTEMS[name](
                query,
                window,
                SystemConfig(
                    sampling_fraction=fraction,
                    chunk_size=args.chunk_size,
                    parallelism=args.parallelism,
                ),
            ).run(stream)
            collector.record(fraction, report)

    print(collector.table(args.metric))
    series = {
        system: collector.series(system, args.metric)
        for system in collector.systems()
    }
    print()
    print(line_chart(series, title=f"{args.metric} vs sampling fraction"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="StreamApprox reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="list available systems").set_defaults(
        func=cmd_systems
    )

    def add_common(p):
        p.add_argument("--workload", choices=("gaussian", "netflow", "taxi"),
                       default="gaussian")
        p.add_argument("--rate", type=float, default=20_000,
                       help="aggregate arrival rate, items/s")
        p.add_argument("--duration", type=float, default=12, help="stream seconds")
        p.add_argument("--window", type=float, default=10.0)
        p.add_argument("--slide", type=float, default=5.0)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--systems", nargs="+", choices=list(_CLI_SYSTEMS),
                       default=_DEFAULT_SYSTEMS)
        p.add_argument("--chunk-size", type=int, default=0, dest="chunk_size",
                       help="vectorized chunk size (0 = per-item execution)")
        p.add_argument("--parallelism", type=int, default=1,
                       help="real worker processes for the sharded executor")

    compare = sub.add_parser("compare", help="run systems at one fraction")
    add_common(compare)
    compare.add_argument("--fraction", type=float, default=0.6)
    compare.set_defaults(func=cmd_compare)

    sweep = sub.add_parser("sweep", help="sweep the sampling fraction")
    add_common(sweep)
    sweep.add_argument("--fractions", nargs="+", type=float,
                       default=[0.1, 0.2, 0.4, 0.6, 0.8])
    sweep.add_argument("--metric", choices=("throughput", "accuracy_loss", "latency"),
                       default="throughput")
    sweep.set_defaults(func=cmd_sweep)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
