"""The six end-to-end systems of the paper's evaluation (Figure 3).

* `SparkStreamApproxSystem` — OASRS before RDD formation (§4.2.1),
* `FlinkStreamApproxSystem` — OASRS as a pipelined operator (§4.2.2),
* `SparkSRSSystem` — improved baseline, Spark `sample` per batch,
* `SparkSTSSystem` — improved baseline, Spark `sampleByKeyExact` per batch,
* `NativeSparkSystem` / `NativeFlinkSystem` — no sampling.

Beyond the paper's six, `NativeStreamApproxSystem` is this repo's own
executor: OASRS directly over the stream with the vectorized chunk path
and the real multi-process `ShardedExecutor` (``SystemConfig.chunk_size``
/ ``parallelism``).  It is intentionally *not* part of ``ALL_SYSTEMS``,
which enumerates exactly the paper's evaluated six.

All share `StreamSystem.run(stream) → SystemReport` with per-pane
estimates, error bounds, ground truth, accuracy loss, throughput and
latency.
"""

from .base import (
    StreamSystem,
    SystemReport,
    WindowResult,
    accuracy_loss,
    estimate_pane,
    exact_panes,
)
from .config import StreamQuery, SystemConfig, WindowConfig
from .flink_approx import FlinkStreamApproxSystem
from .native import NativeFlinkSystem, NativeSparkSystem, NativeStreamApproxSystem
from .spark_approx import SparkStreamApproxSystem
from .spark_srs import SparkSRSSystem
from .spark_sts import SparkSTSSystem

ALL_SYSTEMS = {
    SparkStreamApproxSystem.name: SparkStreamApproxSystem,
    FlinkStreamApproxSystem.name: FlinkStreamApproxSystem,
    SparkSRSSystem.name: SparkSRSSystem,
    SparkSTSSystem.name: SparkSTSSystem,
    NativeSparkSystem.name: NativeSparkSystem,
    NativeFlinkSystem.name: NativeFlinkSystem,
}

__all__ = [
    "ALL_SYSTEMS",
    "FlinkStreamApproxSystem",
    "NativeFlinkSystem",
    "NativeSparkSystem",
    "NativeStreamApproxSystem",
    "SparkSRSSystem",
    "SparkSTSSystem",
    "SparkStreamApproxSystem",
    "StreamQuery",
    "StreamSystem",
    "SystemConfig",
    "SystemReport",
    "WindowConfig",
    "WindowResult",
    "accuracy_loss",
    "estimate_pane",
    "exact_panes",
]
