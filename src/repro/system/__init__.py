"""The six end-to-end systems of the paper's evaluation (Figure 3).

Every system is a thin declarative config over the unified execution
runtime (`repro.runtime`) — a name plus an ``(engine, strategy)`` pair:

* `SparkStreamApproxSystem` — batched engine + ``oasrs`` (§4.2.1),
* `FlinkStreamApproxSystem` — pipelined engine + ``oasrs`` (§4.2.2),
* `SparkSRSSystem` — batched engine + ``srs`` (Spark `sample`),
* `SparkSTSSystem` — batched engine + ``sts`` (`sampleByKeyExact`),
* `NativeSparkSystem` / `NativeFlinkSystem` — batched / pipelined engine
  + ``none`` (no sampling).

Beyond the paper's six, `NativeStreamApproxSystem` is this repo's own
executor: the ``oasrs`` strategy on the runtime's **direct** engine, the
system whose wall-clock speed measures the vectorized chunk path and the
real multi-process `ShardedExecutor` (``SystemConfig.chunk_size`` /
``parallelism``).  It is intentionally *not* part of ``ALL_SYSTEMS``,
which enumerates exactly the paper's evaluated six.

All share `StreamSystem.run(stream) → SystemReport` with per-pane
estimates, error bounds, ground truth, accuracy loss, throughput and
latency; ``run`` also accepts any `repro.runtime.source.PlanSource`, so
every system can read Kafka-style from the `repro.aggregator` broker.
"""

from .base import (
    StreamSystem,
    SystemReport,
    WindowResult,
    accuracy_loss,
    estimate_pane,
    exact_panes,
)
from .config import StreamQuery, SystemConfig, WindowConfig
from .flink_approx import FlinkStreamApproxSystem
from .native import NativeFlinkSystem, NativeSparkSystem, NativeStreamApproxSystem
from .spark_approx import SparkStreamApproxSystem
from .spark_srs import SparkSRSSystem
from .spark_sts import SparkSTSSystem

ALL_SYSTEMS = {
    SparkStreamApproxSystem.name: SparkStreamApproxSystem,
    FlinkStreamApproxSystem.name: FlinkStreamApproxSystem,
    SparkSRSSystem.name: SparkSRSSystem,
    SparkSTSSystem.name: SparkSTSSystem,
    NativeSparkSystem.name: NativeSparkSystem,
    NativeFlinkSystem.name: NativeFlinkSystem,
}

__all__ = [
    "ALL_SYSTEMS",
    "FlinkStreamApproxSystem",
    "NativeFlinkSystem",
    "NativeSparkSystem",
    "NativeStreamApproxSystem",
    "SparkSRSSystem",
    "SparkSTSSystem",
    "SparkStreamApproxSystem",
    "StreamQuery",
    "StreamSystem",
    "SystemConfig",
    "SystemReport",
    "WindowConfig",
    "WindowResult",
    "accuracy_loss",
    "estimate_pane",
    "exact_panes",
]
