"""Native executions — the no-sampling baselines and the repo's own engine.

Two kinds of "native" live here:

* `NativeSparkSystem` / `NativeFlinkSystem` — the paper's first baseline
  pair: no sampling at all.  `NativeSparkSystem` forms an RDD from every
  micro-batch and processes every item; `NativeFlinkSystem` pushes every
  item through the pipelined dataflow.  Both produce exact window results
  (weight-1 samples ⇒ zero-width error bounds), paying the full per-item
  processing bill that sampling-based systems avoid.
* `NativeStreamApproxSystem` — *this repo's* native execution path: OASRS
  run directly over slide-sized intervals with no engine simulation in the
  hot loop, which makes it the system whose **wall-clock** speed reflects
  the sampling stack itself.  It is where the vectorized chunk API
  (``SystemConfig.chunk_size``) and the real multi-process
  `repro.core.distributed.ShardedExecutor` (``SystemConfig.parallelism``)
  are exposed end to end.
"""

from __future__ import annotations

import math
import random
import time
from bisect import bisect_left
from collections import deque
from operator import itemgetter
from typing import List, Sequence, Tuple

from ..core._vector import np as _np
from ..core.distributed import ShardedExecutor
from ..core.error import estimate_error
from ..core.oasrs import OASRSSampler, WaterFillingAllocation
from ..core.query import QueryResult, StratumStats
from ..core.strata import combine_worker_samples, stratum_weight
from ..engine.batched.context import StreamingContext
from ..engine.cluster import SimulatedCluster
from ..engine.pipelined.dataflow import Pipeline
from .base import StreamSystem, WindowResult, estimate_pane
from .spark_base import BatchedSystem, full_weight_sample

__all__ = ["NativeSparkSystem", "NativeFlinkSystem", "NativeStreamApproxSystem"]


class NativeSparkSystem(BatchedSystem):
    """Spark Streaming without sampling: RDD every batch, process all.

    The exact-but-expensive baseline: every arriving item pays ingest, the
    RDD-formation copy, task scheduling, and full query processing.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> report = NativeSparkSystem(q, WindowConfig(1, 1), SystemConfig()).run(
    ...     [(0.5, ("a", 1.0)), (1.5, ("a", 3.0)), (2.5, ("a", 5.0))])
    >>> [round(r.estimate, 1) for r in report.results]
    [1.0, 3.0, 5.0]
    """

    name = "native-spark"

    def _handle_batch(self, ctx: StreamingContext, items: Sequence[object]):
        rdd = ctx.rdd_of(items)
        rdd.process_all()
        return full_weight_sample(items, self.query.key_fn)


class NativeFlinkSystem(StreamSystem):
    """Flink without sampling: per-item pipelined processing, exact windows.

    Streams every item through the pipelined dataflow and aggregates exact
    panes; with ``SystemConfig.chunk_size > 1`` the dataflow runs in
    chunked mode (identical results, lower constant factors).

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> report = NativeFlinkSystem(q, WindowConfig(1, 1), SystemConfig()).run(
    ...     [(0.5, ("a", 1.0)), (1.5, ("a", 3.0)), (2.5, ("a", 5.0))])
    >>> [round(r.estimate, 1) for r in report.results]
    [1.0, 3.0]
    """

    name = "native-flink"

    def _execute(self, stream: List[Tuple[float, object]]):
        cluster = SimulatedCluster(
            nodes=self.config.nodes, cores_per_node=self.config.cores_per_node
        )
        query = self.query
        confidence = self.config.confidence

        def aggregate(pane_items):
            sample = full_weight_sample([item for _ts, item in pane_items], query.key_fn)
            estimate, bound, groups = estimate_pane(sample, query, confidence)
            return estimate, bound, groups, sample.total_items

        raw = (
            Pipeline(cluster)
            .charge()  # per-item query processing, charged exactly once
            .window(
                length=self.window.length,
                slide=self.window.slide,
                aggregate=aggregate,
                charge_processing=False,
            )
            .sink_collect()
            .run(stream, chunk_size=self.config.chunk_size)
        )
        # Drop the end-of-stream flush pane to stay comparable with the
        # batched systems, which only fire at slide boundaries.
        last_ts = stream[-1][0] if stream else 0.0
        results: List[WindowResult] = []
        for ts, (estimate, bound, groups, n) in raw:
            if ts > last_ts:
                continue
            results.append(
                WindowResult(
                    end=ts,
                    estimate=estimate,
                    exact=None,
                    error=bound,
                    groups=groups,
                    sampled_items=n,
                    total_items=n,
                )
            )
        return results, cluster


def _interval_moments(sample, value_fn):
    """Per-stratum sufficient statistics (y, c, Σv, Σv²) of one interval.

    Computed once when the interval closes; panes pool these instead of
    re-scanning every sampled item per pane — batch-level accounting in the
    estimation layer, matching the chunk-level accounting in the samplers.
    """
    moments = []
    for stratum in sample:
        items = stratum.items
        y = len(items)
        if y == 0:
            continue
        if _np is not None and y >= 1024:
            array = _np.asarray([value_fn(x) for x in items], dtype=_np.float64)
            total = float(array.sum())
            sumsq = float(_np.dot(array, array))
        else:
            values = [value_fn(x) for x in items]
            total = math.fsum(values)
            sumsq = math.fsum(v * v for v in values)
        moments.append((stratum.key, y, stratum.count, total, sumsq))
    return moments


def _pane_stats(moment_sets) -> List[StratumStats]:
    """Pool interval moments into the pane's per-stratum `StratumStats`.

    Counts and sums add across intervals; the pooled unbiased variance
    comes from the summed squares (Equation 7 on the concatenated sample),
    and the pooled Equation-1 weight re-derives as ΣC / ΣY — algebraically
    identical to merging the samples and recomputing.
    """
    pooled = {}
    for moments in moment_sets:
        for key, y, c, total, sumsq in moments:
            if key in pooled:
                py, pc, pt, ps = pooled[key]
                pooled[key] = (py + y, pc + c, pt + total, ps + sumsq)
            else:
                pooled[key] = (y, c, total, sumsq)
    strata = []
    for key, (y, c, total, sumsq) in pooled.items():
        mean = total / y if y else 0.0
        variance = (
            max(0.0, (sumsq - y * mean * mean) / (y - 1)) if y > 1 else 0.0
        )
        strata.append(
            StratumStats(
                key=key, y=y, c=c, weight=stratum_weight(c, y),
                total=total, mean=mean, variance=variance,
            )
        )
    return strata


class NativeStreamApproxSystem(StreamSystem):
    """This repo's own executor: OASRS straight over slide-sized intervals.

    No engine simulation sits in the hot loop — each slide interval's items
    go directly into the OASRS sampler (per item, in ``chunk_size`` runs
    through `OASRSSampler.process_chunk`, or sharded over ``parallelism``
    real processes via `repro.core.distributed.ShardedExecutor`), and each
    interval close merges the last ``w/δ`` interval samples into the pane
    estimate.  Because the hot loop is the sampling stack itself, this is
    the system whose *wall-clock* throughput measures the chunked/sharded
    fast paths (see ``benchmarks/test_fig6a_chunked_scalability.py``);
    simulated-cluster charges are still recorded so virtual metrics remain
    comparable with the other systems.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> cfg = SystemConfig(sampling_fraction=0.5, chunk_size=128, seed=1)
    >>> stream = [(i / 1000.0, ("a", 1.0)) for i in range(10_000)]
    >>> report = NativeStreamApproxSystem(q, WindowConfig(5, 5), cfg).run(stream)
    >>> [round(r.estimate, 1) for r in report.results]
    [1.0, 1.0]
    """

    name = "native-streamapprox"

    def _execute(self, stream: List[Tuple[float, object]]):
        cluster = SimulatedCluster(
            nodes=self.config.nodes, cores_per_node=self.config.cores_per_node
        )
        results: List[WindowResult] = []
        self.last_sampling_seconds = 0.0
        if not stream:
            return results, cluster
        query = self.query
        config = self.config
        # Per-interval budget, as in the Flink system: fraction × expected
        # items per slide, with the declared strata splitting the first one.
        duration = max(stream[-1][0] - stream[0][0], self.window.slide)
        per_slide = len(stream) * self.window.slide / duration
        budget = max(1, int(config.sampling_fraction * per_slide))
        # Strata hint from a prefix only — scanning every item of a large
        # stream just to count sources would dominate the hot loop.
        key_fn = query.key_fn
        strata_hint = max(1, len({key_fn(item) for _ts, item in stream[:20_000]}))
        policy = WaterFillingAllocation(budget, expected_strata=strata_hint)

        chunk = config.chunk_size
        executor = None
        sampler = None
        if config.parallelism > 1:
            executor = ShardedExecutor(
                config.parallelism,
                policy,
                query.key_fn,
                seed=config.seed,
                chunk_size=chunk if chunk > 1 else 1024,
            )
        else:
            sampler = OASRSSampler(
                policy, key_fn=query.key_fn, rng=random.Random(config.seed)
            )

        history = deque(maxlen=self.window.intervals_per_window)
        sampling_seconds = 0.0
        # Slide-interval boundaries via bisection on the (ordered) timestamps
        # instead of a per-item batching loop; pane ends match `Batcher`'s
        # (every slide multiple, items with ts == boundary go to the next
        # interval, final partial interval keeps its nominal end).
        n = len(stream)
        slide = self.window.slide
        timestamp_of = itemgetter(0)
        start_idx = 0
        boundary = slide
        while start_idx < n:
            end_idx = bisect_left(stream, boundary, lo=start_idx, key=timestamp_of)
            items = [item for _ts, item in stream[start_idx:end_idx]]
            start_idx = end_idx
            pane_end = boundary
            boundary += slide
            cluster.sample_items(len(items), "oasrs")
            sampling_started = time.perf_counter()
            if executor is not None:
                sample = executor.run(items)
            else:
                if chunk > 1 and len(items) > 1:
                    process_chunk = sampler.process_chunk
                    for start in range(0, len(items), chunk):
                        process_chunk(items[start : start + chunk])
                else:
                    offer = sampler.offer
                    for item in items:
                        offer(item)
                sample = sampler.close_interval()
            sampling_seconds += time.perf_counter() - sampling_started
            cluster.process_items(sample.total_items)
            if query.group_fn is None:
                # Moment path: pool per-interval sufficient statistics — no
                # per-pane re-scan of the sampled items.
                history.append(_interval_moments(sample, query.value_fn))
                strata = _pane_stats(history)
                population = sum(s.c for s in strata)
                weighted_total = math.fsum(s.total * s.weight for s in strata)
                if query.kind == "sum":
                    value = weighted_total
                else:
                    value = weighted_total / population if population else 0.0
                bound = estimate_error(
                    QueryResult(value=value, strata=strata, kind=query.kind),
                    confidence=config.confidence,
                )
                groups = {}
                sampled = sum(s.y for s in strata)
            else:
                # Grouped queries need the items themselves: merge samples
                # and evaluate through the shared estimation path.
                history.append(sample)
                merged = combine_worker_samples(list(history))
                value, bound, groups = estimate_pane(merged, query, config.confidence)
                population = merged.total_count
                sampled = merged.total_items
            results.append(
                WindowResult(
                    end=pane_end,
                    estimate=value,
                    exact=None,
                    error=bound,
                    groups=groups,
                    sampled_items=sampled,
                    total_items=population,
                )
            )
        self.last_sampling_seconds = sampling_seconds
        return results, cluster

    def timed_execute(self, stream: List[Tuple[float, object]]):
        """Wall-clock-measured run of the processing path alone.

        Skips the ground-truth re-execution `StreamSystem.run` performs (that
        is measurement apparatus, not part of the system) and returns
        ``(results, cluster, wall_seconds)`` — the number benchmarks divide
        into ``len(stream)`` for real items-per-second throughput.  After a
        run, ``last_sampling_seconds`` holds the wall time spent inside the
        sampling path itself (the offer/process_chunk/shard section), the
        part the chunked and sharded fast paths replace.
        """
        start = time.perf_counter()
        results, cluster = self._execute(stream)
        return results, cluster, time.perf_counter() - start
