"""Native executions — the no-sampling baselines and the repo's own engine.

Two kinds of "native" live here:

* `NativeSparkSystem` / `NativeFlinkSystem` — the paper's first baseline
  pair: no sampling at all.  `NativeSparkSystem` forms an RDD from every
  micro-batch and processes every item; `NativeFlinkSystem` pushes every
  item through the pipelined dataflow.  Both produce exact window results
  (weight-1 samples ⇒ zero-width error bounds), paying the full per-item
  processing bill that sampling-based systems avoid.  Declaratively they
  are the ``none`` strategy on the batched and pipelined engines.
* `NativeStreamApproxSystem` — *this repo's* native execution path: the
  ``oasrs`` strategy on the runtime's **direct** engine
  (`repro.runtime.driver.run_direct`), which runs the sampling stack
  straight over slide-sized intervals with no engine simulation in the
  hot loop.  Its **wall-clock** speed therefore reflects the sampling
  stack itself — the system the chunked (``SystemConfig.chunk_size``) and
  sharded (``SystemConfig.parallelism``) fast paths are benchmarked on.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from ..runtime.driver import run_direct
from ..runtime.source import ListSource
from .base import StreamSystem

__all__ = ["NativeSparkSystem", "NativeFlinkSystem", "NativeStreamApproxSystem"]


class NativeSparkSystem(StreamSystem):
    """Spark Streaming without sampling: RDD every batch, process all.

    The exact-but-expensive baseline: every arriving item pays ingest, the
    RDD-formation copy, task scheduling, and full query processing.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> report = NativeSparkSystem(q, WindowConfig(1, 1), SystemConfig()).run(
    ...     [(0.5, ("a", 1.0)), (1.5, ("a", 3.0)), (2.5, ("a", 5.0))])
    >>> [round(r.estimate, 1) for r in report.results]
    [1.0, 3.0, 5.0]
    """

    name = "native-spark"
    engine = "batched"
    strategy = "none"


class NativeFlinkSystem(StreamSystem):
    """Flink without sampling: per-item pipelined processing, exact windows.

    Streams every item through the pipelined dataflow and aggregates exact
    panes; with ``SystemConfig.chunk_size > 1`` the dataflow runs in
    chunked mode (identical results, lower constant factors).

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> report = NativeFlinkSystem(q, WindowConfig(1, 1), SystemConfig()).run(
    ...     [(0.5, ("a", 1.0)), (1.5, ("a", 3.0)), (2.5, ("a", 5.0))])
    >>> [round(r.estimate, 1) for r in report.results]
    [1.0, 3.0]
    """

    name = "native-flink"
    engine = "pipelined"
    strategy = "none"


class NativeStreamApproxSystem(StreamSystem):
    """This repo's own executor: OASRS straight over slide-sized intervals.

    No engine simulation sits in the hot loop — each slide interval's items
    go directly into the OASRS sampler (per item, in ``chunk_size`` runs
    through `OASRSSampler.process_chunk`, or sharded over ``parallelism``
    real processes via `repro.core.distributed.ShardedExecutor`), and each
    interval close merges the last ``w/δ`` interval samples into the pane
    estimate.  Because the hot loop is the sampling stack itself, this is
    the system whose *wall-clock* throughput measures the chunked/sharded
    fast paths (see ``benchmarks/test_fig6a_chunked_scalability.py``);
    simulated-cluster charges are still recorded so virtual metrics remain
    comparable with the other systems.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> cfg = SystemConfig(sampling_fraction=0.5, chunk_size=128, seed=1)
    >>> stream = [(i / 1000.0, ("a", 1.0)) for i in range(10_000)]
    >>> report = NativeStreamApproxSystem(q, WindowConfig(5, 5), cfg).run(stream)
    >>> [round(r.estimate, 1) for r in report.results]
    [1.0, 1.0]
    """

    name = "native-streamapprox"
    engine = "direct"
    strategy = "oasrs"

    #: Wall seconds the last ``_execute`` spent inside the sampling path.
    last_sampling_seconds = 0.0

    def _execute(self, stream: List[Tuple[float, object]]):
        results, cluster, sampling_seconds = run_direct(
            self.plan(ListSource(stream)),
            adaptation_log=self.adaptation,
            checkpoint_store=getattr(self, "checkpoints", None),
            resume_from=getattr(self, "_resume_from", None),
            run_info=getattr(self, "_run_info", None),
        )
        self.last_sampling_seconds = sampling_seconds
        return results, cluster

    def timed_execute(self, stream: List[Tuple[float, object]]):
        """Wall-clock-measured run of the processing path alone.

        Skips the ground-truth re-execution `StreamSystem.run` performs (that
        is measurement apparatus, not part of the system) and returns
        ``(results, cluster, wall_seconds)`` — the number benchmarks divide
        into ``len(stream)`` for real items-per-second throughput.  After a
        run, ``last_sampling_seconds`` holds the wall time spent inside the
        sampling path itself (the offer/process_chunk/shard section), the
        part the chunked and sharded fast paths replace.
        """
        start = time.perf_counter()
        results, cluster = self._execute(stream)
        return results, cluster, time.perf_counter() - start
