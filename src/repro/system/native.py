"""Native (no-sampling) executions — the paper's first baseline pair.

`NativeSparkSystem` forms an RDD from every micro-batch and processes every
item; `NativeFlinkSystem` pushes every item through the pipelined dataflow.
Both produce exact window results (weight-1 samples ⇒ zero-width error
bounds), paying the full per-item processing bill that sampling-based
systems avoid.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..engine.batched.context import StreamingContext
from ..engine.cluster import SimulatedCluster
from ..engine.pipelined.dataflow import Pipeline
from .base import StreamSystem, WindowResult, estimate_pane
from .spark_base import BatchedSystem, full_weight_sample

__all__ = ["NativeSparkSystem", "NativeFlinkSystem"]


class NativeSparkSystem(BatchedSystem):
    """Spark Streaming without sampling: RDD every batch, process all."""

    name = "native-spark"

    def _handle_batch(self, ctx: StreamingContext, items: Sequence[object]):
        rdd = ctx.rdd_of(items)
        rdd.process_all()
        return full_weight_sample(items, self.query.key_fn)


class NativeFlinkSystem(StreamSystem):
    """Flink without sampling: per-item pipelined processing, exact windows."""

    name = "native-flink"

    def _execute(self, stream: List[Tuple[float, object]]):
        cluster = SimulatedCluster(
            nodes=self.config.nodes, cores_per_node=self.config.cores_per_node
        )
        query = self.query
        confidence = self.config.confidence

        def aggregate(pane_items):
            sample = full_weight_sample([item for _ts, item in pane_items], query.key_fn)
            estimate, bound, groups = estimate_pane(sample, query, confidence)
            return estimate, bound, groups, sample.total_items

        raw = (
            Pipeline(cluster)
            .charge()  # per-item query processing, charged exactly once
            .window(
                length=self.window.length,
                slide=self.window.slide,
                aggregate=aggregate,
                charge_processing=False,
            )
            .sink_collect()
            .run(stream)
        )
        # Drop the end-of-stream flush pane to stay comparable with the
        # batched systems, which only fire at slide boundaries.
        last_ts = stream[-1][0] if stream else 0.0
        results: List[WindowResult] = []
        for ts, (estimate, bound, groups, n) in raw:
            if ts > last_ts:
                continue
            results.append(
                WindowResult(
                    end=ts,
                    estimate=estimate,
                    exact=None,
                    error=bound,
                    groups=groups,
                    sampled_items=n,
                    total_items=n,
                )
            )
        return results, cluster
