"""Flink-based StreamApprox (§4.2.2).

The paper adds a sampling *operator* to Flink: items flow through the
pipelined dataflow one at a time, the OASRS operator offers each to its
stratum's reservoir, and at every slide boundary the interval's weighted
sample is emitted downstream, where the window operator merges the last
``w/δ`` interval-samples and evaluates the query.

Structurally this is the cheapest of all six systems — per item it pays
only ingest + one reservoir offer; per *kept* item, one query-processing
charge; and it never forms a batch, launches a task, shuffles, or
synchronises.  That is why Flink-based StreamApprox tops every throughput
figure in the paper.

Declaratively: the pipelined engine driving the ``oasrs`` strategy
(`repro.runtime.strategies.OASRSStrategy`) in its interval role.
"""

from __future__ import annotations

from .base import StreamSystem

__all__ = ["FlinkStreamApproxSystem"]


class FlinkStreamApproxSystem(StreamSystem):
    """Pipelined dataflow with the OASRS sampling operator.

    Items flow one at a time (or in ``SystemConfig.chunk_size`` runs through
    the operators' ``on_chunk`` fast path) into the sampling operator; each
    slide boundary emits a weighted interval sample that the window operator
    merges and aggregates — the cheapest structure of all six systems.
    ``SystemConfig.parallelism`` shards each interval's sampling over real
    worker processes at interval close.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> system = FlinkStreamApproxSystem(
    ...     q, WindowConfig(10, 5), SystemConfig(sampling_fraction=0.5))
    >>> report = system.run([(t / 100.0, ("a", 1.0)) for t in range(1000)])
    >>> round(report.results[0].estimate, 1)
    1.0
    """

    name = "flink-streamapprox"
    engine = "pipelined"
    strategy = "oasrs"
