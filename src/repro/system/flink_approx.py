"""Flink-based StreamApprox (§4.2.2).

The paper adds a sampling *operator* to Flink: items flow through the
pipelined dataflow one at a time, the OASRS operator offers each to its
stratum's reservoir, and at every slide boundary the interval's weighted
sample is emitted downstream, where the window operator merges the last
``w/δ`` interval-samples and evaluates the query.

Structurally this is the cheapest of all six systems — per item it pays
only ingest + one reservoir offer; per *kept* item, one query-processing
charge; and it never forms a batch, launches a task, shuffles, or
synchronises.  That is why Flink-based StreamApprox tops every throughput
figure in the paper.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..core.oasrs import OASRSSampler, WaterFillingAllocation
from ..engine.cluster import SimulatedCluster
from ..engine.pipelined.dataflow import Pipeline
from .base import StreamSystem, WindowResult, estimate_pane

__all__ = ["FlinkStreamApproxSystem"]


class FlinkStreamApproxSystem(StreamSystem):
    """Pipelined dataflow with the OASRS sampling operator.

    Items flow one at a time (or in ``SystemConfig.chunk_size`` runs through
    the operators' ``on_chunk`` fast path) into the sampling operator; each
    slide boundary emits a weighted interval sample that the window operator
    merges and aggregates — the cheapest structure of all six systems.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> system = FlinkStreamApproxSystem(
    ...     q, WindowConfig(10, 5), SystemConfig(sampling_fraction=0.5))
    >>> report = system.run([(t / 100.0, ("a", 1.0)) for t in range(1000)])
    >>> round(report.results[0].estimate, 1)
    1.0
    """

    name = "flink-streamapprox"

    def _execute(self, stream: List[Tuple[float, object]]):
        cluster = SimulatedCluster(
            nodes=self.config.nodes, cores_per_node=self.config.cores_per_node
        )
        query = self.query
        confidence = self.config.confidence

        # Budget per slide interval: fraction × expected items per slide,
        # estimated online from the stream's average rate (first interval
        # uses an equal split; water-filling adapts from then on).
        if stream:
            duration = max(stream[-1][0] - stream[0][0], self.window.slide)
            per_slide = len(stream) * self.window.slide / duration
        else:
            per_slide = 1.0
        budget = max(1, int(self.config.sampling_fraction * per_slide))
        # §2.3: sub-stream sources are declared at the aggregator; give the
        # allocator the stratum count so the first interval splits fairly.
        strata_hint = max(1, len({query.key_fn(item) for _ts, item in stream})) if stream else 1
        sampler = OASRSSampler(
            WaterFillingAllocation(budget, expected_strata=strata_hint),
            key_fn=query.key_fn,
            rng=random.Random(self.config.seed),
        )

        def aggregate(merged):
            estimate, bound, groups = estimate_pane(merged, query, confidence)
            return estimate, bound, groups, merged.total_items, merged.total_count

        raw = (
            Pipeline(cluster)
            .sample_oasrs(sampler, slide=self.window.slide)
            .charge(count_fn=lambda sample: sample.total_items)
            .window_samples(
                intervals_per_window=self.window.intervals_per_window,
                aggregate=aggregate,
                charge_processing=False,
            )
            .sink_collect()
            .run(stream, chunk_size=self.config.chunk_size)
        )
        # Drop the end-of-stream flush pane (it covers a partial interval
        # beyond the last watermark); the batched systems emit no such pane,
        # so keeping it would skew cross-system accuracy comparisons.
        last_ts = stream[-1][0] if stream else 0.0
        results: List[WindowResult] = []
        for ts, (estimate, bound, groups, kept, total) in raw:
            if ts > last_ts:
                continue
            results.append(
                WindowResult(
                    end=ts,
                    estimate=estimate,
                    exact=None,
                    error=bound,
                    groups=groups,
                    sampled_items=kept,
                    total_items=total,
                )
            )
        return results, cluster
