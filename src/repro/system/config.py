"""Compatibility re-export: the configuration types moved to the runtime.

`StreamQuery`, `WindowConfig`, and `SystemConfig` describe an
`repro.runtime.plan.ExecutionPlan`, so they live with the planner in
`repro.runtime.config`; import them from there (or from ``repro``
directly).  This module remains so historical ``repro.system.config``
imports keep working.
"""

from ..runtime.config import StreamQuery, SystemConfig, WindowConfig

__all__ = ["StreamQuery", "WindowConfig", "SystemConfig"]
