"""Batched-engine extension hook for ad-hoc experimental systems.

The four shipping Spark-style systems (native, SRS, STS, StreamApprox) are
declarative configs over the unified runtime — their per-batch sampling
lives in `repro.runtime.strategies` and the micro-batch skeleton in
`repro.runtime.driver.run_batched`.  `BatchedSystem` remains as the
extension point for one-off experimental systems (e.g. the drift-ablation
baselines) that want to plug a custom ``_handle_batch`` into that same
skeleton without registering a full `SamplingStrategy`.

`full_weight_sample` is re-exported from `repro.runtime.strategies` for
compatibility.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.strata import WeightedSample
from ..engine.batched.context import StreamingContext
from ..runtime.driver import run_batched
from ..runtime.source import ListSource
from ..runtime.strategies import full_weight_sample  # noqa: F401  (re-export)
from .base import StreamSystem

__all__ = ["BatchedSystem", "full_weight_sample"]


class BatchedSystem(StreamSystem):
    """Micro-batch hook: subclasses implement `_handle_batch`.

    The runtime's batched loop chops the stream into ``batch_interval``
    micro-batches, calls ``_handle_batch`` for each (which returns the
    batch's `WeightedSample` and charges system-specific costs), and fires
    a sliding-window pane every ``slide`` seconds by merging the in-window
    batch samples — identical to the loop the registered strategies run
    through.

    Example
    -------
    >>> class EchoSystem(BatchedSystem):
    ...     name = "echo"
    ...     def _handle_batch(self, ctx, items):
    ...         return full_weight_sample(items, self.query.key_fn)
    """

    engine = "batched"
    strategy = "none"

    def _handle_batch(self, ctx: StreamingContext, items: Sequence[object]) -> WeightedSample:
        raise NotImplementedError

    def _execute(self, stream: List[Tuple[float, object]]):
        return run_batched(self.plan(ListSource(stream)), handle_batch=self._handle_batch)
