"""Shared micro-batch driver for the Spark-style systems.

All four batched systems (native, SRS, STS, StreamApprox) share the same
skeleton — chop the stream into micro-batches, do per-batch work, and fire
a sliding-window pane every ``slide`` seconds by merging the per-batch
weighted samples inside the window (§5.5: "sampling operations are
performed at every batch interval in the Spark-based systems").  They
differ only in `_handle_batch`, which returns the batch's `WeightedSample`
and charges the system-specific costs on the simulated cluster.

Full-batch systems represent unsampled data as weight-1 strata, so the
same estimation path yields exact results with zero-width error bounds —
no special-casing downstream.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.strata import StratumSample, WeightedSample, combine_worker_samples
from ..engine.batched.context import StreamingContext
from .base import StreamSystem, WindowResult, estimate_pane

__all__ = ["BatchedSystem", "full_weight_sample"]


def full_weight_sample(items: Sequence[object], key_fn) -> WeightedSample:
    """Wrap a fully-kept batch as weight-1 strata (exact representation)."""
    groups: Dict[object, List[object]] = {}
    for item in items:
        groups.setdefault(key_fn(item), []).append(item)
    sample = WeightedSample()
    for key, members in groups.items():
        sample.add(StratumSample(key, tuple(members), len(members), 1.0))
    return sample


class BatchedSystem(StreamSystem):
    """Micro-batch skeleton; subclasses implement `_handle_batch`.

    Chops the stream into ``batch_interval`` micro-batches, calls
    ``_handle_batch`` for each (which returns the batch's `WeightedSample`
    and charges system-specific costs), and fires a sliding-window pane
    every ``slide`` seconds by merging the in-window batch samples.

    Example
    -------
    >>> class EchoSystem(BatchedSystem):
    ...     name = "echo"
    ...     def _handle_batch(self, ctx, items):
    ...         return full_weight_sample(items, self.query.key_fn)
    """

    def _make_context(self) -> StreamingContext:
        return StreamingContext(
            batch_interval=self.config.batch_interval,
            nodes=self.config.nodes,
            cores_per_node=self.config.cores_per_node,
        )

    def _handle_batch(self, ctx: StreamingContext, items: Sequence[object]) -> WeightedSample:
        raise NotImplementedError

    def _execute(self, stream: List[Tuple[float, object]]):
        ctx = self._make_context()
        batcher = ctx.batcher()
        per_slide = int(round(self.window.slide / self.config.batch_interval))
        per_window = int(round(self.window.length / self.config.batch_interval))
        if abs(per_slide - self.window.slide / self.config.batch_interval) > 1e-9:
            raise ValueError("window slide must be a multiple of the batch interval")

        history: List[WeightedSample] = []
        results: List[WindowResult] = []
        for batch in batcher.batches(stream):
            history.append(self._handle_batch(ctx, batch.items))
            if len(history) > per_window:
                del history[: len(history) - per_window]
            if (batch.index + 1) % per_slide == 0:
                pane_sample = combine_worker_samples(history[-per_window:])
                estimate, bound, groups = estimate_pane(
                    pane_sample, self.query, self.config.confidence
                )
                results.append(
                    WindowResult(
                        end=batch.end,
                        estimate=estimate,
                        exact=None,
                        error=bound,
                        groups=groups,
                        sampled_items=pane_sample.total_items,
                        total_items=pane_sample.total_count,
                    )
                )
        return results, ctx.cluster
