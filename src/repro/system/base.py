"""`StreamSystem` — the declarative shell every evaluated system shares.

Since the unified runtime (`repro.runtime`) absorbed the per-system run
loops, a system is just a name plus an ``(engine, strategy)`` pair: ``run``
builds an `ExecutionPlan` from the system's (`StreamQuery`,
`WindowConfig`, `SystemConfig`) triple, hands it to the runtime driver,
and joins the per-pane ground truth into a `SystemReport`.

The result types and estimation helpers (`WindowResult`, `SystemReport`,
`estimate_pane`, `exact_panes`, `accuracy_loss`) live in
`repro.runtime.report` and are re-exported here for compatibility.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..runtime.checkpoint import CheckpointStore, PaneCheckpoint
from ..runtime.driver import execute_plan
from ..runtime.plan import ExecutionPlan, build_plan
from ..runtime.report import (  # noqa: F401  (re-exported compatibility names)
    SystemReport,
    WindowResult,
    accuracy_loss,
    estimate_pane,
    exact_panes,
    join_ground_truth,
)
from ..runtime.source import ListSource, PlanSource, as_source
from .config import StreamQuery, SystemConfig, WindowConfig

__all__ = [
    "WindowResult",
    "SystemReport",
    "StreamSystem",
    "estimate_pane",
    "exact_panes",
    "accuracy_loss",
]


class StreamSystem:
    """Base class for the evaluated systems: a declarative runtime config.

    Subclasses declare ``name``, ``engine`` (``batched`` / ``pipelined`` /
    ``direct``), and ``strategy`` (a registered sampling-strategy name);
    `plan` turns the declaration plus the (`StreamQuery`, `WindowConfig`,
    `SystemConfig`) triple into a validated `ExecutionPlan`, and ``run``
    executes it through `repro.runtime.driver.execute_plan`, joining
    per-pane ground truth into the `SystemReport`.

    ``run`` accepts either an in-memory ``(timestamp, item)`` list or any
    `repro.runtime.source.PlanSource` (e.g. a broker-backed
    `repro.runtime.source.TopicSource`) — every system reads from every
    source.

    Experimental systems may still override ``_execute(stream)`` directly
    instead of declaring an engine (see
    `repro.system.spark_base.BatchedSystem` for the batched hook).

    Example
    -------
    >>> class NullSystem(StreamSystem):
    ...     name = "null"
    ...     def _execute(self, stream):
    ...         from ..engine.cluster import SimulatedCluster
    ...         return [], SimulatedCluster()
    >>> from repro import StreamQuery
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> NullSystem(q).run([]).items_total
    0
    """

    name = "abstract"
    #: Runtime engine this system executes on; subclasses that keep a
    #: bespoke ``_execute`` may leave it empty.
    engine: str = ""
    #: Registered sampling-strategy name driving the plan's sampling stage.
    strategy: str = "none"

    def __init__(
        self,
        query: StreamQuery,
        window: Optional[WindowConfig] = None,
        config: Optional[SystemConfig] = None,
    ) -> None:
        self.query = query
        self.window = window if window is not None else WindowConfig()
        self.config = config if config is not None else SystemConfig()
        #: Per-interval budget-adaptation trajectory of the most recent run
        #: (empty for fixed-fraction configs); also attached to the report.
        self.adaptation: list = []
        #: Pane checkpoints of the most recent run, when the config sets a
        #: `repro.runtime.checkpoint.CheckpointPolicy`; None otherwise.
        self.checkpoints: Optional[CheckpointStore] = None
        #: Checkpoint the in-flight ``run`` is resuming from, if any.
        self._resume_from: Optional[PaneCheckpoint] = None
        #: Diagnostics the driver reports back outside the result tuple
        #: (currently the parallel-fallback reason); reset per run.
        self._run_info: dict = {}

    def plan(self, source: Optional[PlanSource] = None) -> ExecutionPlan:
        """Build this system's validated `ExecutionPlan` for one run."""
        if not self.engine:
            raise TypeError(
                f"system {self.name!r} does not declare a runtime engine; "
                "it executes through a bespoke _execute override"
            )
        return build_plan(
            query=self.query,
            window=self.window,
            config=self.config,
            engine=self.engine,
            strategy=self.strategy,
            source=source,
            name=self.name,
        )

    def run(
        self, stream, resume_from: Optional[PaneCheckpoint] = None
    ) -> SystemReport:
        """Process a stream (a ``(timestamp, item)`` list or a `PlanSource`).

        With ``resume_from`` (a `PaneCheckpoint` of an earlier run over the
        same stream) the run restores the checkpointed state and replays
        only the remaining suffix; the resulting panes are bitwise
        identical to an uninterrupted run's.  Checkpoints are collected in
        ``self.checkpoints`` whenever ``config.checkpoint`` is set.
        """
        events = as_source(stream).events()
        truth = exact_panes(events, self.query, self.window)
        self.adaptation = []
        self.checkpoints = (
            CheckpointStore() if self.config.checkpoint is not None else None
        )
        self._resume_from = resume_from
        self._run_info = {}
        try:
            results, cluster = self._execute(events)
        finally:
            self._resume_from = None
        return SystemReport(
            system=self.name,
            results=join_ground_truth(results, truth),
            virtual_seconds=cluster.elapsed(),
            items_total=len(events),
            parallel_fallback=self._run_info.get("parallel_fallback"),
            columnar_fallback=self._run_info.get("columnar_fallback"),
            adaptation=list(self.adaptation),
            telemetry=self._run_info.get("telemetry"),
        )

    def _execute(self, stream: List[Tuple[float, object]]):
        """Run the system's plan; override only for experimental systems."""
        return execute_plan(
            self.plan(ListSource(stream)),
            adaptation_log=self.adaptation,
            checkpoint_store=self.checkpoints,
            resume_from=self._resume_from,
            run_info=self._run_info,
        )
