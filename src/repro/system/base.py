"""Shared result types and driver helpers for the evaluated systems.

Every system (native Spark/Flink, Spark-SRS, Spark-STS, Spark/Flink
StreamApprox) consumes a finite time-ordered ``(timestamp, item)`` stream,
evaluates the `StreamQuery` per sliding-window pane, and returns a
`SystemReport` holding:

* one `WindowResult` per pane — the approximate output, its ±error bound
  (§3.3), the exact (unsampled) ground truth for the same pane, and the
  achieved accuracy loss ``|approx − exact| / exact`` (the paper's §6.1
  metric),
* the virtual seconds consumed on the `SimulatedCluster`, hence the
  throughput (items/second) and the dataset-processing latency (Fig. 10).

Ground truth is computed outside the cost model — it is measurement
apparatus, not part of the evaluated system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.error import ErrorBound, estimate_error
from ..core.query import approximate_mean, approximate_sum, grouped_mean, grouped_sum
from ..core.strata import WeightedSample
from ..engine.batched.dstream import Batcher, SlidingWindower
from .config import StreamQuery, SystemConfig, WindowConfig

__all__ = [
    "WindowResult",
    "SystemReport",
    "StreamSystem",
    "estimate_pane",
    "exact_panes",
    "accuracy_loss",
]


@dataclass(frozen=True)
class WindowResult:
    """One sliding-window pane's output.

    Pairs the system's approximate ``estimate`` (with its ±``error`` bound
    and optional per-group values) with the ``exact`` ground truth computed
    by re-executing the pane unsampled, from which ``accuracy_loss`` — the
    paper's §6.1 metric — derives.

    Example
    -------
    >>> pane = WindowResult(end=5.0, estimate=98.0, exact=100.0, error=None)
    >>> round(pane.accuracy_loss, 3)
    0.02
    """

    end: float
    estimate: float
    exact: Optional[float]
    error: Optional[ErrorBound]
    groups: Dict[Hashable, float] = field(default_factory=dict)
    exact_groups: Dict[Hashable, float] = field(default_factory=dict)
    sampled_items: int = 0
    total_items: int = 0

    @property
    def accuracy_loss(self) -> Optional[float]:
        """|approx − exact| / exact, averaged over groups when grouped."""
        if self.exact_groups:
            losses = [
                accuracy_loss(self.groups.get(g, 0.0), exact)
                for g, exact in self.exact_groups.items()
                if exact != 0
            ]
            return sum(losses) / len(losses) if losses else None
        if self.exact is None or self.exact == 0:
            return None
        return accuracy_loss(self.estimate, self.exact)


@dataclass
class SystemReport:
    """Outcome of running one system over one input stream.

    Bundles the per-pane `WindowResult`s with the virtual seconds the
    simulated cluster charged, from which the figure-level metrics —
    ``throughput`` (items per virtual second), ``latency`` (Fig. 10), and
    ``mean_accuracy_loss`` — are derived.

    Example
    -------
    >>> report = SystemReport("demo", results=[], virtual_seconds=2.0,
    ...                       items_total=1000)
    >>> report.throughput
    500.0
    """

    system: str
    results: List[WindowResult]
    virtual_seconds: float
    items_total: int

    @property
    def throughput(self) -> float:
        """Input items processed per virtual second."""
        if self.virtual_seconds <= 0:
            return 0.0
        return self.items_total / self.virtual_seconds

    @property
    def latency(self) -> float:
        """Total virtual time to process the dataset (the Fig. 10 metric)."""
        return self.virtual_seconds

    def mean_accuracy_loss(self) -> float:
        """Average accuracy loss over panes with defined ground truth."""
        losses = [r.accuracy_loss for r in self.results if r.accuracy_loss is not None]
        if not losses:
            return 0.0
        return sum(losses) / len(losses)

    def mean_estimates(self) -> List[Tuple[float, float]]:
        """(pane end, estimate) series — the Figure 7 time series."""
        return [(r.end, r.estimate) for r in self.results]


def accuracy_loss(approx: float, exact: float) -> float:
    """The paper's accuracy metric: |approx − exact| / exact."""
    if exact == 0:
        return math.inf if approx != 0 else 0.0
    return abs(approx - exact) / abs(exact)


def estimate_pane(
    sample: WeightedSample,
    query: StreamQuery,
    confidence: float,
) -> Tuple[float, ErrorBound, Dict[Hashable, float]]:
    """Evaluate the query on a pane's weighted sample with error bounds."""
    if query.kind == "sum":
        result = approximate_sum(sample, query.value_fn)
    else:
        result = approximate_mean(sample, query.value_fn)
    bound = estimate_error(result, confidence=confidence)
    groups: Dict[Hashable, float] = {}
    if query.group_fn is not None:
        if query.kind == "sum":
            groups = grouped_sum(sample, query.group_fn, query.value_fn)
        else:
            groups = grouped_mean(sample, query.group_fn, query.value_fn)
    return result.value, bound, groups


def exact_panes(
    stream: Iterable[Tuple[float, object]],
    query: StreamQuery,
    window: WindowConfig,
) -> Dict[float, Tuple[float, Dict[Hashable, float], int]]:
    """Ground truth per pane end: (exact value, exact per-group, item count).

    Uses slide-sized batches so pane boundaries align with every system's
    firing times.  Pure measurement — charges no virtual time.
    """
    batcher = Batcher(window.slide)
    windower = SlidingWindower(window.length, window.slide, window.slide)
    truth: Dict[float, Tuple[float, Dict[Hashable, float], int]] = {}
    for pane in windower.panes(batcher.batches(stream)):
        items = pane.items
        values = [query.value_fn(x) for x in items]
        total = math.fsum(values)
        exact = total if query.kind == "sum" else (total / len(values) if values else 0.0)
        exact_groups: Dict[Hashable, float] = {}
        if query.group_fn is not None:
            sums: Dict[Hashable, float] = {}
            counts: Dict[Hashable, int] = {}
            for item, value in zip(items, values):
                g = query.group_fn(item)
                sums[g] = sums.get(g, 0.0) + value
                counts[g] = counts.get(g, 0) + 1
            if query.kind == "sum":
                exact_groups = sums
            else:
                exact_groups = {g: sums[g] / counts[g] for g in sums}
        truth[round(pane.end, 6)] = (exact, exact_groups, len(items))
    return truth


class StreamSystem:
    """Base class for the evaluated systems.

    Holds the (`StreamQuery`, `WindowConfig`, `SystemConfig`) triple and
    drives ``run``: compute per-pane ground truth, call the subclass's
    ``_execute`` over the timestamped stream, and join the two into a
    `SystemReport`.  Subclasses implement ``_execute(stream) → (results,
    cluster)`` only.

    Example
    -------
    >>> class NullSystem(StreamSystem):
    ...     name = "null"
    ...     def _execute(self, stream):
    ...         from ..engine.cluster import SimulatedCluster
    ...         return [], SimulatedCluster()
    >>> from repro import StreamQuery
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> NullSystem(q).run([]).items_total
    0
    """

    name = "abstract"

    def __init__(
        self,
        query: StreamQuery,
        window: Optional[WindowConfig] = None,
        config: Optional[SystemConfig] = None,
    ) -> None:
        self.query = query
        self.window = window if window is not None else WindowConfig()
        self.config = config if config is not None else SystemConfig()

    def run(self, stream: List[Tuple[float, object]]) -> SystemReport:
        """Process the stream; concrete systems implement `_execute`."""
        truth = exact_panes(stream, self.query, self.window)
        results, cluster = self._execute(stream)
        matched: List[WindowResult] = []
        for result in results:
            key = round(result.end, 6)
            if key in truth:
                exact, exact_groups, count = truth[key]
                matched.append(
                    WindowResult(
                        end=result.end,
                        estimate=result.estimate,
                        exact=exact,
                        error=result.error,
                        groups=result.groups,
                        exact_groups=exact_groups,
                        sampled_items=result.sampled_items,
                        total_items=count,
                    )
                )
        return SystemReport(
            system=self.name,
            results=matched,
            virtual_seconds=cluster.elapsed(),
            items_total=len(stream),
        )

    def _execute(self, stream):
        raise NotImplementedError
