"""Spark-based STS — the stratified-sampling baseline (`sampleByKeyExact`).

Reproduces the second flavour of the improved baseline (§4.1.1): each
micro-batch RDD is grouped by stratum (a full shuffle + worker
synchronization), then the exact per-stratum random sort keeps
``sampling_fraction`` of every stratum.  Statistically this is excellent —
proportional allocation, no stratum overlooked — but the groupBy shuffle,
the per-stratum waitlist sorts and the barriers make it the slowest system
in every throughput figure, to the point that even the native execution
can beat it (Figure 8a).

Its second limitation (§1): the per-stratum fractions are *pre-defined* per
batch, so the realised sample tracks arrival-rate shifts only at batch
granularity and always proportionally — it cannot cap popular strata the
way OASRS's fixed reservoirs do, which is why its throughput stays low
even when accuracy targets would allow a smaller sample.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..core.strata import StratumSample, WeightedSample, stratum_weight
from ..engine.batched.context import StreamingContext
from .spark_base import BatchedSystem

__all__ = ["SparkSTSSystem"]


class SparkSTSSystem(BatchedSystem):
    """Micro-batch pipeline with Spark's `sampleByKeyExact` per batch.

    Groups every micro-batch by stratum (full shuffle + barriers), then
    keeps an exact ``sampling_fraction`` of each stratum — statistically
    strong, structurally the slowest system in every throughput figure.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> system = SparkSTSSystem(q, WindowConfig(10, 5),
    ...                         SystemConfig(sampling_fraction=0.5))
    >>> report = system.run([(t / 100.0, ("a", 1.0)) for t in range(1000)])
    >>> round(report.results[0].estimate, 1)
    1.0
    """

    name = "spark-sts"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = random.Random(self.config.seed)

    def _handle_batch(self, ctx: StreamingContext, items: Sequence[object]) -> WeightedSample:
        key_fn = self.query.key_fn
        rdd = ctx.rdd_of(items)
        sampled_rdd = rdd.sample_by_key(
            self.config.sampling_fraction, key_fn=key_fn, exact=True, rng=self._rng
        )
        kept = sampled_rdd.collect()
        ctx.cluster.process_items(len(kept))

        # Reconstruct per-stratum counts/weights (bookkeeping, clock-free).
        counts: Dict[object, int] = {}
        for item in items:
            counts[key_fn(item)] = counts.get(key_fn(item), 0) + 1
        kept_by_key: Dict[object, List[object]] = {}
        for item in kept:
            kept_by_key.setdefault(key_fn(item), []).append(item)

        sample = WeightedSample()
        for key, count in counts.items():
            members = tuple(kept_by_key.get(key, ()))
            if not members:
                continue
            sample.add(
                StratumSample(key, members, count, stratum_weight(count, len(members)))
            )
        return sample
