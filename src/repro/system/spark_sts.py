"""Spark-based STS — the stratified-sampling baseline (`sampleByKeyExact`).

Reproduces the second flavour of the improved baseline (§4.1.1): each
micro-batch RDD is grouped by stratum (a full shuffle + worker
synchronization), then the exact per-stratum random sort keeps
``sampling_fraction`` of every stratum.  Statistically this is excellent —
proportional allocation, no stratum overlooked — but the groupBy shuffle,
the per-stratum waitlist sorts and the barriers make it the slowest system
in every throughput figure, to the point that even the native execution
can beat it (Figure 8a).

Its second limitation (§1): the per-stratum fractions are *pre-defined* per
batch, so the realised sample tracks arrival-rate shifts only at batch
granularity and always proportionally — it cannot cap popular strata the
way OASRS's fixed reservoirs do, which is why its throughput stays low
even when accuracy targets would allow a smaller sample.

Declaratively: the batched engine driving the ``sts`` strategy
(`repro.runtime.strategies.STSStrategy`).
"""

from __future__ import annotations

from .base import StreamSystem

__all__ = ["SparkSTSSystem"]


class SparkSTSSystem(StreamSystem):
    """Micro-batch pipeline with Spark's `sampleByKeyExact` per batch.

    Groups every micro-batch by stratum (full shuffle + barriers), then
    keeps an exact ``sampling_fraction`` of each stratum (vectorized
    partition-at-a-time when ``SystemConfig.chunk_size > 1``) —
    statistically strong, structurally the slowest system in every
    throughput figure.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> system = SparkSTSSystem(q, WindowConfig(10, 5),
    ...                         SystemConfig(sampling_fraction=0.5))
    >>> report = system.run([(t / 100.0, ("a", 1.0)) for t in range(1000)])
    >>> round(report.results[0].estimate, 1)
    1.0
    """

    name = "spark-sts"
    engine = "batched"
    strategy = "sts"
