"""Spark-based SRS — the "improved baseline" with simple random sampling.

Reproduces the approximate-computing system the paper built from Spark's
existing ``sample`` operator (§4.1.1): every micro-batch is first fully
materialised as an RDD (paying batch formation for *all* items, unlike
StreamApprox), then the pruned random sort draws a uniform
``sampling_fraction`` of it, and only the sampled items are processed.

The batch's sample is represented as a single pseudo-stratum: SRS is
oblivious to sub-streams, which is precisely its accuracy weakness on
skewed inputs (Figures 4b, 6c, 7a) — rare strata are missed with high
probability, and nothing re-weights for them.

Declaratively: the batched engine driving the ``srs`` strategy
(`repro.runtime.strategies.SRSStrategy`).
"""

from __future__ import annotations

from .base import StreamSystem

__all__ = ["SparkSRSSystem"]


class SparkSRSSystem(StreamSystem):
    """Micro-batch pipeline with Spark's `sample` (ScaSRS) per batch.

    Every micro-batch is materialised as a full RDD, uniformly sampled with
    the pruned random sort (vectorized per partition when
    ``SystemConfig.chunk_size > 1``), and only kept items are processed;
    the sample is one unstratified pseudo-stratum, so rare sub-streams can
    vanish.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> system = SparkSRSSystem(q, WindowConfig(10, 5),
    ...                         SystemConfig(sampling_fraction=0.5))
    >>> report = system.run([(t / 100.0, ("a", 1.0)) for t in range(1000)])
    >>> round(report.results[0].estimate, 1)
    1.0
    """

    name = "spark-srs"
    engine = "batched"
    strategy = "srs"
