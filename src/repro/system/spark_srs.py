"""Spark-based SRS — the "improved baseline" with simple random sampling.

Reproduces the approximate-computing system the paper built from Spark's
existing ``sample`` operator (§4.1.1): every micro-batch is first fully
materialised as an RDD (paying batch formation for *all* items, unlike
StreamApprox), then the pruned random sort draws a uniform
``sampling_fraction`` of it, and only the sampled items are processed.

The batch's sample is represented as a single pseudo-stratum: SRS is
oblivious to sub-streams, which is precisely its accuracy weakness on
skewed inputs (Figures 4b, 6c, 7a) — rare strata are missed with high
probability, and nothing re-weights for them.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.strata import StratumSample, WeightedSample, stratum_weight
from ..engine.batched.context import StreamingContext
from .spark_base import BatchedSystem

__all__ = ["SparkSRSSystem"]

_SRS_KEY = "__srs__"


class SparkSRSSystem(BatchedSystem):
    """Micro-batch pipeline with Spark's `sample` (ScaSRS) per batch.

    Every micro-batch is materialised as a full RDD, uniformly sampled with
    the pruned random sort, and only kept items are processed; the sample is
    one unstratified pseudo-stratum, so rare sub-streams can vanish.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> system = SparkSRSSystem(q, WindowConfig(10, 5),
    ...                         SystemConfig(sampling_fraction=0.5))
    >>> report = system.run([(t / 100.0, ("a", 1.0)) for t in range(1000)])
    >>> round(report.results[0].estimate, 1)
    1.0
    """

    name = "spark-srs"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = random.Random(self.config.seed)

    def _handle_batch(self, ctx: StreamingContext, items: Sequence[object]) -> WeightedSample:
        rdd = ctx.rdd_of(items)
        sampled_rdd = rdd.sample(self.config.sampling_fraction, rng=self._rng)
        kept = sampled_rdd.collect()
        ctx.cluster.process_items(len(kept))

        sample = WeightedSample()
        if items:
            weight = stratum_weight(len(items), len(kept))
            sample.add(StratumSample(_SRS_KEY, tuple(kept), len(items), weight))
        return sample
