"""Spark-based StreamApprox (§4.2.1).

The input items of each micro-batch are sampled **on the fly with OASRS
before RDDs are formed** (the paper's `ApproxKafkaRDD`): every arriving
item pays the O(1) reservoir-offer cost, but only the *kept* items pay the
RDD copy, task scheduling and query processing.  No shuffle, no sort, no
synchronization — the structural advantage over both Spark baselines.

The per-stratum reservoir budget for each batch is
``sampling_fraction × batch size``, spread by the adaptive water-filling
policy (small strata kept whole, large strata capped equally), re-derived
every interval from the previous interval's counters — the "adaptive"
in OASRS, needing no pre-defined per-stratum fractions.

Declaratively: the batched engine driving the ``oasrs`` strategy
(`repro.runtime.strategies.OASRSStrategy`) in its batch role.
"""

from __future__ import annotations

from .base import StreamSystem

__all__ = ["SparkStreamApproxSystem"]


class SparkStreamApproxSystem(StreamSystem):
    """Micro-batch pipeline with on-the-fly OASRS before RDD formation.

    Every arriving item pays one O(1) reservoir offer (chunked through
    `OASRSSampler.process_chunk` when ``SystemConfig.chunk_size > 1``, or
    sharded over ``SystemConfig.parallelism`` real worker processes); only
    *kept* items pay RDD formation and query processing — no shuffle,
    sort, or barrier.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> system = SparkStreamApproxSystem(
    ...     q, WindowConfig(10, 5), SystemConfig(sampling_fraction=0.5))
    >>> report = system.run([(t / 100.0, ("a", 1.0)) for t in range(1000)])
    >>> round(report.results[0].estimate, 1)
    1.0
    """

    name = "spark-streamapprox"
    engine = "batched"
    strategy = "oasrs"
