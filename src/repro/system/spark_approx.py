"""Spark-based StreamApprox (§4.2.1).

The input items of each micro-batch are sampled **on the fly with OASRS
before RDDs are formed** (the paper's `ApproxKafkaRDD`): every arriving
item pays the O(1) reservoir-offer cost, but only the *kept* items pay the
RDD copy, task scheduling and query processing.  No shuffle, no sort, no
synchronization — the structural advantage over both Spark baselines.

The per-stratum reservoir budget for each batch is
``sampling_fraction × batch size``, spread by the adaptive water-filling
policy (small strata kept whole, large strata capped equally), re-derived
every interval from the previous interval's counters — the "adaptive"
in OASRS, needing no pre-defined per-stratum fractions.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.oasrs import OASRSSampler, WaterFillingAllocation
from ..core.strata import WeightedSample
from ..engine.batched.context import StreamingContext
from .spark_base import BatchedSystem

__all__ = ["SparkStreamApproxSystem"]


class SparkStreamApproxSystem(BatchedSystem):
    """Micro-batch pipeline with on-the-fly OASRS before RDD formation.

    Every arriving item pays one O(1) reservoir offer (chunked through
    `OASRSSampler.process_chunk` when ``SystemConfig.chunk_size > 1``, with
    RDD partitions as the default chunks); only *kept* items pay RDD
    formation and query processing — no shuffle, sort, or barrier.

    Example
    -------
    >>> from repro import StreamQuery, WindowConfig, SystemConfig
    >>> q = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1])
    >>> system = SparkStreamApproxSystem(
    ...     q, WindowConfig(10, 5), SystemConfig(sampling_fraction=0.5))
    >>> report = system.run([(t / 100.0, ("a", 1.0)) for t in range(1000)])
    >>> round(report.results[0].estimate, 1)
    1.0
    """

    name = "spark-streamapprox"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = random.Random(self.config.seed)
        self._sampler: OASRSSampler = None  # type: ignore[assignment]
        self._policy: WaterFillingAllocation = None  # type: ignore[assignment]

    def _ensure_sampler(self, batch_size: int, strata_hint: int) -> None:
        budget = max(1, int(self.config.sampling_fraction * max(1, batch_size)))
        if self._sampler is None:
            # §2.3: the sub-stream sources are declared at the aggregator, so
            # the first interval can already split its budget across them.
            self._policy = WaterFillingAllocation(budget, expected_strata=strata_hint)
            self._sampler = OASRSSampler(
                self._policy, key_fn=self.query.key_fn, rng=self._rng
            )
        else:
            self._policy.total = budget

    def _handle_batch(self, ctx: StreamingContext, items: Sequence[object]) -> WeightedSample:
        strata_hint = max(1, len({self.query.key_fn(x) for x in items}))
        self._ensure_sampler(len(items), strata_hint)
        # On-the-fly sampling: every arriving item is offered (O(1) each)...
        ctx.cluster.sample_items(len(items), "oasrs")
        if self.config.chunk_size > 1:
            # Chunked mode: the batch's RDD partitions become sampler chunks
            # (or explicit chunk_size-item runs) through the vectorized path.
            for chunk in ctx.chunks_of(items, self.config.chunk_size):
                self._sampler.process_chunk(chunk)
        else:
            self._sampler.offer_many(items)
        sample = self._sampler.close_interval()
        kept = sample.all_items()
        # ...but only the kept items are turned into an RDD and processed.
        rdd = ctx.rdd_of_presampled(kept, skipped=len(items) - len(kept))
        rdd.process_all()
        return sample
