"""Result types and the shared estimation stage of the execution runtime.

Every `ExecutionPlan` ends in the same estimator → report tail: per pane,
the plan's sampling stage hands a `repro.core.strata.WeightedSample` (or
pooled per-stratum moments) to `estimate_pane`, and the driver assembles
`WindowResult`s into one `SystemReport` joined against the ground truth of
`exact_panes`.  Before the unified runtime each ``system/*.py`` carried its
own copy of this tail; it now lives here exactly once.

* `WindowResult` — one pane: approximate output, ±error bound (§3.3), the
  exact (unsampled) ground truth for the same pane, and the achieved
  accuracy loss ``|approx − exact| / exact`` (the paper's §6.1 metric),
* `SystemReport` — the run: per-pane results plus the virtual seconds
  consumed on the `SimulatedCluster`, hence throughput (items/second) and
  dataset-processing latency (Fig. 10).

Ground truth is computed outside the cost model — it is measurement
apparatus, not part of the evaluated system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.error import ErrorBound, estimate_error
from ..core.query import (
    StratumStats,
    approximate_mean,
    approximate_sum,
    grouped_mean,
    grouped_sum,
)
from ..core.recovery import RecoveryEvent
from ..core.strata import WeightedSample
from ..engine.batched.dstream import Batcher, SlidingWindower
from .config import StreamQuery, WindowConfig
from .control import AdaptationPoint

__all__ = [
    "WindowResult",
    "SystemReport",
    "estimate_pane",
    "estimate_pane_stats",
    "exact_panes",
    "accuracy_loss",
    "join_ground_truth",
]


@dataclass(frozen=True)
class WindowResult:
    """One sliding-window pane's output.

    Pairs the system's approximate ``estimate`` (with its ±``error`` bound
    and optional per-group values) with the ``exact`` ground truth computed
    by re-executing the pane unsampled, from which ``accuracy_loss`` — the
    paper's §6.1 metric — derives.

    Example
    -------
    >>> pane = WindowResult(end=5.0, estimate=98.0, exact=100.0, error=None)
    >>> round(pane.accuracy_loss, 3)
    0.02
    """

    end: float
    estimate: float
    exact: Optional[float]
    error: Optional[ErrorBound]
    groups: Dict[Hashable, float] = field(default_factory=dict)
    exact_groups: Dict[Hashable, float] = field(default_factory=dict)
    sampled_items: int = 0
    total_items: int = 0
    #: Worker-loss incidents absorbed by this pane (discard-and-rewiden):
    #: empty for healthy panes; populated from the sharded executor's
    #: recovery log when `SystemConfig.faults` injected a kill.
    recovery: Tuple[RecoveryEvent, ...] = ()

    @property
    def accuracy_loss(self) -> Optional[float]:
        """|approx − exact| / exact, averaged over groups when grouped."""
        if self.exact_groups:
            losses = [
                accuracy_loss(self.groups.get(g, 0.0), exact)
                for g, exact in self.exact_groups.items()
                if exact != 0
            ]
            return sum(losses) / len(losses) if losses else None
        if self.exact is None or self.exact == 0:
            return None
        return accuracy_loss(self.estimate, self.exact)


@dataclass
class SystemReport:
    """Outcome of running one system over one input stream.

    Bundles the per-pane `WindowResult`s with the virtual seconds the
    simulated cluster charged, from which the figure-level metrics —
    ``throughput`` (items per virtual second), ``latency`` (Fig. 10), and
    ``mean_accuracy_loss`` — are derived.

    Example
    -------
    >>> report = SystemReport("demo", results=[], virtual_seconds=2.0,
    ...                       items_total=1000)
    >>> report.throughput
    500.0
    """

    system: str
    results: List[WindowResult]
    virtual_seconds: float
    items_total: int
    #: Why a ``parallelism > 1`` run degraded to in-process sampling
    #: (``REPRO_NO_MP``, missing fork support, a mid-run pool failure, or
    #: all-but-one workers dead) — None when no parallelism was requested
    #: or the persistent worker pool stayed healthy throughout.
    parallel_fallback: Optional[str] = None
    #: Why the run left the columnar record path for the per-item shim
    #: (NumPy missing, payloads the codec cannot represent, custom
    #: key/value projections, or ``REPRO_NO_COLUMNAR``) — None when the
    #: stream flowed through NumPy columns end to end.
    columnar_fallback: Optional[str] = None
    #: Per-interval budget-adaptation trajectory (empty for fixed-fraction
    #: runs): one `repro.runtime.control.AdaptationPoint` per pane, showing
    #: the measured margin and the sample budget chosen for the next
    #: interval — the §4.2 loop made visible.
    adaptation: List[AdaptationPoint] = field(default_factory=list)
    #: The run's live telemetry (`repro.obs.RunTelemetry`: tracer, metrics
    #: registry, per-pane stage timings) when the run was configured with
    #: ``SystemConfig(telemetry=…)`` — None otherwise.  Deliberately
    #: excluded from golden fingerprints and result comparisons: telemetry
    #: observes a run, it never changes one.
    telemetry: Optional[object] = None

    @property
    def throughput(self) -> float:
        """Input items processed per virtual second."""
        if self.virtual_seconds <= 0:
            return 0.0
        return self.items_total / self.virtual_seconds

    @property
    def latency(self) -> float:
        """Total virtual time to process the dataset (the Fig. 10 metric)."""
        return self.virtual_seconds

    def mean_accuracy_loss(self) -> float:
        """Average accuracy loss over panes with defined ground truth."""
        losses = [r.accuracy_loss for r in self.results if r.accuracy_loss is not None]
        if not losses:
            return 0.0
        return sum(losses) / len(losses)

    def mean_estimates(self) -> List[Tuple[float, float]]:
        """(pane end, estimate) series — the Figure 7 time series."""
        return [(r.end, r.estimate) for r in self.results]

    @property
    def recovery_events(self) -> List[RecoveryEvent]:
        """All worker-loss incidents across the run's panes, in pane order."""
        return [event for r in self.results for event in r.recovery]

    @property
    def items_lost(self) -> int:
        """Total items discarded to worker failures (coverage shortfall)."""
        return sum(event.items_lost for event in self.recovery_events)


def accuracy_loss(approx: float, exact: float) -> float:
    """The paper's accuracy metric: |approx − exact| / exact."""
    if exact == 0:
        return math.inf if approx != 0 else 0.0
    return abs(approx - exact) / abs(exact)


def estimate_pane(
    sample: WeightedSample,
    query: StreamQuery,
    confidence: float,
) -> Tuple[float, ErrorBound, Dict[Hashable, float]]:
    """Evaluate the query on a pane's weighted sample with error bounds."""
    value, bound, groups, _strata = estimate_pane_stats(sample, query, confidence)
    return value, bound, groups


def estimate_pane_stats(
    sample: WeightedSample,
    query: StreamQuery,
    confidence: float,
) -> Tuple[float, ErrorBound, Dict[Hashable, float], List[StratumStats]]:
    """`estimate_pane` plus the per-stratum statistics behind the estimate.

    The extra `StratumStats` list is what the budget control loop feeds
    back into `VirtualCostFunction.observe` — variance and count per
    stratum, exactly the Equation-9 inputs.

    ``kind="quantile"`` panes estimate the stream's q-quantile with a
    distribution-free DKW interval (`repro.core.quantiles`) as the error
    bound; the stratum statistics still come from the mean estimator so
    the budget loop keeps its Equation-9 inputs.
    """
    if query.kind == "quantile":
        return _estimate_quantile_pane(sample, query, confidence)
    if query.kind == "sum":
        result = approximate_sum(sample, query.value_fn)
    else:
        result = approximate_mean(sample, query.value_fn)
    bound = estimate_error(result, confidence=confidence)
    groups: Dict[Hashable, float] = {}
    if query.group_fn is not None:
        if query.kind == "sum":
            groups = grouped_sum(sample, query.group_fn, query.value_fn)
        else:
            groups = grouped_mean(sample, query.group_fn, query.value_fn)
    return result.value, bound, groups, list(result.strata)


def _estimate_quantile_pane(
    sample: WeightedSample,
    query: StreamQuery,
    confidence: float,
) -> Tuple[float, ErrorBound, Dict[Hashable, float], List[StratumStats]]:
    """Quantile pane: DKW-bracketed order statistic + Eq.-9 stratum stats."""
    from ..core.quantiles import approximate_quantile, quantile_bound

    stats = approximate_mean(sample, query.value_fn)
    strata = list(stats.strata)
    if sample.total_items == 0:
        empty = ErrorBound(value=0.0, variance=0.0, confidence=confidence, margin=0.0)
        return 0.0, empty, {}, strata
    estimate = approximate_quantile(
        sample, query.q, value_fn=query.value_fn, confidence=confidence
    )
    return estimate.value, quantile_bound(estimate), {}, strata


def _exact_quantile(values: List[float], q: float) -> float:
    """Empirical q-quantile: smallest value with cumulative count ≥ q·n.

    The same convention as `repro.core.quantiles.approximate_quantile` at
    unit weights, so a full-weight (strategy ``none``) run reproduces the
    ground truth exactly.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[min(index, len(ordered) - 1)]


def exact_panes(
    stream: Iterable[Tuple[float, object]],
    query: StreamQuery,
    window: WindowConfig,
) -> Dict[float, Tuple[float, Dict[Hashable, float], int]]:
    """Ground truth per pane end: (exact value, exact per-group, item count).

    Uses slide-sized batches so pane boundaries align with every system's
    firing times.  Pure measurement — charges no virtual time.
    """
    batcher = Batcher(window.slide)
    windower = SlidingWindower(window.length, window.slide, window.slide)
    truth: Dict[float, Tuple[float, Dict[Hashable, float], int]] = {}
    for pane in windower.panes(batcher.batches(stream)):
        items = pane.items
        values = [query.value_fn(x) for x in items]
        total = math.fsum(values)
        if query.kind == "sum":
            exact = total
        elif query.kind == "quantile":
            exact = _exact_quantile(values, query.q)
        else:
            exact = total / len(values) if values else 0.0
        exact_groups: Dict[Hashable, float] = {}
        if query.group_fn is not None:
            sums: Dict[Hashable, float] = {}
            counts: Dict[Hashable, int] = {}
            for item, value in zip(items, values):
                g = query.group_fn(item)
                sums[g] = sums.get(g, 0.0) + value
                counts[g] = counts.get(g, 0) + 1
            if query.kind == "sum":
                exact_groups = sums
            else:
                exact_groups = {g: sums[g] / counts[g] for g in sums}
        truth[round(pane.end, 6)] = (exact, exact_groups, len(items))
    return truth


def join_ground_truth(
    results: List[WindowResult],
    truth: Dict[float, Tuple[float, Dict[Hashable, float], int]],
) -> List[WindowResult]:
    """Attach per-pane ground truth to a driver's raw results.

    Panes without a matching truth entry (e.g. an end-of-stream flush pane)
    are dropped, keeping every system's report comparable.
    """
    matched: List[WindowResult] = []
    for result in results:
        key = round(result.end, 6)
        if key in truth:
            exact, exact_groups, count = truth[key]
            matched.append(
                WindowResult(
                    end=result.end,
                    estimate=result.estimate,
                    exact=exact,
                    error=result.error,
                    groups=result.groups,
                    exact_groups=exact_groups,
                    sampled_items=result.sampled_items,
                    total_items=count,
                    recovery=result.recovery,
                )
            )
    return matched
