"""Configuration types the planner builds an `ExecutionPlan` from.

A run is described by three pieces:

* `StreamQuery` — what to compute: the stratum key function (the
  sub-stream source of §2.3), the numeric value per item, the aggregation
  kind (``sum`` or ``mean``; the linear queries of §3.2), and optionally a
  group function for per-group outputs (the case-study queries),
* `WindowConfig` — the sliding-window computation (§2.2),
* `SystemConfig` — deployment shape (nodes, cores, batch interval) and the
  sampling fraction (the output of the virtual cost function; benches sweep
  it directly, examples derive it from a budget via `repro.core.budget`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Union

from ..core.budget import AccuracyBudget, LatencyBudget, ResourceBudget
from ..core.records import item_key, item_value
from ..core.recovery import FaultSchedule
from ..engine.costs import CostProfile
from ..obs import RunTelemetry, TelemetryConfig
from .checkpoint import CheckpointPolicy

__all__ = ["StreamQuery", "WindowConfig", "SystemConfig", "QueryBudget"]

#: The three user-facing budget kinds the virtual cost function translates
#: into per-interval sample sizes (§2.3 / §7).
QueryBudget = Union[AccuracyBudget, LatencyBudget, ResourceBudget]


@dataclass(frozen=True)
class StreamQuery:
    """A linear streaming query over a stratified input stream.

    Bundles the paper's per-query callables: ``key_fn`` maps an item to its
    sub-stream source (the stratum, §2.3), ``value_fn`` extracts the number
    being aggregated, ``kind`` picks the linear aggregate, and ``group_fn``
    optionally splits the output per group (the case-study queries).

    The defaults are the canonical projections of the classic
    ``(key, value)`` item shape (`repro.core.records.item_key` /
    `repro.core.records.item_value`).  Keeping them enables the columnar
    record path end-to-end: the drivers recognise the canonical
    projections by identity and operate on the stream's interned key and
    value columns directly, falling back to the per-item shim (with
    ``SystemReport.columnar_fallback`` set) for custom callables.

    Example
    -------
    >>> q = StreamQuery(kind="mean", name="window-mean")
    >>> q.key_fn(("A", 3.5)), q.value_fn(("A", 3.5))
    ('A', 3.5)
    """

    key_fn: Callable[[object], Hashable] = item_key
    value_fn: Callable[[object], float] = item_value
    kind: str = "mean"  # "mean" | "sum" | "quantile"
    group_fn: Optional[Callable[[object], Hashable]] = None
    name: str = "query"
    #: The quantile rank for ``kind="quantile"`` (0.5 = median); ignored by
    #: the linear kinds.  Quantile panes estimate the stream's q-quantile
    #: from the weighted sample (`repro.core.quantiles.approximate_quantile`)
    #: and carry a distribution-free DKW interval as their error bound.
    q: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in ("mean", "sum", "quantile"):
            raise ValueError(
                f"query kind must be 'mean', 'sum', or 'quantile', got {self.kind!r}"
            )
        if not callable(self.key_fn):
            raise ValueError("key_fn must be callable (item -> stratum key)")
        if not callable(self.value_fn):
            raise ValueError("value_fn must be callable (item -> numeric value)")
        if self.group_fn is not None and not callable(self.group_fn):
            raise ValueError("group_fn must be callable (item -> group) when given")
        if not 0 < self.q < 1:
            raise ValueError(f"quantile rank q must be in (0, 1), got {self.q}")
        if self.kind == "quantile" and self.group_fn is not None:
            raise ValueError(
                "group_fn is not supported with kind 'quantile'; per-group "
                "order statistics have no pooled estimation path"
            )


@dataclass(frozen=True)
class WindowConfig:
    """Sliding-window parameters; the paper defaults to w=10 s, δ=5 s.

    A window of ``length`` seconds is evaluated every ``slide`` seconds;
    the length must be a whole multiple of the slide so each pane is an
    exact union of slide-sized intervals.

    Example
    -------
    >>> WindowConfig(length=10.0, slide=5.0).intervals_per_window
    2
    """

    length: float = 10.0
    slide: float = 5.0

    def __post_init__(self) -> None:
        if self.length <= 0 or self.slide <= 0:
            raise ValueError(
                f"window length and slide must be positive, got "
                f"length={self.length}, slide={self.slide}"
            )
        if self.slide > self.length:
            raise ValueError(
                f"slide ({self.slide}) larger than the window ({self.length}) "
                "would drop items"
            )
        ratio = self.length / self.slide
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError(
                f"window length ({self.length}) must be a whole multiple of "
                f"the slide ({self.slide}) so each pane is an exact union of "
                "slide-sized intervals"
            )

    @property
    def intervals_per_window(self) -> int:
        return int(round(self.length / self.slide))


@dataclass(frozen=True)
class SystemConfig:
    """Deployment shape + sampling fraction (or query budget) for one run.

    How much to sample is specified one of two ways:

    * ``sampling_fraction`` — a fixed fraction, the classic benchmark knob.
      The per-interval sample budget is frozen at plan-build time.
    * ``budget`` — a user-facing query budget (`AccuracyBudget`,
      `LatencyBudget`, or `ResourceBudget` from `repro.core.budget`).  The
      runtime then closes the paper's §4.2 loop: the first interval starts
      from ``sampling_fraction`` (now a seed, not a contract), and after
      every pane the observed per-stratum statistics and measured CI margin
      feed the virtual cost function + adaptive controller
      (`repro.runtime.control.BudgetController`), re-deriving the next
      interval's sample budget.  Requires a sampling strategy — the planner
      rejects ``budget`` with strategy ``none``.

    ``nodes``/``cores_per_node`` describe the *simulated* cluster the cost
    model charges against; ``chunk_size`` and ``parallelism`` control the
    *real* execution fast paths introduced with the vectorized sampling
    stack:

    * ``chunk_size = K`` (``K >= 2``) routes items through the chunked
      sampler APIs (`OASRSSampler.process_chunk`, the vectorized SRS/STS
      chunk samplers, the pipelined ``on_chunk`` operators) in runs of
      ``K`` — statistically equivalent to the per-item path, several
      times faster.  ``0`` (default) keeps the legacy item-at-a-time
      execution.  Honoured by every system through the unified runtime.
    * ``parallelism = N`` (``N >= 2``) shards each sampling interval over
      ``N`` real worker processes via
      `repro.core.distributed.ShardedExecutor`.  Supported by every
      OASRS-based system (spark/flink/native StreamApprox); the planner
      raises `repro.runtime.plan.PlanError` for strategies that cannot
      shard without synchronization (srs, sts, none).

    Example
    -------
    >>> cfg = SystemConfig(sampling_fraction=0.4, chunk_size=256, parallelism=4)
    >>> cfg.chunk_size, cfg.parallelism
    (256, 4)
    """

    sampling_fraction: float = 0.6
    #: Optional query budget; when set, the sample size adapts per interval
    #: (see class docstring) instead of staying frozen at
    #: ``sampling_fraction``.
    budget: Optional[QueryBudget] = None
    batch_interval: float = 1.0
    nodes: int = 1
    cores_per_node: int = 8
    seed: int = 42
    confidence: float = 0.95
    chunk_size: int = 0
    parallelism: int = 1
    #: Optional override of the simulated cluster's calibrated cost
    #: constants (`repro.engine.costs.DEFAULT_COSTS`); the robustness
    #: tests perturb these to check the figure orderings are structural.
    costs: Optional[CostProfile] = None
    #: Optional pane checkpointing (`repro.runtime.checkpoint.CheckpointPolicy`).
    #: When set, the driver snapshots the full sampling/controller state at
    #: pane boundaries into a `CheckpointStore`, and ``execute_plan`` /
    #: ``StreamSystem.run`` accept ``resume_from=`` to restart mid-stream
    #: with bitwise-identical remaining panes.  Requires a replayable
    #: source (the planner rejects others).
    checkpoint: Optional[CheckpointPolicy] = None
    #: Optional deterministic fault injection
    #: (`repro.core.recovery.FaultSchedule`): kill shard workers at chosen
    #: intervals and recover by discard-and-rewiden.  Requires
    #: ``parallelism >= 2`` with a shardable strategy.
    faults: Optional[FaultSchedule] = None
    #: Optional observability (`repro.obs.TelemetryConfig`): per-pane stage
    #: timing, counters, and nested trace spans, surfaced as
    #: ``SystemReport.telemetry`` and exportable to chrome://tracing.  A
    #: live `repro.obs.RunTelemetry` instance is also accepted when the
    #: caller wants to hold the collector directly.  Telemetry never
    #: touches RNG state or estimates — runs stay bitwise identical with
    #: it on (golden-pinned) — and costs nothing when left ``None``.
    telemetry: Union[None, TelemetryConfig, RunTelemetry] = None

    def __post_init__(self) -> None:
        if not 0 < self.sampling_fraction <= 1:
            raise ValueError(
                f"sampling_fraction must be in (0, 1], got {self.sampling_fraction}"
            )
        if self.budget is not None and not isinstance(
            self.budget, (AccuracyBudget, LatencyBudget, ResourceBudget)
        ):
            raise ValueError(
                f"budget must be an AccuracyBudget, LatencyBudget, or "
                f"ResourceBudget, got {type(self.budget).__name__}"
            )
        if self.batch_interval <= 0:
            raise ValueError("batch_interval must be positive")
        if self.nodes <= 0 or self.cores_per_node <= 0:
            raise ValueError("nodes and cores_per_node must be positive")
        if not 0 < self.confidence < 1:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.chunk_size < 0:
            raise ValueError(f"chunk_size must be non-negative, got {self.chunk_size}")
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be at least 1, got {self.parallelism}")
        if self.checkpoint is not None and not isinstance(
            self.checkpoint, CheckpointPolicy
        ):
            raise ValueError(
                f"checkpoint must be a CheckpointPolicy, "
                f"got {type(self.checkpoint).__name__}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSchedule):
            raise ValueError(
                f"faults must be a FaultSchedule, got {type(self.faults).__name__}"
            )
        if self.telemetry is not None and not isinstance(
            self.telemetry, (TelemetryConfig, RunTelemetry)
        ):
            raise ValueError(
                f"telemetry must be a TelemetryConfig or RunTelemetry, "
                f"got {type(self.telemetry).__name__}"
            )
