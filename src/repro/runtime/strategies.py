"""Pluggable sampling strategies — the runtime's sampling stage registry.

A `SamplingStrategy` packages one of the paper's sampling designs behind a
single chunk-first interface so any engine can drive it:

* ``none``  — no sampling; every item is processed (the native baselines),
* ``srs``   — Spark's ``sample``: pruned random sort per micro-batch
  (`repro.sampling.srs`),
* ``sts``   — Spark's ``sampleByKeyExact``: groupBy shuffle + per-stratum
  random sort (`repro.sampling.sts`),
* ``oasrs`` — the paper's online adaptive stratified reservoir sampling
  (`repro.core.oasrs`), the only strategy that also supports interval
  sampling for the pipelined/direct engines and real multi-process
  sharding (`repro.core.distributed.ShardedExecutor`).

Strategy classes are *stateless descriptors*; ``bind(plan)`` creates the
per-run `BoundStrategy` carrying the RNG, samplers, and adaptive policies.
A bound strategy serves two engine roles:

* ``sample_batch(ctx, items)`` — the batched engine calls this once per
  micro-batch; it charges the strategy's system-specific costs on the
  context's cluster and returns the batch's ``WeightedSample``
  (full-weight strata for ``none``, so exact systems flow through the
  same estimator).
* ``interval_sampler(budget, strata_hint)`` — the pipelined and direct
  engines request a per-slide-interval sampler (``offer`` /
  ``process_chunk`` / ``close_interval``); only interval-capable
  strategies (``samples_intervals = True``) provide one.

``SystemConfig.chunk_size`` routes every strategy through its vectorized
chunk path; ``SystemConfig.parallelism`` shards interval sampling over
real worker processes where the strategy supports it.  New strategies
register with `register_strategy` and immediately work in every system
that names them — no new run loop required.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Type

from ..core._vector import np as _np
from ..core.distributed import ShardedExecutor, ShardedIntervalSampler
from ..core.oasrs import OASRSSampler, WaterFillingAllocation
from ..core.records import ColumnSlice, _StratumMembers, item_key
from ..core.recovery import (
    restore_attrs,
    restore_sampler,
    sampler_state,
    snapshot_attrs,
)
from ..core.strata import StratumSample, WeightedSample, stratum_weight
from ..engine.batched.context import StreamingContext
from .plan import ExecutionPlan, PlanError

__all__ = [
    "SamplingStrategy",
    "BoundStrategy",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "full_weight_sample",
    "NoSamplingStrategy",
    "SRSStrategy",
    "STSStrategy",
    "OASRSStrategy",
]

BATCHED, PIPELINED, DIRECT = "batched", "pipelined", "direct"

_REGISTRY: Dict[str, "SamplingStrategy"] = {}


def register_strategy(cls: Type["SamplingStrategy"]) -> Type["SamplingStrategy"]:
    """Class decorator: make a strategy addressable by ``cls.name``."""
    _REGISTRY[cls.name] = cls()
    return cls


def get_strategy(name: str) -> "SamplingStrategy":
    """Look up a registered strategy; unknown names are a `PlanError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PlanError(
            f"unknown sampling strategy {name!r}; "
            f"available: {', '.join(available_strategies())}"
        ) from None


def available_strategies() -> List[str]:
    return sorted(_REGISTRY)


def full_weight_sample(items: Sequence[object], key_fn) -> WeightedSample:
    """Wrap a fully-kept batch as weight-1 strata (exact representation).

    Column chunks with the canonical key projection group by interned code
    in one vectorized pass; stratum order (first appearance) and member
    tuples are identical to the per-item dict grouping.
    """
    if _np is not None and isinstance(items, ColumnSlice) and key_fn is item_key:
        sample = WeightedSample()
        codes, values, table = items.codes, items.values, items.key_table
        if codes.size == 0:
            return sample
        uniq, first = _np.unique(codes, return_index=True)
        order = (
            _np.argsort(first, kind="stable").tolist() if uniq.size > 1 else (0,)
        )
        for gi in order:
            key = table[uniq[gi]]
            member_values = values if uniq.size == 1 else values[codes == uniq[gi]]
            # Lazy members: estimators read the raw value column; tuples
            # materialize only if a consumer actually indexes the stratum.
            members = _StratumMembers(key, member_values)
            sample.add(StratumSample(key, members, len(members), 1.0))
        return sample
    groups: Dict[object, List[object]] = {}
    for item in items:
        groups.setdefault(key_fn(item), []).append(item)
    sample = WeightedSample()
    for key, members in groups.items():
        sample.add(StratumSample(key, tuple(members), len(members), 1.0))
    return sample


class SamplingStrategy:
    """Descriptor for one sampling design: capabilities + bind()."""

    name = "abstract"
    #: Engines this strategy can run on.
    engines: frozenset = frozenset()
    #: True when ``parallelism > 1`` can shard this strategy's sampling.
    supports_parallelism = False
    #: True when the strategy provides per-interval samplers (pipelined /
    #: direct engines); batch-only strategies leave this False.
    samples_intervals = False

    def bind(self, plan: ExecutionPlan) -> "BoundStrategy":
        """Create the per-run state (RNG, samplers, adaptive policies)."""
        raise NotImplementedError


class BoundStrategy:
    """Per-run strategy state; engine drivers call the role methods.

    Besides the two engine roles, a bound strategy is the *actuation
    surface* of the budget control loop (`repro.runtime.control`): between
    panes the drivers call ``set_sampling_fraction`` (batched role) or
    ``set_interval_budget`` (interval role) to re-derive the next
    interval's sample size from the controller's decision.  Fixed-fraction
    runs never call either, so their execution is bit-for-bit unchanged.
    """

    def __init__(self, strategy: SamplingStrategy, plan: ExecutionPlan) -> None:
        self.strategy = strategy
        self.plan = plan
        self._fraction_override: float = None  # type: ignore[assignment]
        self.telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        """Give the run's `repro.obs.RunTelemetry` to the strategy.

        Drivers call this right after ``bind`` (before any sampler or
        executor is built) so sharded strategies can hand the metrics
        registry to their worker pools — cross-process costs (spawn,
        policy-snapshot ship, shm grow, pickle fallback) are then
        attributed per transport tier.  ``None`` means telemetry is off.
        """
        self.telemetry = telemetry

    @property
    def samples_intervals(self) -> bool:
        return self.strategy.samples_intervals

    @property
    def sampling_fraction(self) -> float:
        """The fraction batched-role sampling uses this batch.

        ``plan.config.sampling_fraction`` unless the budget controller has
        overridden it via ``set_sampling_fraction``.
        """
        if self._fraction_override is not None:
            return self._fraction_override
        return self.plan.config.sampling_fraction

    def set_sampling_fraction(self, fraction: float) -> None:
        """Budget-loop actuation (batched role): next batches sample at this rate."""
        self._fraction_override = min(1.0, max(0.0, fraction))

    def sample_batch(self, ctx: StreamingContext, items: Sequence[object]) -> WeightedSample:
        """Sample one micro-batch, charging costs on ``ctx.cluster``."""
        raise PlanError(
            f"strategy {self.strategy.name!r} cannot run on the batched engine"
        )

    def interval_sampler(self, budget: int, strata_hint: int):
        """Return a per-interval sampler (offer/process_chunk/close_interval)."""
        raise PlanError(
            f"strategy {self.strategy.name!r} does not sample per interval"
        )

    def set_interval_budget(self, total: int) -> None:
        """Budget-loop actuation (interval role): re-target the next interval.

        Only meaningful after ``interval_sampler``; strategies without an
        interval role ignore it.
        """

    # -- checkpoint / recovery role -----------------------------------------

    def state(self) -> dict:
        """Plain-data snapshot of the batched-role per-run state.

        Taken at pane boundaries by `repro.runtime.checkpoint`; subclasses
        extend the dict with their RNGs/samplers.  Interval-role sampler
        state is captured separately through the sampler the driver holds.
        """
        return {"fraction_override": self._fraction_override}

    def restore(self, state: dict) -> None:
        """Restore a `state` snapshot exactly (RNG streams included)."""
        self._fraction_override = state["fraction_override"]

    def drain_recovery_events(self) -> list:
        """Return and clear worker-loss events since the last pane.

        Non-sharded strategies never lose workers; the base returns an
        empty list so drivers can call this unconditionally.
        """
        return []

    def close(self) -> None:
        """Release per-run resources (worker pools); idempotent.

        Drivers call this when the run reports, so sharded strategies can
        drain their persistent worker pools; strategies without external
        resources inherit this no-op.
        """

    def parallel_fallback(self) -> Optional[str]:
        """Why parallel execution degraded to in-process, or None.

        Surfaced as ``SystemReport.parallel_fallback`` so "N workers
        requested, 1 used" is visible instead of silently swallowed.
        Strategies that never shard return None.
        """
        return None


@register_strategy
class NoSamplingStrategy(SamplingStrategy):
    """Process everything: the exact, full-cost baseline stage.

    On the batched engine every item pays RDD formation, task scheduling,
    and query processing; the batch is represented as weight-1 strata so
    the shared estimator yields exact results with zero-width error
    bounds.  On the pipelined engine the driver aggregates exact panes
    directly (`ExecutionPlan` with strategy ``none`` inserts no sampling
    operator).  ``chunk_size`` is honoured structurally — RDD partitions
    and pipelined chunk delivery are the chunks — and changes no output.
    """

    name = "none"
    engines = frozenset({BATCHED, PIPELINED})

    def bind(self, plan: ExecutionPlan) -> "BoundStrategy":
        return _BoundNoSampling(self, plan)


class _BoundNoSampling(BoundStrategy):
    def sample_batch(self, ctx: StreamingContext, items: Sequence[object]) -> WeightedSample:
        rdd = ctx.rdd_of(items)
        rdd.process_all()
        return full_weight_sample(items, self.plan.query.key_fn)


@register_strategy
class SRSStrategy(SamplingStrategy):
    """Spark ``sample``: uniform pruned-random-sort SRS per micro-batch.

    The whole batch is materialised as an RDD first (all items pay the
    copy), then the ScaSRS random sort keeps ``sampling_fraction`` of it
    as a single unstratified pseudo-stratum — rare sub-streams can vanish,
    the accuracy weakness of Figures 4b/6c/7a.  With ``chunk_size > 1``
    the per-partition sampling runs through the vectorized
    `repro.sampling.srs.ScaSRSSampler.sample_chunk` path (one NumPy draw
    per partition instead of one RNG call per item).
    """

    name = "srs"
    engines = frozenset({BATCHED})

    _SRS_KEY = "__srs__"

    def bind(self, plan: ExecutionPlan) -> "BoundStrategy":
        return _BoundSRS(self, plan)


class _BoundSRS(BoundStrategy):
    def __init__(self, strategy: SamplingStrategy, plan: ExecutionPlan) -> None:
        super().__init__(strategy, plan)
        self._rng = random.Random(plan.config.seed)

    def state(self) -> dict:
        state = super().state()
        state["rng"] = self._rng.getstate()
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        self._rng.setstate(state["rng"])

    def sample_batch(self, ctx: StreamingContext, items: Sequence[object]) -> WeightedSample:
        config = self.plan.config
        rdd = ctx.rdd_of(items)
        sampled_rdd = rdd.sample(
            self.sampling_fraction, rng=self._rng, chunked=config.chunk_size > 1
        )
        kept = sampled_rdd.collect()
        ctx.cluster.process_items(len(kept))

        sample = WeightedSample()
        if items:
            weight = stratum_weight(len(items), len(kept))
            sample.add(StratumSample(SRSStrategy._SRS_KEY, tuple(kept), len(items), weight))
        return sample


@register_strategy
class STSStrategy(SamplingStrategy):
    """Spark ``sampleByKeyExact``: groupBy shuffle + per-stratum SRS.

    Statistically strong (proportional allocation, no stratum overlooked)
    but structurally the slowest: the shuffle, per-stratum waitlist sorts,
    and barriers are all charged.  With ``chunk_size > 1`` the grouping
    and per-stratum sampling consume the batch partition-by-partition
    through `repro.sampling.sts.StratifiedSampler.sample_by_key_chunked`.
    """

    name = "sts"
    engines = frozenset({BATCHED})

    def bind(self, plan: ExecutionPlan) -> "BoundStrategy":
        return _BoundSTS(self, plan)


class _BoundSTS(BoundStrategy):
    def __init__(self, strategy: SamplingStrategy, plan: ExecutionPlan) -> None:
        super().__init__(strategy, plan)
        self._rng = random.Random(plan.config.seed)

    def state(self) -> dict:
        state = super().state()
        state["rng"] = self._rng.getstate()
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        self._rng.setstate(state["rng"])

    def sample_batch(self, ctx: StreamingContext, items: Sequence[object]) -> WeightedSample:
        config = self.plan.config
        key_fn = self.plan.query.key_fn
        rdd = ctx.rdd_of(items)
        sampled_rdd = rdd.sample_by_key(
            self.sampling_fraction,
            key_fn=key_fn,
            exact=True,
            rng=self._rng,
            chunked=config.chunk_size > 1,
        )
        kept = sampled_rdd.collect()
        ctx.cluster.process_items(len(kept))

        # Reconstruct per-stratum counts/weights (bookkeeping, clock-free).
        counts: Dict[object, int] = {}
        for item in items:
            key = key_fn(item)
            counts[key] = counts.get(key, 0) + 1
        kept_by_key: Dict[object, List[object]] = {}
        for item in kept:
            kept_by_key.setdefault(key_fn(item), []).append(item)

        sample = WeightedSample()
        for key, count in counts.items():
            members = tuple(kept_by_key.get(key, ()))
            if not members:
                continue
            sample.add(
                StratumSample(key, members, count, stratum_weight(count, len(members)))
            )
        return sample


@register_strategy
class OASRSStrategy(SamplingStrategy):
    """The paper's OASRS (§3, Algorithm 3) behind both engine roles.

    * Batched role (§4.2.1): items are sampled on the fly *before* RDD
      formation; only kept items pay the RDD copy and query processing.
      The per-batch budget is ``sampling_fraction × batch size``, spread
      by the adaptive water-filling policy.
    * Interval role (§4.2.2 and the direct executor): a per-slide-interval
      sampler whose budget the engine derives from the stream rate.

    The only strategy with ``supports_parallelism``: interval sampling
    shards over ``parallelism`` real worker processes through
    `repro.core.distributed.ShardedExecutor` (batched role shards each
    micro-batch the same way).
    """

    name = "oasrs"
    engines = frozenset({BATCHED, PIPELINED, DIRECT})
    supports_parallelism = True
    samples_intervals = True

    def bind(self, plan: ExecutionPlan) -> "BoundStrategy":
        return _BoundOASRS(self, plan)


class _BoundOASRS(BoundStrategy):
    def __init__(self, strategy: SamplingStrategy, plan: ExecutionPlan) -> None:
        super().__init__(strategy, plan)
        self._rng = random.Random(plan.config.seed)
        self._sampler: OASRSSampler = None  # type: ignore[assignment]
        self._executor: ShardedExecutor = None  # type: ignore[assignment]
        self._policy: WaterFillingAllocation = None  # type: ignore[assignment]
        self._interval_policy: WaterFillingAllocation = None  # type: ignore[assignment]
        self._interval_sampler = None

    # -- checkpoint / recovery role ------------------------------------------

    def state(self) -> dict:
        state = super().state()
        state["rng"] = self._rng.getstate()
        state["policy"] = (
            snapshot_attrs(self._policy) if self._policy is not None else None
        )
        state["sampler"] = (
            sampler_state(self._sampler) if self._sampler is not None else None
        )
        state["executor"] = (
            self._executor.state() if self._executor is not None else None
        )
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        if state["policy"] is not None and self._policy is None:
            # The batched-role objects are built lazily on the first batch;
            # construct them (placeholder budget/strata — overwritten just
            # below) so there is something to restore onto.
            self._ensure_batch_sampler(1, 1)
        if state["policy"] is not None:
            restore_attrs(self._policy, state["policy"])
        if state["sampler"] is not None and self._sampler is not None:
            restore_sampler(self._sampler, state["sampler"])
        if state["executor"] is not None and self._executor is not None:
            self._executor.restore(state["executor"])
        # Last: the sampler restore rewinds the shared RNG to the same
        # snapshot, but setting it here keeps the order-independence explicit.
        self._rng.setstate(state["rng"])

    def drain_recovery_events(self) -> list:
        events: list = []
        if self._executor is not None:
            events.extend(self._executor.drain_recovery_events())
        drain = getattr(self._interval_sampler, "drain_recovery_events", None)
        if drain is not None:
            events.extend(drain())
        return events

    def close(self) -> None:
        """Drain the persistent worker pools (batched and interval roles)."""
        if self._executor is not None:
            self._executor.close()
        close = getattr(self._interval_sampler, "close", None)
        if close is not None:
            close()

    def parallel_fallback(self) -> Optional[str]:
        if self._executor is not None and self._executor.fallback_reason:
            return self._executor.fallback_reason
        return getattr(self._interval_sampler, "fallback_reason", None)

    # -- batched role -----------------------------------------------------------

    def _ensure_batch_sampler(self, batch_size: int, strata_hint: int) -> None:
        config = self.plan.config
        budget = max(1, int(self.sampling_fraction * batch_size))
        if self._policy is None:
            # §2.3: the sub-stream sources are declared at the aggregator, so
            # the first interval can already split its budget across them.
            self._policy = WaterFillingAllocation(budget, expected_strata=strata_hint)
            if config.parallelism > 1:
                self._executor = self._sharded_executor(self._policy)
            else:
                self._sampler = OASRSSampler(
                    self._policy, key_fn=self.plan.query.key_fn, rng=self._rng
                )
        elif self._fraction_override is not None:
            # Budget-driven runs: re-derive the water-filling capacities for
            # the new budget *now* — ``close_interval`` already rebalanced
            # the reservoirs with the previous budget, so without this the
            # adaptation would always lag one batch behind.
            self._policy.set_total(budget)
            if self._sampler is not None:
                self._sampler.rebalance()
        else:
            self._policy.total = budget

    def sample_batch(self, ctx: StreamingContext, items: Sequence[object]) -> WeightedSample:
        config = self.plan.config
        if not items:
            # An empty micro-batch must not collapse the policy's budget to
            # ``max(1, fraction·0) == 1``: the close-interval rebalance would
            # then rebuild every reservoir at ~1 slot and the *next* batch
            # would sample through the starved capacities before its own
            # budget re-set takes effect.  Nothing arrived, so there is
            # nothing to sample or charge — emit an empty pane contribution.
            return WeightedSample()
        key_fn = self.plan.query.key_fn
        if _np is not None and isinstance(items, ColumnSlice) and key_fn is item_key:
            # Distinct interned codes in the batch == distinct keys.
            strata_hint = max(1, int(_np.unique(items.codes).size))
        else:
            strata_hint = max(1, len({key_fn(x) for x in items}))
        self._ensure_batch_sampler(len(items), strata_hint)
        # On-the-fly sampling: every arriving item is offered (O(1) each)...
        ctx.cluster.sample_items(len(items), "oasrs")
        if self._executor is not None:
            sample = self._executor.run(items)
        elif config.chunk_size > 1:
            # Chunked mode: the batch's RDD partitions become sampler chunks
            # (or explicit chunk_size-item runs) through the vectorized path.
            for chunk in ctx.chunks_of(items, config.chunk_size):
                self._sampler.process_chunk(chunk)
            sample = self._sampler.close_interval()
        else:
            self._sampler.offer_many(items)
            sample = self._sampler.close_interval()
        kept = sample.all_items()
        # ...but only the kept items are turned into an RDD and processed.
        rdd = ctx.rdd_of_presampled(kept, skipped=len(items) - len(kept))
        rdd.process_all()
        return sample

    # -- interval role (pipelined / direct) -------------------------------------

    def interval_sampler(self, budget: int, strata_hint: int):
        config = self.plan.config
        policy = WaterFillingAllocation(budget, expected_strata=strata_hint)
        self._interval_policy = policy
        if config.parallelism > 1:
            sampler = ShardedIntervalSampler(self._sharded_executor(policy))
        else:
            sampler = OASRSSampler(
                policy, key_fn=self.plan.query.key_fn, rng=random.Random(config.seed)
            )
        self._interval_sampler = sampler
        return sampler

    def set_interval_budget(self, total: int) -> None:
        """Re-target the per-interval water-filling budget (§4.2 feedback).

        Mutates the *coordinator's* policy, which reaches the sharded path
        too: the persistent pool's workers receive the policy's attribute
        snapshot inside every interval message, so a budget re-target is
        just part of the next message — no shared state, no respawn.  The
        in-process sampler additionally rebalances its (empty, start-of-
        interval) reservoirs so the new capacities apply immediately.
        """
        if self._interval_policy is None:
            return
        self._interval_policy.set_total(max(1, int(total)))
        rebalance = getattr(self._interval_sampler, "rebalance", None)
        if rebalance is not None:
            rebalance()

    def _sharded_executor(self, policy: WaterFillingAllocation) -> ShardedExecutor:
        config = self.plan.config
        return ShardedExecutor(
            config.parallelism,
            policy,
            self.plan.query.key_fn,
            seed=config.seed,
            chunk_size=config.chunk_size if config.chunk_size > 1 else 1024,
            faults=config.faults,
            metrics=self.telemetry.metrics if self.telemetry is not None else None,
        )
