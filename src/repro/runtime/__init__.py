"""The unified execution runtime — one planner and run loop for every system.

The paper's claim is that one sampling module (OASRS) slots into both
batched and pipelined stream processing *without changing the surrounding
system*.  This package is that claim made structural: a run is a declarative
`ExecutionPlan` (source → windower → sampling stage → estimator → report)
built by `build_plan`, the sampling stage is a pluggable `SamplingStrategy`
(``none`` / ``srs`` / ``sts`` / ``oasrs``) behind one chunk-first
interface, and `execute_plan` drives the plan on one of three engines —
batched micro-batches, pipelined operators, or the direct executor — with
``chunk_size`` / ``parallelism`` honoured uniformly.

The seven classes in `repro.system` are thin configs over this runtime;
porting a new system means registering a strategy and/or naming an
``(engine, strategy)`` pair, not writing a run loop (see
``docs/architecture.md``).
"""

from ..core.recovery import FaultSchedule, RecoveryEvent, ShardKill
from ..obs import RunTelemetry, TelemetryConfig
from .checkpoint import CheckpointPolicy, CheckpointStore, PaneCheckpoint
from .config import QueryBudget, StreamQuery, SystemConfig, WindowConfig
from .control import AdaptationPoint, BudgetController
from .driver import execute_plan, run_batched, run_direct, run_pipelined
from .plan import ENGINES, ExecutionPlan, PlanError, build_plan
from .report import (
    SystemReport,
    WindowResult,
    accuracy_loss,
    estimate_pane,
    estimate_pane_stats,
    exact_panes,
    join_ground_truth,
)
from .source import ListSource, PlanSource, TopicSource, as_source
from .strategies import (
    BoundStrategy,
    SamplingStrategy,
    available_strategies,
    full_weight_sample,
    get_strategy,
    register_strategy,
)

__all__ = [
    "ENGINES",
    "AdaptationPoint",
    "BoundStrategy",
    "BudgetController",
    "CheckpointPolicy",
    "CheckpointStore",
    "ExecutionPlan",
    "FaultSchedule",
    "ListSource",
    "PaneCheckpoint",
    "RecoveryEvent",
    "ShardKill",
    "PlanError",
    "PlanSource",
    "QueryBudget",
    "RunTelemetry",
    "SamplingStrategy",
    "StreamQuery",
    "SystemConfig",
    "SystemReport",
    "TelemetryConfig",
    "TopicSource",
    "WindowConfig",
    "WindowResult",
    "accuracy_loss",
    "as_source",
    "available_strategies",
    "build_plan",
    "estimate_pane",
    "estimate_pane_stats",
    "exact_panes",
    "execute_plan",
    "full_weight_sample",
    "get_strategy",
    "join_ground_truth",
    "register_strategy",
    "run_batched",
    "run_direct",
    "run_pipelined",
]
