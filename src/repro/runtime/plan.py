"""`ExecutionPlan` and the planner — the declarative half of the runtime.

A plan is the full description of one run: *source* → *windower* →
*sampling stage* → *estimator* → *report*, plus the engine that executes
it.  `build_plan` assembles and validates one from the same three
configuration objects every system has always taken (`StreamQuery`,
`WindowConfig`, `SystemConfig`), a `PlanSource`, an engine name, and a
sampling-strategy name:

* ``engine = "batched"``   — micro-batch panes on the Spark-style engine
  (`repro.engine.batched`),
* ``engine = "pipelined"`` — push-based operators on the Flink-style
  engine (`repro.engine.pipelined`),
* ``engine = "direct"``    — this repo's own executor: the sampling stack
  straight over slide intervals, no engine simulation in the hot loop.

Validation happens *here*, at plan-build time, with messages naming the
offending combination — not deep inside a run loop.  Genuinely
unsupported combinations (a batch-only strategy on the pipelined engine,
``parallelism`` with a strategy that cannot shard) raise `PlanError`
instead of being silently ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .config import StreamQuery, SystemConfig, WindowConfig
from .source import ListSource, PlanSource

__all__ = ["ENGINES", "PlanError", "ExecutionPlan", "build_plan"]

#: The execution engines the driver knows how to run a plan on.
ENGINES = ("batched", "pipelined", "direct")


class PlanError(ValueError):
    """An invalid or unsupported `ExecutionPlan` combination."""


@dataclass(frozen=True)
class ExecutionPlan:
    """One validated, executable run description.

    Built by `build_plan`; executed by `repro.runtime.driver.execute_plan`.
    The seven ``repro.system`` classes are thin declarative configs that
    produce exactly one of these per run.

    Example
    -------
    >>> from repro.runtime.config import StreamQuery
    >>> plan = build_plan(
    ...     query=StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1]),
    ...     engine="pipelined", strategy="oasrs", name="demo")
    >>> plan.engine, plan.strategy
    ('pipelined', 'oasrs')
    """

    query: StreamQuery
    window: WindowConfig
    config: SystemConfig
    engine: str
    strategy: str
    source: PlanSource = field(default_factory=lambda: ListSource([]))
    name: str = ""

    def with_source(self, source: PlanSource) -> "ExecutionPlan":
        """The same plan reading from a different source."""
        return replace(self, source=source)


def build_plan(
    query: StreamQuery,
    window: Optional[WindowConfig] = None,
    config: Optional[SystemConfig] = None,
    engine: str = "batched",
    strategy: str = "none",
    source: Optional[PlanSource] = None,
    name: str = "",
) -> ExecutionPlan:
    """Assemble and validate an `ExecutionPlan`.

    Raises `PlanError` — with a message naming the offending combination —
    for unknown engines/strategies, a strategy the engine cannot drive,
    ``parallelism > 1`` with a strategy that cannot shard, a query
    ``budget`` with the ``none`` strategy (nothing samples, so nothing can
    adapt) or with a confidence level different from the run's, and batched
    windowing parameters that do not tile into micro-batches.
    """
    from .strategies import get_strategy  # deferred: strategies import this module

    window = window if window is not None else WindowConfig()
    config = config if config is not None else SystemConfig()
    if engine not in ENGINES:
        raise PlanError(
            f"unknown engine {engine!r}; available: {', '.join(ENGINES)}"
        )
    strat = get_strategy(strategy)
    if engine not in strat.engines:
        raise PlanError(
            f"sampling strategy {strategy!r} cannot run on the {engine!r} engine "
            f"(supported: {', '.join(sorted(strat.engines))}); "
            "batch-only strategies need the whole micro-batch materialised "
            "before sampling"
        )
    # Interval engines drive strategies through interval_sampler; a sampling
    # strategy that cannot provide one must not silently fall back to the
    # exact pass-through path.
    if engine == "direct" and not strat.samples_intervals:
        raise PlanError(
            f"the 'direct' engine requires an interval-sampling strategy; "
            f"{strategy!r} does not set samples_intervals"
        )
    if engine == "pipelined" and strategy != "none" and not strat.samples_intervals:
        raise PlanError(
            f"sampling strategy {strategy!r} declares the pipelined engine but "
            "does not sample intervals; set samples_intervals = True and "
            "implement interval_sampler"
        )
    if config.budget is not None:
        from ..core.budget import AccuracyBudget  # local: keep plan deps narrow

        if strategy == "none":
            raise PlanError(
                f"a query budget ({type(config.budget).__name__}) requires a "
                "sampling strategy; strategy 'none' processes every item and "
                "has no sample size to adapt (use 'srs', 'sts', or 'oasrs')"
            )
        if (
            isinstance(config.budget, AccuracyBudget)
            and abs(config.budget.confidence - config.confidence) > 1e-9
        ):
            raise PlanError(
                f"AccuracyBudget confidence ({config.budget.confidence}) must "
                f"match the run's confidence ({config.confidence}); the §4.2 "
                "feedback loop compares the budget's target margin against "
                "the margins measured at the run's confidence level"
            )
    if config.parallelism > 1 and not strat.supports_parallelism:
        raise PlanError(
            f"parallelism={config.parallelism} is not supported with the "
            f"{strategy!r} strategy: only reservoir-based strategies shard "
            "without synchronization (use strategy 'oasrs', or parallelism=1)"
        )
    if config.checkpoint is not None:
        plan_source = source if source is not None else ListSource([])
        if not plan_source.replayable:
            raise PlanError(
                "checkpointing requires a replayable source: resume replays "
                "the stream from the checkpointed offset, which a "
                f"{type(plan_source).__name__} cannot reproduce (use a "
                "ListSource, or a TopicSource with rewind=True so the "
                "broker's topic-global seq restores the production order)"
            )
    if config.faults is not None and (
        config.parallelism <= 1 or not strat.supports_parallelism
    ):
        raise PlanError(
            "fault injection (SystemConfig.faults) kills shard workers, so it "
            f"requires parallelism >= 2 with a shardable strategy; got "
            f"parallelism={config.parallelism} with strategy {strategy!r}"
        )
    if engine == "batched":
        ratio = window.slide / config.batch_interval
        if abs(ratio - round(ratio)) > 1e-9:
            raise PlanError(
                f"window slide ({window.slide}) must be a whole multiple of "
                f"the batch interval ({config.batch_interval}) on the batched "
                "engine, so panes fire on micro-batch boundaries"
            )
    return ExecutionPlan(
        query=query,
        window=window,
        config=config,
        engine=engine,
        strategy=strategy,
        source=source if source is not None else ListSource([]),
        name=name,
    )
