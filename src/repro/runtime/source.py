"""Plan sources — where an `ExecutionPlan` reads its input stream from.

A source yields one finite, time-ordered ``(timestamp, item)`` list per
run.  Two implementations cover the paper's setups:

* `ListSource` — an in-memory stream, the shape every workload generator
  produces and `StreamSystem.run` has always consumed.
* `TopicSource` — Kafka-style ingestion through the in-memory aggregator
  (Figure 1): drains a `repro.aggregator.broker.Broker` topic, either with
  a plain timestamp-merging `Consumer` or through a `ConsumerGroup` whose
  members each own a disjoint partition subset.  Records are recovered in
  exactly their production order — timestamp ties across partitions break
  on the broker's topic-global sequence number — so a query fed from a
  topic produces panes identical to the same query fed from the producing
  list (the broker-as-source integration tests).

Sources deliberately stay dumb — windowing, sampling, and estimation all
belong to the runtime driver, so any system can read from any source.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple, TypeVar

from ..aggregator.broker import Broker
from ..aggregator.consumer import Consumer
from ..aggregator.groups import ConsumerGroup
from ..core.records import RecordBatch

T = TypeVar("T")

__all__ = ["PlanSource", "ListSource", "TopicSource", "as_source"]


class PlanSource:
    """A provider of one finite time-ordered ``(timestamp, item)`` stream."""

    def events(self) -> List[Tuple[float, object]]:
        raise NotImplementedError

    def batches(self) -> List[RecordBatch]:
        """The same stream as `repro.core.records.RecordBatch` batches.

        Concatenated in order, the batches reproduce ``events()`` exactly;
        the columnar drivers consume this form so NumPy columns (and, for
        broker sources, the production ``seq`` order) survive ingestion.
        The default wraps ``events()`` in one batch.
        """
        return [RecordBatch.of(self.events())]

    @property
    def replayable(self) -> bool:
        """Whether repeated ``events()`` calls reproduce the same stream.

        Checkpoint-based resume slices the event list at the checkpointed
        offset, so it is only sound over sources that re-deliver the exact
        same ordered stream.  Subclasses that can guarantee this override
        to True; the conservative default is False.
        """
        return False


class ListSource(PlanSource):
    """Wrap an already-materialised in-memory stream.

    Example
    -------
    >>> ListSource([(0.1, "a"), (0.2, "b")]).events()
    [(0.1, 'a'), (0.2, 'b')]
    """

    def __init__(self, stream: List[Tuple[float, T]]) -> None:
        # Wrap once into a RecordBatch (a list subclass) so repeated
        # runs/sources over the same stream share one set of cached
        # columns; an existing batch passes through without copying.
        self._stream = RecordBatch.of(stream)

    def events(self) -> List[Tuple[float, object]]:
        return self._stream

    def batches(self) -> List[RecordBatch]:
        return [self._stream]

    @property
    def replayable(self) -> bool:
        """An in-memory list always re-delivers the same stream."""
        return True


class TopicSource(PlanSource):
    """Read a broker topic as the plan's input stream.

    With ``group_id`` set, consumption goes through a `ConsumerGroup` of
    ``members`` consumers — each member polls only its assigned partitions,
    and the coordinator merges the member streams by timestamp, mirroring
    how a real deployment fans a topic out over worker processes.  Without
    a group, a single timestamp-merging `Consumer` drains the topic.

    ``rewind`` (default True) seeks back to the beginning before every
    drain — the plain consumer's offsets or the group's committed offsets
    alike — so repeated runs see the full topic.  Pass False for
    streaming semantics: each drain consumes only records not yet
    delivered to *this source* (offsets live with the source's consumer /
    `ConsumerGroup` instance — the in-memory broker keeps no group
    registry, so a separately constructed source with the same
    ``group_id`` starts from the beginning again).

    Example
    -------
    >>> broker = Broker()
    >>> _ = broker.create_topic("events", num_partitions=2)
    >>> for i in range(4):
    ...     _ = broker.topic("events").append(float(i), key=i % 2, value=i)
    >>> TopicSource(broker, "events").events()
    [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]
    >>> TopicSource(broker, "events", group_id="g", members=2).events()
    [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]
    """

    def __init__(
        self,
        broker: Broker,
        topic: str,
        group_id: Optional[Hashable] = None,
        members: int = 1,
        rewind: bool = True,
    ) -> None:
        if members < 1:
            raise ValueError(f"members must be at least 1, got {members}")
        self._rewind = rewind
        if group_id is None:
            self._consumer: Optional[Consumer] = Consumer(broker, topic)
            self._group: Optional[ConsumerGroup] = None
            self._members: List = []
        else:
            self._consumer = None
            self._group = ConsumerGroup(broker, topic, group_id)
            self._members = [self._group.join() for _ in range(members)]

    def events(self) -> List[Tuple[float, object]]:
        if self._consumer is not None:
            if self._rewind:
                self._consumer.seek_to_beginning()
            return [(r.timestamp, r.value) for r in self._consumer.poll()]
        if self._rewind:
            self._group.seek_to_beginning()
        records = []
        for member in self._members:
            records.extend(member.poll())
        # Coordinator merge: each member's poll is already time-ordered; the
        # topic-global production sequence breaks timestamp ties, so the
        # merged stream is exactly the production order.
        records.sort(key=lambda r: (r.timestamp, r.seq))
        return [(r.timestamp, r.value) for r in records]

    def batches(self) -> List[RecordBatch]:
        """Assemble one `RecordBatch` per drain, preserving ``seq`` order.

        The merged records keep exactly the ``events()`` order (timestamp,
        then the broker's topic-global production sequence), and the batch
        carries the ``seq`` column so replay consumers can verify or
        re-establish production order without re-reading the topic.
        """
        if self._consumer is not None:
            if self._rewind:
                self._consumer.seek_to_beginning()
            records = list(self._consumer.poll())
        else:
            if self._rewind:
                self._group.seek_to_beginning()
            records = []
            for member in self._members:
                records.extend(member.poll())
            records.sort(key=lambda r: (r.timestamp, r.seq))
        batch = RecordBatch((r.timestamp, r.value) for r in records)
        return [batch.with_seq([r.seq for r in records])]

    @property
    def replayable(self) -> bool:
        """Replayable iff the source rewinds before every drain.

        With ``rewind=True`` each ``events()`` re-drains the full topic and
        the broker's topic-global ``seq`` reconstructs the exact production
        order — the replay-offset contract checkpoint resume depends on.
        Without rewind, offsets advance per drain and an earlier prefix is
        gone for good.
        """
        return self._rewind


def as_source(stream_or_source) -> PlanSource:
    """Coerce ``run``'s argument: a `PlanSource` passes through, an
    in-memory list is wrapped in a `ListSource`."""
    if isinstance(stream_or_source, PlanSource):
        return stream_or_source
    return ListSource(stream_or_source)
