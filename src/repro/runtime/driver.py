"""The unified driver — one run loop per engine, shared by every system.

`execute_plan` takes a validated `ExecutionPlan` and runs it end to end:
drain the plan's source, window the stream, drive the bound sampling
strategy, estimate each pane, and return ``(results, cluster)``.  Before
the runtime existed, each of the seven ``repro.system`` classes carried
its own copy of this loop; they are now thin declarative configs and the
three loops below are the only ones in the codebase:

* `run_batched` — micro-batch skeleton (§5.5): chop the stream into
  ``batch_interval`` batches, call the strategy's ``sample_batch`` for
  each, fire a sliding-window pane every ``slide`` seconds by merging the
  in-window batch samples.
* `run_pipelined` — push-based dataflow: items flow through operators one
  at a time (or in ``chunk_size`` runs); interval-sampling strategies
  insert the OASRS operator (§4.2.2), ``none`` aggregates exact panes.
* `run_direct` — this repo's own executor: the sampling stack straight
  over slide-sized intervals with no engine simulation in the hot loop,
  pooling per-interval sufficient statistics into pane estimates.

``chunk_size`` and ``parallelism`` are honoured uniformly: the planner
has already rejected combinations the strategy cannot support, so every
loop here can assume its plan is runnable.

**Fault tolerance as a runtime service.**  With
``SystemConfig(checkpoint=CheckpointPolicy(...))`` every loop snapshots
its full state (bound strategy, interval sampler, budget controller,
window history) into a `repro.runtime.checkpoint.CheckpointStore` at pane
boundaries — the only points where the sampling stack is quiescent.
``execute_plan(resume_from=a_checkpoint)`` restores that state and
replays the source from the checkpointed offset (exact re-ordering
guaranteed by the source's replayability contract — the broker's
topic-global ``seq`` for `TopicSource`), producing remaining panes
bitwise identical to an uninterrupted run.  Worker-loss events injected
by ``SystemConfig(faults=...)`` are drained from the sharded executors at
every pane close and attached to the pane's `WindowResult.recovery`.
"""

from __future__ import annotations

import math
import os
import time
from bisect import bisect_left
from collections import deque
from dataclasses import replace
from operator import itemgetter
from typing import Callable, List, Optional, Sequence, Tuple

from ..core._vector import np as _np
from ..core.error import estimate_error
from ..core.query import QueryResult, StratumStats
from ..core.records import RecordBatch, item_key, item_value
from ..core.strata import WeightedSample, combine_worker_samples, stratum_weight
from ..engine.batched.context import StreamingContext
from ..engine.batched.dstream import Batcher
from ..engine.cluster import SimulatedCluster
from ..engine.pipelined.dataflow import Pipeline
from ..obs import NULL_METRICS, NULL_PANE_TIMER, NULL_TRACER, run_telemetry
from .checkpoint import (
    CheckpointStore,
    PaneCheckpoint,
    controller_state,
    interval_sampler_state,
    restore_controller,
    restore_interval_sampler,
)
from .control import AdaptationPoint, BudgetController
from .plan import ExecutionPlan, PlanError
from .report import WindowResult, estimate_pane, estimate_pane_stats
from .strategies import full_weight_sample, get_strategy

__all__ = ["execute_plan", "run_batched", "run_pipelined", "run_direct"]

HandleBatch = Callable[[StreamingContext, Sequence[object]], WeightedSample]

#: Items scanned to estimate the stratum count for the first interval's
#: budget split — a prefix only, because scanning every item of a large
#: stream just to count sources would dominate the hot loop.
_STRATA_HINT_PREFIX = 20_000


def _per_slide_items(stream, window) -> float:
    """Expected items per slide interval, from the stream's arrival rate.

    The observed timestamp span ``last_ts − first_ts`` covers only
    ``n − 1`` inter-arrival gaps, so dividing ``n`` items by it
    overestimates the rate by ``n/(n−1)`` — for a stream that tiles its
    slides exactly (regular arrivals over a whole number of slides) that
    fencepost inflates the per-slide estimate, and with it every sample
    budget derived from it.  Scaling the span by ``n/(n−1)`` (equivalently:
    ``n − 1`` items over the span) restores the exact rate for regular
    streams and is an O(1/n) correction for irregular ones.
    """
    n = len(stream)
    if n == 0:
        return 1.0
    span = stream[-1][0] - stream[0][0]
    if n == 1 or span <= 0.0:
        # One item, or all items share a timestamp: one interval's worth.
        return float(n)
    # min(n, ·) mirrors the old ``max(span, slide)`` clamp: a stream shorter
    # than one slide contributes all its items to a single interval.
    return min(float(n), (n - 1) * window.slide / span)


def _interval_budget(stream, window, config) -> int:
    """Per-slide-interval sample budget for the interval engines.

    fraction × expected items per slide, estimated from the stream's
    average arrival rate — shared by the pipelined and direct engines so
    the same `SystemConfig` always samples at the same fraction.
    """
    return max(1, int(config.sampling_fraction * _per_slide_items(stream, window)))


def _make_controller(plan: ExecutionPlan, telemetry=None) -> Optional[BudgetController]:
    """The run's budget controller, or None for fixed-fraction plans."""
    if plan.config.budget is None:
        return None
    controller = BudgetController(plan.config.budget, plan.config, plan.window)
    if telemetry is not None:
        controller.attach_telemetry(telemetry)
    return controller


def _telemetry_setup(plan: ExecutionPlan, run_info: Optional[dict]):
    """Resolve the plan's telemetry into ``(collector, pane timer, tracer)``.

    Returns ``(None, NULL_PANE_TIMER, NULL_TRACER)`` when telemetry is off,
    so the run loops instrument unconditionally: every timer/tracer call on
    the disabled path is a no-op method on a shared singleton — no branches
    and no dict lookups inside the loops, per-interval granularity only.
    The live collector is surfaced through ``run_info["telemetry"]``, the
    same channel as ``parallel_fallback``/``columnar_fallback``, and lands
    on ``SystemReport.telemetry``.
    """
    telemetry = run_telemetry(plan.config.telemetry)
    if telemetry is None:
        return None, NULL_PANE_TIMER, NULL_TRACER
    if run_info is not None:
        run_info["telemetry"] = telemetry
    return telemetry, telemetry.pane_timer(), telemetry.tracer


def _strata_hint(stream, key_fn) -> int:
    """Stratum-count hint from a bounded prefix of the stream.

    Only seeds the *first* interval's equal split (§2.3: the sub-stream
    sources are declared at the aggregator); water-filling re-derives
    capacities from real counters at every interval close, so a stratum
    first appearing after the prefix merely shares the first interval's
    budget one way rather than another.  (The pre-runtime pipelined system
    scanned the whole stream for this hint; the cap trades that O(n) pass
    for first-interval-only hint noise on >20k-item streams.)

    Column-backed streams with the canonical key projection count distinct
    interned codes over the prefix instead of hashing items one by one —
    same count, one vectorized pass.
    """
    if (
        _np is not None
        and key_fn is item_key
        and isinstance(stream, RecordBatch)
        and stream.has_columns
    ):
        codes = stream.codes[:_STRATA_HINT_PREFIX]
        return max(1, int(_np.unique(codes).size)) if codes.size else 1
    return max(
        1, len({key_fn(item) for _ts, item in stream[:_STRATA_HINT_PREFIX]})
    )


def _record_stream(source) -> RecordBatch:
    """Drain a plan source as one `RecordBatch` (the drivers' native form).

    Sources deliver the stream as column-backed batches (``batches()``);
    most produce exactly one, which passes through untouched — for a
    `repro.runtime.source.ListSource` this is the *same object* every run,
    so cached columns are shared.  Multi-batch sources are concatenated in
    order (the columns rebuild lazily over the union).
    """
    batches = source.batches()
    if len(batches) == 1:
        return batches[0]
    merged = RecordBatch()
    for batch in batches:
        merged.extend(batch)
    return merged


def _columnar_reason(stream, query) -> Optional[str]:
    """Why this run cannot take the columnar record path (None when it can).

    The columnar path is on by default and engages when NumPy is present,
    the stream's item columns built (plain ``(hashable key, float)``
    2-tuples), and the query's projections are the canonical
    `repro.core.records.item_key` / `repro.core.records.item_value`
    (identity comparison — a custom callable could observe anything about
    the item object, so it forces the per-item shim).  The returned reason
    is surfaced as ``SystemReport.columnar_fallback``, mirroring
    ``parallel_fallback``: the run still completes, identically, via the
    per-item shim.
    """
    if os.environ.get("REPRO_NO_COLUMNAR"):
        return "columnar path disabled via REPRO_NO_COLUMNAR"
    if _np is None:
        return "numpy unavailable"
    if not isinstance(stream, RecordBatch):
        return "stream is not a RecordBatch"
    if not (query.key_fn is item_key and query.value_fn is item_value):
        return "custom key/value projections (per-item shim)"
    return stream.columnar_reason


def _note_columnar(run_info: Optional[dict], reason: Optional[str]) -> None:
    """Record the columnar-fallback reason in the run diagnostics."""
    if run_info is not None and reason:
        run_info["columnar_fallback"] = reason


def _intern_projections(stream, plan: ExecutionPlan):
    """Intern custom query projections so the run takes the columnar path.

    Custom ``key_fn``/``value_fn`` callables (the Spark/Flink baselines'
    ``flow_protocol``-style accessors) historically forced the per-item
    shim.  When the stream is a `RecordBatch`, this applies both
    projections once up front (`RecordBatch.project`, cached on the batch)
    and rewrites the plan to the canonical projections over the projected
    events — after which every driver, sampler, and estimator sees a plain
    ``(hashable, float)`` columnar stream.  Sampling decisions and
    estimates are bitwise identical: the RNG stream depends only on
    stratum membership order and counts, both unchanged, and the floats
    aggregated are the very objects the shim's per-item calls would have
    produced.

    Returns ``(stream, plan)`` untouched whenever interning cannot apply:
    canonical projections already (nothing to do), the columnar path is
    off (``REPRO_NO_COLUMNAR`` / no NumPy), a ``group_fn`` other than the
    key projection is set (a third independent projection the two interned
    columns cannot express), or the projections themselves are not
    columnar-representable (`RecordBatch.project` returned None) — in
    which case the per-item shim proceeds exactly as before, with
    ``columnar_fallback`` surfacing the reason.
    """
    query = plan.query
    if query.key_fn is item_key and query.value_fn is item_value:
        return stream, plan
    if _np is None or os.environ.get("REPRO_NO_COLUMNAR"):
        return stream, plan
    if not isinstance(stream, RecordBatch):
        return stream, plan
    if query.group_fn is not None and query.group_fn is not query.key_fn:
        return stream, plan
    projected = stream.project(query.key_fn, query.value_fn)
    if projected is None:
        return stream, plan
    interned = replace(
        query,
        key_fn=item_key,
        value_fn=item_value,
        group_fn=item_key if query.group_fn is not None else None,
    )
    return projected, replace(plan, query=interned)


def _checkpoint_setup(
    plan: ExecutionPlan, checkpoint_store: Optional[CheckpointStore]
) -> Tuple[Optional[CheckpointStore], int]:
    """Resolve the run's checkpoint store and cadence from the plan.

    Returns ``(None, 1)`` when checkpointing is off.  Re-validates source
    replayability here as a backstop: `ExecutionPlan.with_source` swaps
    sources through ``dataclasses.replace`` without re-running the
    planner's checks.
    """
    policy = plan.config.checkpoint
    if policy is None:
        return None, 1
    if not plan.source.replayable:
        raise PlanError(
            "checkpointing requires a replayable source: resume replays the "
            "stream from the checkpointed offset, which a "
            f"{type(plan.source).__name__} cannot reproduce"
        )
    store = checkpoint_store if checkpoint_store is not None else CheckpointStore()
    return store, policy.every


def _validate_resume(
    plan: ExecutionPlan, checkpoint: PaneCheckpoint, n_events: int
) -> None:
    """Reject checkpoints that cannot have come from this plan's run."""
    if checkpoint.engine != plan.engine or checkpoint.strategy != plan.strategy:
        raise PlanError(
            f"checkpoint was taken by a {checkpoint.engine!r}/"
            f"{checkpoint.strategy!r} run and cannot resume a "
            f"{plan.engine!r}/{plan.strategy!r} plan"
        )
    if checkpoint.stream_position > n_events:
        raise PlanError(
            f"checkpoint stream position {checkpoint.stream_position} lies "
            f"beyond the source's {n_events} events; the replayed source must "
            "cover at least the checkpointed prefix"
        )


def execute_plan(
    plan: ExecutionPlan,
    handle_batch: Optional[HandleBatch] = None,
    adaptation_log: Optional[List[AdaptationPoint]] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    resume_from: Optional[PaneCheckpoint] = None,
    run_info: Optional[dict] = None,
    on_pane: Optional[Callable[[WindowResult], None]] = None,
) -> Tuple[List[WindowResult], SimulatedCluster]:
    """Run a plan on its engine; returns (pane results, charged cluster).

    ``handle_batch`` overrides the batched engine's per-batch sampling
    hook — the extension point `repro.system.spark_base.BatchedSystem`
    uses for ad-hoc experimental systems.  ``adaptation_log``, when given,
    receives the budget controller's per-interval `AdaptationPoint`s for
    budget-driven plans (it stays empty for fixed-fraction plans).

    ``checkpoint_store`` receives pane-boundary `PaneCheckpoint`s when the
    plan's config sets a `CheckpointPolicy`; ``resume_from`` restores one
    such checkpoint and continues mid-stream — the remaining panes are
    bitwise identical to the uninterrupted run's.

    ``run_info``, when given, collects run diagnostics the result tuple
    has no room for — currently ``"parallel_fallback"``, the reason a
    ``parallelism > 1`` plan degraded to in-process sampling (absent when
    the worker pool stayed healthy), ``"columnar_fallback"``,
    ``"telemetry"`` (the live `repro.obs.RunTelemetry` when the config
    enables it), and ``"sampled_total"`` — the items the sampling stage
    actually kept across the run's intervals, the measured actual the
    serving layer's settle-up reconciles against its pre-run cost
    estimate.

    ``on_pane``, when given, is called with each `WindowResult` the moment
    its pane closes — the streaming hook the serving layer
    (`repro.service`) uses to push per-pane answers to tenants while the
    run is still in flight.  Resumed runs do not re-deliver panes restored
    from the checkpoint.  The callback runs inline on the driver's thread;
    it must not block.
    """
    if plan.engine == "batched":
        return run_batched(
            plan,
            handle_batch=handle_batch,
            adaptation_log=adaptation_log,
            checkpoint_store=checkpoint_store,
            resume_from=resume_from,
            run_info=run_info,
            on_pane=on_pane,
        )
    if handle_batch is not None:
        raise PlanError("handle_batch overrides only apply to the batched engine")
    if plan.engine == "pipelined":
        return run_pipelined(
            plan,
            adaptation_log=adaptation_log,
            checkpoint_store=checkpoint_store,
            resume_from=resume_from,
            run_info=run_info,
            on_pane=on_pane,
        )
    if plan.engine == "direct":
        results, cluster, _sampling_seconds = run_direct(
            plan,
            adaptation_log=adaptation_log,
            checkpoint_store=checkpoint_store,
            resume_from=resume_from,
            run_info=run_info,
            on_pane=on_pane,
        )
        return results, cluster
    raise PlanError(f"unknown engine {plan.engine!r}")


def _finish_run(bound_strategy, run_info: Optional[dict]) -> None:
    """Shared driver epilogue: report diagnostics, drain worker pools.

    Runs in each loop's ``finally`` so the persistent shard pool is
    released on success *and* on error/crash paths; the fallback reason is
    read first because ``close`` is allowed to forget it.
    """
    if bound_strategy is None:
        return
    if run_info is not None:
        reason = bound_strategy.parallel_fallback()
        if reason:
            run_info["parallel_fallback"] = reason
    bound_strategy.close()


# ---------------------------------------------------------------------------
# Batched engine (Spark-Streaming-style micro-batches)
# ---------------------------------------------------------------------------


def run_batched(
    plan: ExecutionPlan,
    handle_batch: Optional[HandleBatch] = None,
    adaptation_log: Optional[List[AdaptationPoint]] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    resume_from: Optional[PaneCheckpoint] = None,
    run_info: Optional[dict] = None,
    on_pane: Optional[Callable[[WindowResult], None]] = None,
) -> Tuple[List[WindowResult], SimulatedCluster]:
    """Micro-batch loop: per-batch sampling, per-slide pane estimation.

    Budget-driven plans add a control step at every pane close: the pane's
    stratum statistics and measured margin go through the
    `BudgetController`, and the resulting per-interval sample budget is
    re-expressed as the sampling fraction the strategy applies to the
    following micro-batches.

    Checkpoints capture the bound strategy (RNG + policy + sampler), the
    controller, and the in-window batch-sample history; resume replays
    micro-batches from the checkpointed pane boundary (``Batcher`` started
    at ``pane_end`` over the unconsumed stream suffix).
    """
    stream = _record_stream(plan.source)
    if handle_batch is None:
        # An ad-hoc handle_batch observes raw items; only strategy-driven
        # runs may substitute the projected stream.
        stream, plan = _intern_projections(stream, plan)
    config, window, query = plan.config, plan.window, plan.query
    ctx = StreamingContext(
        batch_interval=config.batch_interval,
        nodes=config.nodes,
        cores_per_node=config.cores_per_node,
        costs=config.costs,
    )
    bound_strategy = None
    columnar_reason = _columnar_reason(stream, query)
    if handle_batch is None:
        bound_strategy = get_strategy(plan.strategy).bind(plan)
        handle_batch = bound_strategy.sample_batch
    elif columnar_reason is None:
        # An ad-hoc sampling hook can observe anything about its items, so
        # it gets the classic tuple-of-items micro-batches.
        columnar_reason = "ad-hoc handle_batch override (per-item shim)"
    _note_columnar(run_info, columnar_reason)
    telemetry, timer, trace = _telemetry_setup(plan, run_info)
    if bound_strategy is not None:
        bound_strategy.attach_telemetry(telemetry)
    metrics = telemetry.metrics if telemetry is not None else NULL_METRICS
    observed_counter = metrics.counter("items.observed")
    kept_counter = metrics.counter("items.sampled")
    pane_counter = metrics.counter("panes")
    store, every = _checkpoint_setup(plan, checkpoint_store)
    if (store is not None or resume_from is not None) and bound_strategy is None:
        raise PlanError(
            "checkpoint/resume requires a registered sampling strategy; an "
            "ad-hoc handle_batch override carries state the runtime cannot "
            "snapshot"
        )
    controller = _make_controller(plan, telemetry)
    if controller is not None and bound_strategy is not None:
        # Seed the first interval's fraction from the budget (latency and
        # resource budgets bind before any pane has been observed).
        per_slide_est = _per_slide_items(stream, window)
        initial_total = controller.initial_total(int(per_slide_est))
        bound_strategy.set_sampling_fraction(initial_total / max(1.0, per_slide_est))
    per_slide = int(round(window.slide / config.batch_interval))
    per_window = int(round(window.length / config.batch_interval))

    history: List[WeightedSample] = []
    results: List[WindowResult] = []
    consumed = 0
    pane_index = 0
    if resume_from is not None:
        _validate_resume(plan, resume_from, len(stream))
        state = resume_from.state
        bound_strategy.restore(state["strategy"])
        if controller is not None and state["controller"] is not None:
            restore_controller(controller, state["controller"])
        history = list(state["history"])
        results = list(resume_from.results)
        consumed = resume_from.stream_position
        pane_index = resume_from.pane_index
        # Micro-batches restart at the checkpointed pane boundary: batch
        # ends stay absolute (Batcher's start offsets them) and the pane
        # fires every per_slide batches exactly as the uninterrupted run's
        # global batch indexing would.
        batcher = Batcher(config.batch_interval, start=resume_from.pane_end)
        feed = stream[consumed:]
    else:
        batcher = ctx.batcher()
        feed = stream
    # Columnar micro-batching: boundaries via searchsorted on the cached
    # timestamp column, micro-batch items as zero-copy column views —
    # bitwise-identical batch tiling (see `Batcher.batches_columnar`).
    # Resume replays the stream suffix (a plain list) through the classic
    # per-item batcher; results are identical either way.
    if columnar_reason is None and resume_from is None:
        batch_iter = batcher.batches_columnar(feed)
    else:
        batch_iter = batcher.batches(feed)
    sampled_total = 0
    try:
        trace.begin(
            "run", system=plan.name, engine="batched", strategy=plan.strategy
        )
        timer.open()
        for batch in batch_iter:
            timer.lap("ingest")
            batch_sample = handle_batch(ctx, batch.items)
            history.append(batch_sample)
            timer.lap("offer")
            sampled_total += batch_sample.total_items
            observed_counter.inc(len(batch.items))
            kept_counter.inc(batch_sample.total_items)
            consumed += len(batch.items)
            if len(history) > per_window:
                del history[: len(history) - per_window]
            if (batch.index + 1) % per_slide == 0:
                pane_sample = combine_worker_samples(history[-per_window:])
                estimate, bound, groups, strata = estimate_pane_stats(
                    pane_sample, query, config.confidence
                )
                if controller is not None:
                    next_total = controller.on_pane(
                        strata, bound, pane_sample.total_count
                    )
                    if bound_strategy is not None:
                        observed = controller.last_point.observed_items
                        bound_strategy.set_sampling_fraction(
                            min(1.0, next_total / max(1, observed))
                        )
                recovery = (
                    tuple(bound_strategy.drain_recovery_events())
                    if bound_strategy is not None
                    else ()
                )
                results.append(
                    WindowResult(
                        end=batch.end,
                        estimate=estimate,
                        exact=None,
                        error=bound,
                        groups=groups,
                        sampled_items=pane_sample.total_items,
                        total_items=pane_sample.total_count,
                        recovery=recovery,
                    )
                )
                if on_pane is not None:
                    on_pane(results[-1])
                pane_index += 1
                pane_counter.inc()
                timer.lap("estimate")
                if store is not None and pane_index % every == 0:
                    # ``consumed`` counts only items in yielded batches; the
                    # boundary-crossing trigger item sits in the batcher's
                    # buffer, so the position is exactly the first event with
                    # ts >= this pane's end.
                    store.save(
                        PaneCheckpoint(
                            plan_name=plan.name,
                            engine=plan.engine,
                            strategy=plan.strategy,
                            pane_index=pane_index,
                            pane_end=batch.end,
                            stream_position=consumed,
                            results=tuple(results),
                            state={
                                "strategy": bound_strategy.state(),
                                "controller": (
                                    controller_state(controller)
                                    if controller is not None
                                    else None
                                ),
                                "history": tuple(history),
                            },
                        )
                    )
                    timer.lap("checkpoint")
                timer.close(pane_index, end=batch.end)
                timer.open()
    finally:
        _finish_run(bound_strategy, run_info)
        trace.close()
    if run_info is not None:
        run_info["sampled_total"] = sampled_total
    if controller is not None and adaptation_log is not None:
        adaptation_log.extend(controller.trajectory)
    return results, ctx.cluster


# ---------------------------------------------------------------------------
# Pipelined engine (Flink-style push-based operators)
# ---------------------------------------------------------------------------


def run_pipelined(
    plan: ExecutionPlan,
    adaptation_log: Optional[List[AdaptationPoint]] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    resume_from: Optional[PaneCheckpoint] = None,
    run_info: Optional[dict] = None,
    on_pane: Optional[Callable[[WindowResult], None]] = None,
) -> Tuple[List[WindowResult], SimulatedCluster]:
    """Operator pipeline: per-item (or chunked) flow, panes at watermarks.

    Budget-driven plans run the control step inside the pane aggregation:
    each fired pane's statistics re-derive the shared water-filling
    policy's budget before the sampling operator opens the next interval.

    Checkpoints are taken in the window operator's pane hook (sampled
    path) or the pane aggregation itself (exact path); resume preloads the
    operator's window state and restarts the dataflow at the checkpointed
    pane boundary over the unconsumed stream suffix.
    """
    stream = _record_stream(plan.source)
    stream, plan = _intern_projections(stream, plan)
    config, window, query = plan.config, plan.window, plan.query
    cluster = SimulatedCluster(
        nodes=config.nodes, cores_per_node=config.cores_per_node, costs=config.costs
    )
    confidence = config.confidence
    columnar_reason = _columnar_reason(stream, query)
    _note_columnar(run_info, columnar_reason)
    use_columns = columnar_reason is None
    telemetry, timer, trace = _telemetry_setup(plan, run_info)
    metrics = telemetry.metrics if telemetry is not None else NULL_METRICS
    observed_counter = metrics.counter("items.observed")
    kept_counter = metrics.counter("items.sampled")
    pane_counter = metrics.counter("panes")
    bound_strategy = get_strategy(plan.strategy).bind(plan)
    bound_strategy.attach_telemetry(telemetry)
    controller = _make_controller(plan, telemetry)
    store, every = _checkpoint_setup(plan, checkpoint_store)
    if resume_from is not None:
        _validate_resume(plan, resume_from, len(stream))
    last_ts = stream[-1][0] if stream else 0.0
    timestamp_of = itemgetter(0)
    prior_results: List[WindowResult] = (
        list(resume_from.results) if resume_from is not None else []
    )
    # Pane bookkeeping shared by the operator hooks (closures cannot rebind
    # locals of this frame).
    pane_meta = {
        "index": resume_from.pane_index if resume_from is not None else 0,
        "emitted": list(prior_results),
        "value": None,
    }
    # Telemetry cells shared by the operator hooks: pane ordinal for the
    # pane timer, kept-count accumulator for the settle-up ledger.
    tel_pane = [0]
    kept_cell = [0]

    try:
        trace.begin(
            "run", system=plan.name, engine="pipelined", strategy=plan.strategy
        )
        if bound_strategy.samples_intervals:
            if controller is not None:
                initial = controller.initial_total(int(_per_slide_items(stream, window)))
            else:
                initial = _interval_budget(stream, window, config)
            # §2.3: sub-stream sources are declared at the aggregator; give the
            # allocator the stratum count so the first interval splits fairly.
            sampler = bound_strategy.interval_sampler(
                initial,
                _strata_hint(stream, query.key_fn) if stream else 1,
            )
            op_start = 0.0
            preload = None
            feed = stream
            if resume_from is not None:
                state = resume_from.state
                bound_strategy.restore(state["strategy"])
                restore_interval_sampler(sampler, state["sampler"])
                if controller is not None and state["controller"] is not None:
                    restore_controller(controller, state["controller"])
                preload = list(state["recent"])
                op_start = resume_from.pane_end
                feed = stream[resume_from.stream_position :]

            def count_kept(sample):
                kept = sample.total_items
                kept_cell[0] += kept
                kept_counter.inc(kept)
                return kept

            def aggregate_samples(merged):
                timer.open()
                estimate, bound, groups, strata = estimate_pane_stats(
                    merged, query, confidence
                )
                if controller is not None:
                    bound_strategy.set_interval_budget(
                        controller.on_pane(strata, bound, merged.total_count)
                    )
                recovery = tuple(bound_strategy.drain_recovery_events())
                timer.lap("estimate")
                tel_pane[0] += 1
                pane_counter.inc()
                timer.close(tel_pane[0])
                value = (
                    estimate, bound, groups, merged.total_items, merged.total_count,
                    recovery,
                )
                pane_meta["value"] = value
                return value

            state_hook = None
            if store is not None or on_pane is not None:

                def state_hook(ts, recent):
                    if ts > last_ts:
                        return  # end-of-stream flush pane: dropped below too
                    estimate, bound, groups, kept, total, recovery = pane_meta["value"]
                    pane_meta["index"] += 1
                    pane_meta["emitted"].append(
                        WindowResult(
                            end=ts,
                            estimate=estimate,
                            exact=None,
                            error=bound,
                            groups=groups,
                            sampled_items=kept,
                            total_items=total,
                            recovery=recovery,
                        )
                    )
                    if on_pane is not None:
                        on_pane(pane_meta["emitted"][-1])
                    if store is None or pane_meta["index"] % every:
                        return
                    save_started = (
                        time.perf_counter() if telemetry is not None else 0.0
                    )
                    store.save(
                        PaneCheckpoint(
                            plan_name=plan.name,
                            engine=plan.engine,
                            strategy=plan.strategy,
                            pane_index=pane_meta["index"],
                            pane_end=ts,
                            stream_position=bisect_left(stream, ts, key=timestamp_of),
                            results=tuple(pane_meta["emitted"]),
                            state={
                                "strategy": bound_strategy.state(),
                                "sampler": interval_sampler_state(sampler),
                                "controller": (
                                    controller_state(controller)
                                    if controller is not None
                                    else None
                                ),
                                "recent": tuple(recent),
                            },
                        )
                    )
                    if telemetry is not None:
                        telemetry.note_stage(
                            "checkpoint", save_started, time.perf_counter()
                        )

            observed_counter.inc(len(feed))
            raw = (
                Pipeline(cluster)
                .sample_oasrs(sampler, slide=window.slide, start=op_start)
                .charge(count_fn=count_kept)
                .window_samples(
                    intervals_per_window=window.intervals_per_window,
                    aggregate=aggregate_samples,
                    charge_processing=False,
                    preload=preload,
                    state_hook=state_hook,
                )
                .sink_collect()
                .run(feed, chunk_size=config.chunk_size, columnar=use_columns)
            )
            records = [
                (ts, estimate, bound, groups, kept, total, recovery)
                for ts, (estimate, bound, groups, kept, total, recovery) in raw
            ]
        else:
            op_start = 0.0
            preload = None
            feed = stream
            if resume_from is not None:
                state = resume_from.state
                bound_strategy.restore(state["strategy"])
                preload = list(state["pane_items"])
                op_start = resume_from.pane_end
                feed = stream[resume_from.stream_position :]

            def aggregate_exact(pane_items):
                timer.open()
                sample = full_weight_sample([item for _ts, item in pane_items], query.key_fn)
                estimate, bound, groups = estimate_pane(sample, query, confidence)
                timer.lap("estimate")
                if store is not None or on_pane is not None:
                    # Sliding-window panes fire at consecutive slide multiples
                    # from the operator's start, so the pane count recovers the
                    # absolute fire time the aggregate callback never sees.
                    pane_meta["index"] += 1
                    end = op_start + (pane_meta["index"] - pane_meta["base"]) * window.slide
                    if end <= last_ts:
                        pane_meta["emitted"].append(
                            WindowResult(
                                end=end,
                                estimate=estimate,
                                exact=None,
                                error=bound,
                                groups=groups,
                                sampled_items=sample.total_items,
                                total_items=sample.total_items,
                            )
                        )
                        if on_pane is not None:
                            on_pane(pane_meta["emitted"][-1])
                        if store is not None and pane_meta["index"] % every == 0:
                            store.save(
                                PaneCheckpoint(
                                    plan_name=plan.name,
                                    engine=plan.engine,
                                    strategy=plan.strategy,
                                    pane_index=pane_meta["index"],
                                    pane_end=end,
                                    stream_position=bisect_left(
                                        stream, end, key=timestamp_of
                                    ),
                                    results=tuple(pane_meta["emitted"]),
                                    state={
                                        "strategy": bound_strategy.state(),
                                        "pane_items": tuple(pane_items),
                                    },
                                )
                            )
                            timer.lap("checkpoint")
                tel_pane[0] += 1
                pane_counter.inc()
                timer.close(tel_pane[0])
                return estimate, bound, groups, sample.total_items

            pane_meta["base"] = pane_meta["index"]
            # The exact path consumes every item at full weight: its sample
            # cost *is* the stream.
            kept_cell[0] = len(feed)
            observed_counter.inc(len(feed))
            kept_counter.inc(len(feed))
            raw = (
                Pipeline(cluster)
                .charge()  # per-item query processing, charged exactly once
                .window(
                    length=window.length,
                    slide=window.slide,
                    aggregate=aggregate_exact,
                    start=op_start,
                    charge_processing=False,
                    preload=preload,
                )
                .sink_collect()
                .run(feed, chunk_size=config.chunk_size, columnar=use_columns)
            )
            records = [
                (ts, estimate, bound, groups, n, n, ())
                for ts, (estimate, bound, groups, n) in raw
            ]

    finally:
        _finish_run(bound_strategy, run_info)
        trace.close()
    if run_info is not None:
        run_info["sampled_total"] = kept_cell[0]

    # Drop the end-of-stream flush pane (it covers a partial interval beyond
    # the last watermark); the batched engine emits no such pane, so keeping
    # it would skew cross-system accuracy comparisons.
    results: List[WindowResult] = list(prior_results)
    for ts, estimate, bound, groups, kept, total, recovery in records:
        if ts > last_ts:
            continue
        results.append(
            WindowResult(
                end=ts,
                estimate=estimate,
                exact=None,
                error=bound,
                groups=groups,
                sampled_items=kept,
                total_items=total,
                recovery=recovery,
            )
        )
    if controller is not None and adaptation_log is not None:
        adaptation_log.extend(controller.trajectory[: len(results)])
    return results, cluster


# ---------------------------------------------------------------------------
# Direct engine (the repo's own chunked/sharded executor)
# ---------------------------------------------------------------------------


def _interval_moments(sample, value_fn):
    """Per-stratum sufficient statistics (y, c, Σv, Σv²) of one interval.

    Computed once when the interval closes; panes pool these instead of
    re-scanning every sampled item per pane — batch-level accounting in the
    estimation layer, matching the chunk-level accounting in the samplers.

    With the canonical value projection the value column is pulled out in
    one C-level pass (``fromiter`` over the second tuple slot) instead of a
    per-item listcomp; the array holds the identical Python floats either
    way, so sums and squares are bitwise unchanged.
    """
    moments = []
    value_of = itemgetter(1)
    for stratum in sample:
        items = stratum.items
        y = len(items)
        if y == 0:
            continue
        canonical = value_fn is item_value
        raw = getattr(items, "value_list", None) if canonical else None
        if _np is not None and y >= 1024:
            if raw is not None:
                array = _np.asarray(raw(), dtype=_np.float64)
            elif canonical:
                array = _np.fromiter(
                    map(value_of, items), dtype=_np.float64, count=y
                )
            else:
                array = _np.asarray([value_fn(x) for x in items], dtype=_np.float64)
            total = float(array.sum())
            sumsq = float(_np.dot(array, array))
        else:
            values = raw() if raw is not None else [value_fn(x) for x in items]
            total = math.fsum(values)
            sumsq = math.fsum(v * v for v in values)
        moments.append((stratum.key, y, stratum.count, total, sumsq))
    return moments


def _pane_stats(moment_sets) -> List[StratumStats]:
    """Pool interval moments into the pane's per-stratum `StratumStats`.

    Counts and sums add across intervals; the pooled unbiased variance
    comes from the summed squares (Equation 7 on the concatenated sample),
    and the pooled Equation-1 weight re-derives as ΣC / ΣY — algebraically
    identical to merging the samples and recomputing.
    """
    pooled = {}
    for moments in moment_sets:
        for key, y, c, total, sumsq in moments:
            if key in pooled:
                py, pc, pt, ps = pooled[key]
                pooled[key] = (py + y, pc + c, pt + total, ps + sumsq)
            else:
                pooled[key] = (y, c, total, sumsq)
    strata = []
    for key, (y, c, total, sumsq) in pooled.items():
        mean = total / y if y else 0.0
        variance = (
            max(0.0, (sumsq - y * mean * mean) / (y - 1)) if y > 1 else 0.0
        )
        strata.append(
            StratumStats(
                key=key, y=y, c=c, weight=stratum_weight(c, y),
                total=total, mean=mean, variance=variance,
            )
        )
    return strata


def run_direct(
    plan: ExecutionPlan,
    adaptation_log: Optional[List[AdaptationPoint]] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    resume_from: Optional[PaneCheckpoint] = None,
    run_info: Optional[dict] = None,
    on_pane: Optional[Callable[[WindowResult], None]] = None,
) -> Tuple[List[WindowResult], SimulatedCluster, float]:
    """Interval loop over the raw sampling stack; no engine in the hot path.

    Returns ``(results, cluster, sampling_seconds)`` where the last element
    is the wall time spent inside the sampling path itself (the
    offer/process_chunk/shard section) — the number the chunked and sharded
    fast paths improve, reported by
    `repro.system.native.NativeStreamApproxSystem.timed_execute`.

    Sharded samplers get the stream pinned up front (``pin_source``), so
    the persistent worker pool forks with the stream already in memory and
    each interval crosses the process boundary as a ``[lo, hi)`` index
    span; the pool spawns on the first parallel interval and is drained in
    the loop's ``finally``.

    Checkpoints capture the interval sampler (in-process or sharded), the
    bound strategy, the controller, and the in-window interval history;
    resume restarts the interval loop at the checkpointed boundary.
    """
    stream = _record_stream(plan.source)
    stream, plan = _intern_projections(stream, plan)
    config, window, query = plan.config, plan.window, plan.query
    cluster = SimulatedCluster(
        nodes=config.nodes, cores_per_node=config.cores_per_node, costs=config.costs
    )
    results: List[WindowResult] = []
    if not stream:
        if resume_from is not None:
            results = list(resume_from.results)
        return results, cluster, 0.0
    columnar_reason = _columnar_reason(stream, query)
    _note_columnar(run_info, columnar_reason)
    # Columnar hot loop: interval boundaries from searchsorted on the
    # timestamp column, chunk feeding through zero-copy column views.
    ts_col = stream.ts if columnar_reason is None else None
    telemetry, timer, trace = _telemetry_setup(plan, run_info)
    metrics = telemetry.metrics if telemetry is not None else NULL_METRICS
    observed_counter = metrics.counter("items.observed")
    kept_counter = metrics.counter("items.sampled")
    pane_counter = metrics.counter("panes")
    controller = _make_controller(plan, telemetry)
    if controller is not None:
        initial = controller.initial_total(int(_per_slide_items(stream, window)))
    else:
        initial = _interval_budget(stream, window, config)
    # Per-interval budget shared with the pipelined engine, with the
    # declared strata splitting the first interval's allocation.
    bound_strategy = get_strategy(plan.strategy).bind(plan)
    bound_strategy.attach_telemetry(telemetry)
    sampler = bound_strategy.interval_sampler(
        initial, _strata_hint(stream, query.key_fn)
    )
    # Sharded samplers expose whole-interval entry points; use them to skip
    # the per-item offer buffering (the executor chunks internally).  With
    # the stream pinned before the pool spawns, forked workers inherit it
    # and an interval is addressed by its index span alone.
    run_interval = getattr(sampler, "run_interval", None)
    run_span = getattr(sampler, "run_interval_span", None)
    if run_span is not None:
        sampler.pin_source(stream)
    # Stage label for the sampling section: the sharded entry points cross
    # the worker-pool transport; the in-process paths are plain offers.
    sampling_stage = "transport" if run_interval is not None else "offer"
    store, every = _checkpoint_setup(plan, checkpoint_store)

    chunk = config.chunk_size
    history = deque(maxlen=window.intervals_per_window)
    sampling_seconds = 0.0
    # Slide-interval boundaries via bisection on the (ordered) timestamps
    # instead of a per-item batching loop; pane ends match `Batcher`'s
    # (every slide multiple, items with ts == boundary go to the next
    # interval, final partial interval keeps its nominal end).
    n = len(stream)
    slide = window.slide
    timestamp_of = itemgetter(0)
    start_idx = 0
    boundary = slide
    pane_index = 0
    if resume_from is not None:
        _validate_resume(plan, resume_from, n)
        state = resume_from.state
        bound_strategy.restore(state["strategy"])
        restore_interval_sampler(sampler, state["sampler"])
        if controller is not None and state["controller"] is not None:
            restore_controller(controller, state["controller"])
        history.extend(state["history"])
        results = list(resume_from.results)
        start_idx = resume_from.stream_position
        boundary = resume_from.pane_end + slide
        pane_index = resume_from.pane_index
    sampled_total = 0
    try:
        trace.begin(
            "run", system=plan.name, engine="direct", strategy=plan.strategy
        )
        while start_idx < n:
            timer.open()
            if ts_col is not None:
                # Equivalent to the bisect below: the column holds the very
                # same float timestamps, "left" matches bisect_left.
                end_idx = int(_np.searchsorted(ts_col, boundary, side="left"))
            else:
                end_idx = bisect_left(
                    stream, boundary, lo=start_idx, key=timestamp_of
                )
            lo = start_idx
            start_idx = end_idx
            pane_end = boundary
            boundary += slide
            cluster.sample_items(end_idx - lo, "oasrs")
            timer.lap("ingest")
            sampling_started = time.perf_counter()
            if run_span is not None:
                # Span-addressed sharding: no item materialization here at all;
                # pooled workers slice their shard from the pinned stream.
                sample = run_span(lo, end_idx)
            elif run_interval is not None:
                if ts_col is not None:
                    sample = run_interval(stream.item_slice(lo, end_idx))
                else:
                    sample = run_interval([item for _ts, item in stream[lo:end_idx]])
            elif chunk > 1 and end_idx - lo > 1:
                process_chunk = sampler.process_chunk
                if ts_col is not None:
                    # Column hand-off: each chunk is a zero-copy view; the
                    # sampler's columnar kernel groups strata by interned
                    # code with the same first-appearance order (and RNG
                    # stream) as the per-item dict grouping.
                    view = stream.item_slice(lo, end_idx)
                    for start in range(0, end_idx - lo, chunk):
                        process_chunk(view[start : start + chunk])
                else:
                    items = [item for _ts, item in stream[lo:end_idx]]
                    for start in range(0, len(items), chunk):
                        process_chunk(items[start : start + chunk])
                sample = sampler.close_interval()
            else:
                offer = sampler.offer
                for _ts, item in stream[lo:end_idx]:
                    offer(item)
                sample = sampler.close_interval()
            sampling_seconds += time.perf_counter() - sampling_started
            timer.lap(sampling_stage)
            sampled_total += sample.total_items
            observed_counter.inc(end_idx - lo)
            kept_counter.inc(sample.total_items)
            cluster.process_items(sample.total_items)
            if query.group_fn is None and query.kind != "quantile":
                # Moment path: pool per-interval sufficient statistics — no
                # per-pane re-scan of the sampled items.  Quantiles need the
                # kept values themselves (an order statistic has no pooled
                # sufficient statistics), so they take the merge path below.
                history.append(_interval_moments(sample, query.value_fn))
                strata = _pane_stats(history)
                population = sum(s.c for s in strata)
                weighted_total = math.fsum(s.total * s.weight for s in strata)
                if query.kind == "sum":
                    value = weighted_total
                else:
                    value = weighted_total / population if population else 0.0
                bound = estimate_error(
                    QueryResult(value=value, strata=strata, kind=query.kind),
                    confidence=config.confidence,
                )
                groups = {}
                sampled = sum(s.y for s in strata)
            else:
                # Grouped queries need the items themselves: merge samples
                # and evaluate through the shared estimation path.
                history.append(sample)
                merged = combine_worker_samples(list(history))
                value, bound, groups, strata = estimate_pane_stats(
                    merged, query, config.confidence
                )
                population = merged.total_count
                sampled = merged.total_items
            if controller is not None:
                # §4.2 feedback: re-derive the next interval's budget from this
                # pane's statistics; the shared water-filling policy propagates
                # it to the in-process and sharded samplers alike.
                bound_strategy.set_interval_budget(
                    controller.on_pane(strata, bound, population)
                )
            recovery = tuple(bound_strategy.drain_recovery_events())
            timer.lap("estimate")
            results.append(
                WindowResult(
                    end=pane_end,
                    estimate=value,
                    exact=None,
                    error=bound,
                    groups=groups,
                    sampled_items=sampled,
                    total_items=population,
                    recovery=recovery,
                )
            )
            if on_pane is not None:
                on_pane(results[-1])
            pane_index += 1
            pane_counter.inc()
            if store is not None and pane_index % every == 0:
                store.save(
                    PaneCheckpoint(
                        plan_name=plan.name,
                        engine=plan.engine,
                        strategy=plan.strategy,
                        pane_index=pane_index,
                        pane_end=pane_end,
                        stream_position=start_idx,
                        results=tuple(results),
                        state={
                            "strategy": bound_strategy.state(),
                            "sampler": interval_sampler_state(sampler),
                            "controller": (
                                controller_state(controller)
                                if controller is not None
                                else None
                            ),
                            "history": tuple(history),
                        },
                    )
                )
                timer.lap("checkpoint")
            timer.close(pane_index, end=pane_end)
    finally:
        _finish_run(bound_strategy, run_info)
        trace.close()
    if run_info is not None:
        run_info["sampled_total"] = sampled_total
    if controller is not None and adaptation_log is not None:
        adaptation_log.extend(controller.trajectory)
    return results, cluster, sampling_seconds
