"""Pane checkpoints: capture runtime state at interval boundaries, resume later.

Fault tolerance as a runtime service (ROADMAP item 3).  A checkpoint is
taken at pane boundaries — the only points where the sampling stack is
quiescent: the closing interval's reservoirs have been merged, the
`BudgetController` has issued its next-interval decision, and the next
interval's sampler holds zero items.  The snapshot is therefore small
(reservoir contents + counters + RNG states + controller trajectory) and
exact: resuming from it and replaying the stream from the recorded offset
produces panes bitwise identical to an uninterrupted run.

Three pieces:

* `CheckpointPolicy` — the ``SystemConfig(checkpoint=...)`` knob: how
  often (in panes) to snapshot.
* `PaneCheckpoint` — one immutable snapshot: plan identity, pane index /
  end-timestamp, the stream offset to replay from, the panes emitted so
  far, and the plain-data state dict.  Picklable (``to_bytes`` /
  ``from_bytes``) because the state deliberately contains no callables —
  the plan supplies ``key_fn`` / ``value_fn`` again on restore.
* `CheckpointStore` — an in-memory (optionally file-backed) map from pane
  index to checkpoint.

The replay-offset contract: ``stream_position`` indexes the *merged,
materialized* event list a `PlanSource` yields.  For `ListSource` that is
trivially stable; for `TopicSource` it is stable because the broker
stamps every record with a topic-global ``seq`` and the source merges
partitions by ``(timestamp, seq)`` — re-draining the topic reproduces the
exact production order, so slicing at ``stream_position`` resumes at
precisely the first un-consumed event.  `build_plan` enforces this
(`PlanError` for non-replayable sources).

State-snapshot primitives for the core sampling objects live in
`repro.core.recovery`; this module adds the runtime-side pieces (the
`BudgetController` and interval-sampler dispatch) and the storage layer.
This module must stay importable from ``runtime/config.py`` — it imports
only ``repro.core``.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.budget import AdaptiveSampleSizeController
from ..core.distributed import ShardedIntervalSampler
from ..core.recovery import (
    restore_attrs,
    restore_sampler,
    sampler_state,
    snapshot_attrs,
)

__all__ = [
    "CheckpointPolicy",
    "PaneCheckpoint",
    "CheckpointStore",
    "controller_state",
    "restore_controller",
    "interval_sampler_state",
    "restore_interval_sampler",
]


@dataclass(frozen=True)
class CheckpointPolicy:
    """How often the runtime snapshots pane state.

    ``every=k`` checkpoints after every k-th pane; 1 (the default)
    checkpoints every pane boundary.
    """

    every: int = 1

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"checkpoint every must be >= 1, got {self.every}")


@dataclass(frozen=True)
class PaneCheckpoint:
    """One pane-boundary snapshot of a running plan.

    ``stream_position`` is the index into the source's merged event list
    of the first event *not yet consumed*; ``results`` are the panes
    emitted so far (they are part of the run's output, not recomputable
    without replaying from zero); ``state`` is the plain-data snapshot of
    every stateful runtime object (strategy, sampler, controller, window
    history).
    """

    plan_name: str
    engine: str
    strategy: str
    pane_index: int
    pane_end: float
    stream_position: int
    results: Tuple[Any, ...]
    state: Dict[str, Any]

    def to_bytes(self) -> bytes:
        return pickle.dumps(self)

    @staticmethod
    def from_bytes(data: bytes) -> "PaneCheckpoint":
        checkpoint = pickle.loads(data)
        if not isinstance(checkpoint, PaneCheckpoint):
            raise TypeError(
                f"expected a pickled PaneCheckpoint, got {type(checkpoint).__name__}"
            )
        return checkpoint


class CheckpointStore:
    """Pane-indexed checkpoint storage.

    In-memory by default; ``dump`` / ``load`` move the whole store through
    a file for cross-process resume.  The newest checkpoint wins ties on
    pane index (a resumed run re-saves the panes it re-reaches).
    """

    def __init__(self) -> None:
        self._checkpoints: Dict[int, PaneCheckpoint] = {}

    def save(self, checkpoint: PaneCheckpoint) -> None:
        self._checkpoints[checkpoint.pane_index] = checkpoint

    def get(self, pane_index: int) -> Optional[PaneCheckpoint]:
        return self._checkpoints.get(pane_index)

    def latest(self) -> Optional[PaneCheckpoint]:
        if not self._checkpoints:
            return None
        return self._checkpoints[max(self._checkpoints)]

    def indices(self) -> List[int]:
        return sorted(self._checkpoints)

    def __len__(self) -> int:
        return len(self._checkpoints)

    def dump(self, path: str) -> None:
        with open(path, "wb") as fh:
            pickle.dump(list(self._checkpoints.values()), fh)

    @classmethod
    def load(cls, path: str) -> "CheckpointStore":
        store = cls()
        with open(path, "rb") as fh:
            checkpoints = pickle.load(fh)
        for checkpoint in checkpoints:
            if not isinstance(checkpoint, PaneCheckpoint):
                raise TypeError(
                    f"checkpoint file holds {type(checkpoint).__name__}, "
                    "expected PaneCheckpoint entries"
                )
            store.save(checkpoint)
        return store


# ---------------------------------------------------------------------------
# Runtime-object snapshots
# ---------------------------------------------------------------------------


def controller_state(controller) -> Dict[str, Any]:
    """Snapshot a `BudgetController`: cost model, trajectory, feedback loop."""
    feedback = controller._feedback
    return {
        "vcf": snapshot_attrs(controller.vcf),
        "trajectory": list(controller.trajectory),
        "total": controller._total,
        "feedback": None if feedback is None else snapshot_attrs(feedback),
    }


def restore_controller(controller, state: Dict[str, Any]) -> None:
    """Restore a `controller_state` snapshot onto a same-config controller."""
    restore_attrs(controller.vcf, state["vcf"])
    controller.trajectory[:] = state["trajectory"]
    controller._total = state["total"]
    if state["feedback"] is None:
        controller._feedback = None
    else:
        feedback = AdaptiveSampleSizeController.__new__(AdaptiveSampleSizeController)
        feedback.__dict__.update(copy.deepcopy(state["feedback"]))
        controller._feedback = feedback


def interval_sampler_state(sampler) -> Dict[str, Any]:
    """Snapshot an interval sampler, whatever its execution mode.

    Dispatches on the two interval-sampler shapes the runtime builds: the
    in-process `OASRSSampler` and the `ShardedIntervalSampler` wrapper
    around the persistent multi-process executor.  The sharded snapshot
    needs nothing from the worker processes themselves: shard samplers are
    rebuilt from coordinator-drawn seeds every interval, so at a pane
    boundary the pool is stateless and the coordinator's RNG / live-set /
    policy snapshot (plus the flattened in-flight buffer) is the whole
    resumable state.
    """
    if isinstance(sampler, ShardedIntervalSampler):
        return {"kind": "sharded", "state": sampler.state()}
    return {"kind": "oasrs", "state": sampler_state(sampler)}


def restore_interval_sampler(sampler, payload: Dict[str, Any]) -> None:
    """Restore an `interval_sampler_state` snapshot onto a rebuilt sampler.

    Restoring a sharded sampler also tears down any spawned worker pool
    (`ShardedExecutor.restore`): the restored live-worker set need not
    match the running processes, so the pool re-spawns from the restored
    state on the next parallel interval.
    """
    kind = payload["kind"]
    if kind == "sharded":
        if not isinstance(sampler, ShardedIntervalSampler):
            raise ValueError(
                "checkpoint was taken with parallelism > 1 (sharded sampler); "
                "resume the plan with the same parallelism"
            )
        sampler.restore(payload["state"])
    elif kind == "oasrs":
        if isinstance(sampler, ShardedIntervalSampler):
            raise ValueError(
                "checkpoint was taken without parallelism (in-process sampler); "
                "resume the plan with the same parallelism"
            )
        restore_sampler(sampler, payload["state"])
    else:  # pragma: no cover - corrupt payloads only
        raise ValueError(f"unknown interval sampler kind {kind!r}")
