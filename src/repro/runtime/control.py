"""The per-interval budget control loop — plan → drive → observe → re-budget.

This module closes the paper's headline contract: the user specifies a
*query budget* (`repro.core.budget.AccuracyBudget` / `LatencyBudget` /
`ResourceBudget`) and the system adapts its per-interval sample size to
meet it, instead of running a fixed ``sampling_fraction`` forever.

`BudgetController` is the per-run state behind ``SystemConfig(budget=…)``.
Every engine driver performs the same control step when a pane closes:

1. **observe** — the pane's per-stratum `StratumStats` feed
   `VirtualCostFunction.observe` (variance estimates for the Equation-9
   inversion) and the pane's population refreshes the arrival-rate
   estimate,
2. **re-derive** — the virtual cost function translates the budget into a
   model-based sample size for the next interval (§7's sketch: inverted
   Equation 9 for accuracy budgets, the Pulsar-style token cost model for
   latency/resource budgets),
3. **feed back** — for accuracy budgets, the §4.2
   `AdaptiveSampleSizeController` additionally compares the *measured* CI
   half-width against the target and grows/decays the size
   multiplicatively, catching whatever the model missed (drifting
   variance, skew the worst-stratum approximation underestimates).

The chosen per-interval total is returned to the driver, which actuates it
through the bound strategy (`BoundStrategy.set_interval_budget` /
``set_sampling_fraction``), and recorded as an `AdaptationPoint` so the
whole trajectory is visible in the `repro.runtime.report.SystemReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.budget import (
    AccuracyBudget,
    AdaptiveSampleSizeController,
    VirtualCostFunction,
)
from ..core.error import ErrorBound
from ..core.query import StratumStats

__all__ = ["AdaptationPoint", "BudgetController"]


@dataclass(frozen=True)
class AdaptationPoint:
    """One step of the adaptation trajectory: what the controller saw and chose.

    Emitted once per pane; ``sample_budget`` is the total per-interval
    sample size chosen for the *next* interval, after observing the pane
    summarised by the other fields.
    """

    #: Event time of the pane that triggered this step (a slide multiple).
    interval_end: float
    #: Total per-interval sample budget chosen for the next interval.
    sample_budget: int
    #: The pane's measured CI half-width (absolute, in query units).
    measured_margin: float
    #: The same margin relative to the pane's estimate (inf when estimate=0).
    relative_margin: float
    #: Estimated items arriving per slide interval (pane population / k).
    observed_items: int
    #: Number of strata observed in the pane.
    strata: int


class BudgetController:
    """Translate a query budget into per-interval sample sizes, adaptively.

    One instance lives for one run (like a `BoundStrategy`); the engine
    drivers call `initial_total` before the first interval and `on_pane`
    after every pane close.  The controller is engine-agnostic — the same
    instance drives the batched, pipelined, and direct loops, including the
    sharded `repro.core.distributed.ShardedExecutor` path (the drivers
    actuate through the bound strategy, which mutates the shared
    water-filling policy).

    Accuracy budgets compare *absolute* CI half-widths: the pane's measured
    ``ErrorBound.margin`` against ``AccuracyBudget.target_margin``, both in
    the query's units.  The adaptive controller is only the feedback trim —
    the model-based size from the virtual cost function acts as a floor, so
    a variance spike feeds forward immediately instead of waiting for
    multiplicative growth to catch up.
    """

    def __init__(self, budget, config, window) -> None:
        self.budget = budget
        self.window = window
        self.vcf = VirtualCostFunction(
            cores=config.nodes * config.cores_per_node,
            default_fraction=config.sampling_fraction,
        )
        self.trajectory: List[AdaptationPoint] = []
        self._feedback: Optional[AdaptiveSampleSizeController] = None
        self._total: Optional[int] = None
        self._telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        """Emit each re-target decision as a trace event on this collector.

        The event carries the same fields as the `AdaptationPoint` it
        mirrors, so the §4.2 trajectory shows up inline in the span tree
        (and chrome://tracing) instead of only post-hoc on the report.
        """
        self._telemetry = telemetry

    def initial_total(self, expected_items_per_interval: int) -> int:
        """The first interval's total sample budget, before any observation.

        Accuracy budgets have no variance estimate yet, so they start from
        the configured ``sampling_fraction`` seed (the virtual cost
        function's pre-observation default); latency/resource budgets are
        capacity-derived and bind from the very first interval.
        """
        expected = max(1, int(expected_items_per_interval))
        fraction = self.vcf.sampling_fraction(self.budget, expected)
        self._total = max(1, int(fraction * expected))
        return self._total

    @property
    def last_point(self) -> Optional[AdaptationPoint]:
        return self.trajectory[-1] if self.trajectory else None

    def on_pane(
        self,
        strata_stats: Sequence[StratumStats],
        bound: Optional[ErrorBound],
        pane_items: int,
    ) -> int:
        """The per-interval control step; returns the next interval's budget.

        ``strata_stats`` and ``bound`` summarise the pane that just closed;
        ``pane_items`` is its population (window-level — divided by the
        window's interval count to refresh the per-interval rate estimate).
        """
        self.vcf.observe(strata_stats)
        # The first k−1 panes cover fewer than a full window's worth of
        # intervals, so divide by the intervals actually behind this pane.
        intervals = min(len(self.trajectory) + 1, self.window.intervals_per_window)
        per_interval = max(1, round(pane_items / intervals)) if pane_items else 1
        strata = max(1, len(strata_stats))
        model_total = min(
            per_interval, self.vcf.sample_size(self.budget, per_interval) * strata
        )
        measured = bound.margin if bound is not None else 0.0
        if isinstance(self.budget, AccuracyBudget):
            if self._feedback is None:
                seed = self._total if self._total is not None else model_total
                self._feedback = AdaptiveSampleSizeController(
                    initial_size=max(1, seed),
                    target_relative_margin=self.budget.target_margin,
                    max_size=1_000_000_000,
                )
            fed = self._feedback.update(measured)
            total = min(per_interval, max(fed, model_total))
            # Keep the feedback loop operating on the size actually applied
            # (the model floor and the per-interval cap both bypass it).
            self._feedback.current_size = total
        else:
            total = model_total
        total = max(1, total)
        self._total = total
        point = AdaptationPoint(
            interval_end=(len(self.trajectory) + 1) * self.window.slide,
            sample_budget=total,
            measured_margin=measured,
            relative_margin=(
                bound.relative_margin if bound is not None else 0.0
            ),
            observed_items=per_interval,
            strata=strata,
        )
        self.trajectory.append(point)
        if self._telemetry is not None:
            self._telemetry.tracer.event(
                "budget.retarget",
                interval_end=point.interval_end,
                sample_budget=point.sample_budget,
                measured_margin=point.measured_margin,
                relative_margin=point.relative_margin,
                observed_items=point.observed_items,
                strata=point.strata,
            )
            self._telemetry.metrics.gauge("budget.sample_budget").set(total)
            self._telemetry.metrics.counter("budget.retargets").inc()
        return total
