"""Shared-source multiplexing: N tenants over one stream ingest it once.

Every query plan needs a `repro.runtime.source.PlanSource`.  Naively, ten
tenants querying the same broker topic would drain it ten times and build
ten copies of the record columns; the `SourceHub` gives each *named*
source one materialization — a single `ListSource` wrapping a single
`RecordBatch`, whose lazily built NumPy columns (and interned-projection
caches) are therefore shared by every plan that references the name.

Three registration shapes cover the deployment:

* ``register(name, source_or_stream, query=...)`` — an explicit source or
  in-memory stream, optionally with the source's default `StreamQuery`
  (tenants may override per submission).
* ``register_topic(name, broker, topic, ...)`` — a broker topic; drained
  once, at first resolve.  A non-rewinding topic is therefore a snapshot:
  later appends need a re-register.
* workload specs — a dict like ``{"workload": "gaussian", "rate": 200,
  "duration": 30, "seed": 7}`` resolves through the CLI's workload table
  and is cached under its canonical parameters, so two tenants asking for
  the same synthetic stream share one generated instance.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from ..runtime.config import StreamQuery
from ..runtime.source import ListSource, PlanSource
from .scheduler import AdmissionRejected, RejectionReason

__all__ = ["SourceHub"]

#: A submission's source reference: a registered name or a workload spec.
SourceRef = Union[str, Dict[str, object]]


def _default_workload_factory(name: str, rate: int, duration: int, seed: int):
    # Imported lazily: repro.cli imports repro.service for the serve
    # subcommand, so a module-level import here would be circular.
    from ..cli import make_workload

    return make_workload(name, rate, duration, seed)


class SourceHub:
    """Registry resolving source references to shared, materialized sources.

    Example
    -------
    >>> hub = SourceHub()
    >>> hub.register("ticks", [(0.0, ("A", 1.0)), (1.0, ("B", 2.0))])
    >>> source, _query = hub.resolve("ticks")
    >>> len(source.events())
    2
    """

    def __init__(
        self,
        workload_factory: Optional[Callable[[str, int, int, int], tuple]] = None,
    ) -> None:
        self._sources: Dict[str, ListSource] = {}
        self._queries: Dict[str, Optional[StreamQuery]] = {}
        self._pending: Dict[str, PlanSource] = {}
        self._workload_factory = workload_factory or _default_workload_factory
        #: How many times a stream was actually ingested/materialized —
        #: the multiplexing tests assert this stays at one per source.
        self.materializations = 0

    # -- registration --------------------------------------------------------

    def register(
        self,
        name: str,
        source,
        query: Optional[StreamQuery] = None,
    ) -> None:
        """Register a stream / source under ``name`` (replacing any prior).

        A `ListSource` (or in-memory stream, which is wrapped in one) is
        materialized immediately; other `PlanSource`s lazily, at first
        resolve — so registering a topic is free until someone queries it.
        """
        self._queries[name] = query
        self._pending.pop(name, None)
        self._sources.pop(name, None)
        if isinstance(source, ListSource):
            self._sources[name] = source
            self.materializations += 1
        elif isinstance(source, PlanSource):
            self._pending[name] = source
        else:
            self._sources[name] = ListSource(source)
            self.materializations += 1

    def register_topic(
        self,
        name: str,
        broker,
        topic: str,
        query: Optional[StreamQuery] = None,
        **topic_kwargs,
    ) -> None:
        """Register a broker topic; drained once, at first resolve."""
        from ..runtime.source import TopicSource

        self.register(name, TopicSource(broker, topic, **topic_kwargs), query=query)

    @property
    def names(self):
        return sorted(set(self._sources) | set(self._pending))

    # -- resolution ----------------------------------------------------------

    def resolve(self, ref: SourceRef) -> Tuple[ListSource, Optional[StreamQuery]]:
        """A submission's source reference → (shared source, default query).

        Raises `AdmissionRejected` (``unknown-source``) for names never
        registered or workload specs the factory does not recognize.
        """
        if isinstance(ref, dict):
            return self._resolve_workload(ref)
        if ref in self._sources:
            return self._sources[ref], self._queries.get(ref)
        pending = self._pending.pop(ref, None)
        if pending is not None:
            # Materialize once: drain the source into a shared ListSource so
            # every later resolve reuses the same cached-column batch.
            source = ListSource(pending.events())
            self.materializations += 1
            self._sources[ref] = source
            return source, self._queries.get(ref)
        raise AdmissionRejected(
            RejectionReason.UNKNOWN_SOURCE,
            f"no source named {ref!r}; registered: {self.names}",
        )

    def _resolve_workload(
        self, spec: Dict[str, object]
    ) -> Tuple[ListSource, Optional[StreamQuery]]:
        try:
            workload = str(spec["workload"])
        except KeyError:
            raise AdmissionRejected(
                RejectionReason.UNKNOWN_SOURCE,
                f"workload spec needs a 'workload' key, got {sorted(spec)}",
            ) from None
        rate = int(spec.get("rate", 200))
        duration = int(spec.get("duration", 30))
        seed = int(spec.get("seed", 42))
        key = f"workload:{workload}:rate={rate}:duration={duration}:seed={seed}"
        if key in self._sources:
            return self._sources[key], self._queries.get(key)
        try:
            stream, query = self._workload_factory(workload, rate, duration, seed)
        except (KeyError, ValueError) as exc:
            raise AdmissionRejected(
                RejectionReason.UNKNOWN_SOURCE,
                f"unknown workload {workload!r}: {exc}",
            ) from None
        source = ListSource(stream)
        self.materializations += 1
        self._sources[key] = source
        self._queries[key] = query
        return source, query
