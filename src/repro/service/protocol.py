"""The newline-JSON wire protocol of the query service's TCP endpoint.

One JSON object per line, UTF-8, ``\\n``-terminated, both directions.

Client → server::

    {"op": "submit", "id": "c1", "tenant": "alice",
     "source": "ticks" | {"workload": "gaussian", "rate": 200, ...},
     "engine": "direct", "strategy": "oasrs",
     "kind": "mean" | "sum" | "quantile", "q": 0.95,
     "window": {"length": 10.0, "slide": 5.0},
     "config": {"fraction": 0.4, "seed": 7, "chunk_size": 256,
                "parallelism": 1, "confidence": 0.95,
                "target_margin": 0.5, "latency_budget": 2.0,
                "cores_budget": 8}}
    {"op": "ping"}
    {"op": "metrics"}
    {"op": "close"}

Only ``tenant`` and ``source`` are required; everything else defaults to
the source's registered query and the stock window/config.  ``id`` is an
opaque client correlation token echoed on every response for that
submission.

Server → client (``type`` discriminates)::

    {"type": "admitted", "id": ..., "query_id": 7, "cost": 1234.0}
    {"type": "rejected", "id": ..., "reason": "tenant-budget-exhausted",
     "detail": "..."}
    {"type": "pane", "id": ..., "query_id": 7, "end": 5.0,
     "estimate": 9.8, "sampled_items": 420, "total_items": 1000,
     "error": {"margin": 0.3, "confidence": 0.95,
               "interval": [9.5, 10.1], "q": 0.5}}   # q only for quantiles
    {"type": "answer", "id": ..., "query_id": 7, "estimate": 9.9,
     "panes": 5, "virtual_seconds": 0.8, "columnar_fallback": null,
     "parallel_fallback": null, "time_to_first_pane": 0.01,
     "time_to_answer": 0.05, "tenant": "alice"}
    {"type": "error", "id": ..., "detail": "..."}
    {"type": "pong"}
    {"type": "metrics", "id": ...,
     "service": {"submitted": 12, "admitted": 10, "rejected": 2,
                 "completed": 9, "failed": 0, "in_flight": 1,
                 "queue_depth": 0, "capacity": 50000.0,
                 "active_cost": 1234.0, "admission_wait": {...},
                 "time_to_first_pane": {...}, "time_to_answer": {...}},
     "tenants": {"alice": {"budget": 1.0, "observed": ..., "sampled": ...,
                           "settled": ..., "queue_depth": 0,
                           "admission_wait": {...}, ...}}}

The protocol carries *results*, not code: projections cannot cross the
wire, so TCP clients can only reference sources registered server-side
(by name or workload spec) — exactly the multiplexing the `SourceHub`
exists to provide.
"""

from __future__ import annotations

import json
from typing import Optional

from ..core.budget import AccuracyBudget, LatencyBudget, ResourceBudget
from ..runtime.config import SystemConfig, WindowConfig
from ..runtime.report import WindowResult
from .scheduler import AdmissionRejected

__all__ = [
    "encode_line",
    "decode_line",
    "submission_from_message",
    "admitted_message",
    "rejection_message",
    "pane_message",
    "answer_message",
    "error_message",
    "metrics_message",
]


def encode_line(payload: dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed JSON line: {exc}") from None
    if not isinstance(message, dict):
        raise ValueError(f"expected a JSON object, got {type(message).__name__}")
    return message


def _config_from_message(spec: dict) -> SystemConfig:
    kwargs = {}
    if "fraction" in spec:
        kwargs["sampling_fraction"] = float(spec["fraction"])
    for key in ("seed", "chunk_size", "parallelism"):
        if key in spec:
            kwargs[key] = int(spec[key])
    if "confidence" in spec:
        kwargs["confidence"] = float(spec["confidence"])
    confidence = kwargs.get("confidence", 0.95)
    if "target_margin" in spec:
        kwargs["budget"] = AccuracyBudget(
            target_margin=float(spec["target_margin"]), confidence=confidence
        )
    elif "latency_budget" in spec:
        kwargs["budget"] = LatencyBudget(max_seconds=float(spec["latency_budget"]))
    elif "cores_budget" in spec:
        kwargs["budget"] = ResourceBudget(workers=int(spec["cores_budget"]))
    return SystemConfig(**kwargs)


def submission_from_message(message: dict):
    """Build a `QuerySubmission` from a decoded ``submit`` message."""
    from .service import QuerySubmission

    try:
        tenant = str(message["tenant"])
        source = message["source"]
    except KeyError as exc:
        raise ValueError(f"submit message missing {exc.args[0]!r}") from None
    if not isinstance(source, (str, dict)):
        raise ValueError("source must be a registered name or a workload spec")
    window = None
    if "window" in message:
        w = message["window"]
        window = WindowConfig(
            length=float(w.get("length", 10.0)), slide=float(w.get("slide", 5.0))
        )
    config = None
    if "config" in message:
        config = _config_from_message(message["config"])
    return QuerySubmission(
        tenant_id=tenant,
        source=source,
        window=window,
        config=config,
        engine=str(message.get("engine", "direct")),
        strategy=str(message.get("strategy", "oasrs")),
        kind=message.get("kind"),
        q=float(message["q"]) if "q" in message else None,
        name=message.get("name"),
    )


def _error_payload(bound) -> Optional[dict]:
    if bound is None:
        return None
    payload = {
        "margin": bound.margin,
        "confidence": bound.confidence,
        "interval": list(bound.interval),
    }
    # DKW quantile brackets carry their rank; linear bounds do not.
    q = getattr(bound, "q", None)
    if q is not None:
        payload["q"] = q
        payload["effective_n"] = bound.effective_n
    return payload


def pane_message(client_id, handle, result: WindowResult) -> dict:
    return {
        "type": "pane",
        "id": client_id,
        "query_id": handle.query_id,
        "end": result.end,
        "estimate": result.estimate,
        "sampled_items": result.sampled_items,
        "total_items": result.total_items,
        "groups": {str(k): v for k, v in result.groups.items()},
        "error": _error_payload(result.error),
    }


def admitted_message(client_id, handle) -> dict:
    return {
        "type": "admitted",
        "id": client_id,
        "query_id": handle.query_id,
        "tenant": handle.tenant_id,
        "cost": handle.cost,
    }


def rejection_message(client_id, rejection: AdmissionRejected) -> dict:
    return {
        "type": "rejected",
        "id": client_id,
        "reason": rejection.reason.value,
        "detail": rejection.detail,
    }


def answer_message(client_id, answer) -> dict:
    report = answer.report
    return {
        "type": "answer",
        "id": client_id,
        "query_id": answer.query_id,
        "tenant": answer.tenant_id,
        "estimate": answer.estimate,
        "panes": len(report.results),
        "virtual_seconds": report.virtual_seconds,
        "items_total": report.items_total,
        "columnar_fallback": report.columnar_fallback,
        "parallel_fallback": report.parallel_fallback,
        "cost": answer.cost,
        "actual_cost": answer.actual_cost,
        "time_to_first_pane": answer.time_to_first_pane,
        "time_to_answer": answer.time_to_answer,
    }


def error_message(client_id, detail: str) -> dict:
    return {"type": "error", "id": client_id, "detail": detail}


def metrics_message(client_id, service) -> dict:
    """The ``metrics`` op's reply: the service's full metrics snapshot."""
    snapshot = service.metrics_snapshot()
    return {
        "type": "metrics",
        "id": client_id,
        "service": snapshot["service"],
        "tenants": snapshot["tenants"],
    }
