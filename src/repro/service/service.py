"""The multi-tenant approximate-query service.

`QueryService` is the front door the runtime never had: a long-running
asyncio component that accepts many concurrent budgeted queries, admits
them through the `TenantScheduler`'s ratio-accounting ledger, resolves
their streams through the shared `SourceHub`, compiles each through the
existing `build_plan`, and runs the plan on its driver in a worker
thread — streaming per-pane `WindowResult`s back the moment they close
(the driver's ``on_pane`` hook) and finishing with the familiar
`SystemReport`.

Two client surfaces share one implementation:

* **in-process async API** — ``await service.submit(QuerySubmission(...))``
  returns a `QueryHandle`; iterate ``handle.panes()`` for streamed pane
  results and ``await handle.result()`` for the final `QueryAnswer`.
* **newline-JSON TCP** — ``await service.serve_tcp(host, port)`` starts an
  ``asyncio.start_server`` endpoint speaking one JSON object per line
  (see `repro.service.protocol`): submissions in; ``admitted`` /
  ``rejected`` / ``pane`` / ``answer`` / ``error`` messages out.

Determinism contract: the service changes *when* a plan runs, never *what*
it computes.  An admitted submission's answer is bitwise identical to
running ``execute_plan(handle.plan)`` standalone — plans are seeded by
their `SystemConfig`, streams are shared immutable `RecordBatch`es, and
fair-share queueing delays starts without touching sample sizes.
"""

from __future__ import annotations

import asyncio
import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from math import ceil
from typing import AsyncIterator, Dict, List, Optional

from ..obs import MetricsRegistry
from ..runtime.config import StreamQuery, SystemConfig, WindowConfig
from ..runtime.control import BudgetController
from ..runtime.driver import _per_slide_items, execute_plan
from ..runtime.plan import ExecutionPlan, PlanError, build_plan
from ..runtime.report import SystemReport, WindowResult
from .hub import SourceHub, SourceRef
from .scheduler import AdmissionRejected, RejectionReason, TenantScheduler

__all__ = ["QuerySubmission", "QueryAnswer", "QueryHandle", "QueryService"]

#: Queue sentinel closing a handle's pane stream.
_DONE = object()


@dataclass(frozen=True)
class QuerySubmission:
    """One tenant's query request, before admission.

    ``source`` is a `SourceHub` reference — a registered name or a
    workload spec dict.  ``query``/``window``/``config`` default to the
    source's registered query (or the canonical `StreamQuery`) and the
    stock window/config; ``kind``/``q`` override the query's aggregation
    in place, so a tenant can ask for e.g. the p95 of a registered source
    without re-specifying its projections.
    """

    tenant_id: str
    source: SourceRef
    query: Optional[StreamQuery] = None
    window: Optional[WindowConfig] = None
    config: Optional[SystemConfig] = None
    engine: str = "direct"
    strategy: str = "oasrs"
    kind: Optional[str] = None
    q: Optional[float] = None
    name: Optional[str] = None


@dataclass(frozen=True)
class QueryAnswer:
    """A finished query: the standard report plus serving-side metadata."""

    query_id: int
    tenant_id: str
    report: SystemReport
    cost: float
    #: Loop-clock timestamps (seconds): submission, capacity grant, first
    #: pane, completion — the latency benchmark's raw material.
    submitted_at: float
    started_at: float
    first_pane_at: Optional[float]
    finished_at: float
    #: What the run actually sampled (the driver's measured
    #: ``sampled_total``), reconciled against ``cost`` by the scheduler's
    #: settle-up; None when the driver did not report it.
    actual_cost: Optional[float] = None

    @property
    def estimate(self) -> Optional[float]:
        """The last pane's estimate (the 'current answer' of the stream)."""
        return self.report.results[-1].estimate if self.report.results else None

    @property
    def time_to_first_pane(self) -> Optional[float]:
        if self.first_pane_at is None:
            return None
        return self.first_pane_at - self.submitted_at

    @property
    def time_to_answer(self) -> float:
        return self.finished_at - self.submitted_at


class QueryHandle:
    """An admitted query in flight: streamed panes + an awaitable answer."""

    def __init__(
        self,
        query_id: int,
        tenant_id: str,
        plan: ExecutionPlan,
        cost: float,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.query_id = query_id
        self.tenant_id = tenant_id
        self.plan = plan
        self.cost = cost
        self._loop = loop
        self._queue: "asyncio.Queue[object]" = asyncio.Queue()
        self._done: "asyncio.Future[QueryAnswer]" = loop.create_future()
        self.submitted_at: float = loop.time()
        self.started_at: Optional[float] = None
        self.first_pane_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # Called on the loop thread (via call_soon_threadsafe from the driver).
    def _deliver_pane(self, result: WindowResult) -> None:
        if self.first_pane_at is None:
            self.first_pane_at = self._loop.time()
        self._queue.put_nowait(result)

    def _finish(self, answer: QueryAnswer) -> None:
        if not self._done.done():
            self._done.set_result(answer)
        self._queue.put_nowait(_DONE)

    def _fail(self, exc: BaseException) -> None:
        if not self._done.done():
            self._done.set_exception(exc)
            # Mark retrieved so a caller that only streams panes (and never
            # awaits result()) doesn't trip the unretrieved-exception log.
            self._done.exception()
        self._queue.put_nowait(_DONE)

    async def panes(self) -> AsyncIterator[WindowResult]:
        """Stream pane results as the driver closes them, until done."""
        while True:
            item = await self._queue.get()
            if item is _DONE:
                return
            yield item

    async def result(self) -> QueryAnswer:
        """Await the final answer (raises if the query failed)."""
        return await asyncio.shield(self._done)

    @property
    def done(self) -> bool:
        return self._done.done()


class QueryService:
    """Admission-controlled execution of many concurrent budgeted queries.

    Example
    -------
    ::

        service = QueryService(scheduler=TenantScheduler(capacity=50_000))
        service.register_tenant("alice", budget=1.0)
        service.hub.register("ticks", stream)
        handle = await service.submit(
            QuerySubmission(tenant_id="alice", source="ticks"))
        async for pane in handle.panes():
            ...
        answer = await handle.result()
        await service.close()          # graceful: drains in-flight queries
    """

    def __init__(
        self,
        scheduler: Optional[TenantScheduler] = None,
        hub: Optional[SourceHub] = None,
        max_workers: int = 4,
    ) -> None:
        self.scheduler = scheduler or TenantScheduler()
        self.hub = hub or SourceHub()
        #: Always-on service metrics (query-granular, so no hot-loop cost):
        #: admission outcomes, queue depth, and per-tenant latency
        #: histograms, served over the wire by the ``metrics`` op.
        self.metrics = MetricsRegistry()
        self._m_submitted = self.metrics.counter("service.submitted")
        self._m_admitted = self.metrics.counter("service.admitted")
        self._m_rejected = self.metrics.counter("service.rejected")
        self._m_completed = self.metrics.counter("service.completed")
        self._m_failed = self.metrics.counter("service.failed")
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        self._query_ids = itertools.count(1)
        self._tasks: Dict[int, asyncio.Task] = {}
        self._connections: set = set()
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None

    def register_tenant(self, tenant_id: str, budget: float = 1.0) -> None:
        self.scheduler.register(tenant_id, budget)

    # -- submission ----------------------------------------------------------

    def _build_plan(self, sub: QuerySubmission) -> ExecutionPlan:
        source, default_query = self.hub.resolve(sub.source)
        query = sub.query or default_query or StreamQuery()
        overrides = {}
        if sub.kind is not None:
            overrides["kind"] = sub.kind
            if sub.kind == "quantile":
                # Quantiles have no grouped estimation path; dropping an
                # inherited group_fn beats rejecting the override.
                overrides["group_fn"] = None
        if sub.q is not None:
            overrides["q"] = sub.q
        if sub.name is not None:
            overrides["name"] = sub.name
        if overrides:
            from dataclasses import replace

            query = replace(query, **overrides)
        window = sub.window or WindowConfig()
        config = sub.config or SystemConfig()
        try:
            return build_plan(
                query,
                window,
                config,
                engine=sub.engine,
                strategy=sub.strategy,
                source=source,
                name=sub.name or query.name,
            )
        except (PlanError, ValueError) as exc:
            raise AdmissionRejected(RejectionReason.PLAN_INVALID, str(exc)) from exc

    @staticmethod
    def estimate_cost(plan: ExecutionPlan) -> float:
        """A submission's sample cost: expected samples over the whole run.

        Fixed-fraction plans cost ``fraction × per-slide items`` per
        interval; budget-driven plans cost what the `BudgetController`
        would seed the first interval with (`initial_total`) — the same
        pre-run estimate the drivers themselves start from — times the
        stream's interval count.  An estimate, not an invoice: admission
        and fair-share need comparable magnitudes, not exact accounting.
        """
        events = plan.source.events()
        per_slide = _per_slide_items(events, plan.window)
        if plan.config.budget is not None:
            controller = BudgetController(
                plan.config.budget, plan.config, plan.window
            )
            per_interval = float(controller.initial_total(int(per_slide)))
        else:
            per_interval = max(1.0, plan.config.sampling_fraction * per_slide)
        intervals = max(1, ceil(len(events) / max(1.0, per_slide)))
        return per_interval * intervals

    async def submit(self, sub: QuerySubmission) -> QueryHandle:
        """Admit and launch a query; raises `AdmissionRejected` otherwise.

        Admission is synchronous (the ledger answers immediately); the
        returned handle's query may still *wait* for fair-share capacity
        before running.
        """
        self._m_submitted.inc()
        try:
            if self._draining:
                raise AdmissionRejected(
                    RejectionReason.DRAINING, "service is shutting down"
                )
            account = self.scheduler.account(sub.tenant_id)  # unknown-tenant first
            plan = self._build_plan(sub)
            cost = self.estimate_cost(plan)
            self.scheduler.admit(account.tenant_id, cost)
        except AdmissionRejected:
            self._m_rejected.inc()
            raise
        self._m_admitted.inc()
        loop = asyncio.get_running_loop()
        handle = QueryHandle(
            next(self._query_ids), sub.tenant_id, plan, cost, loop
        )
        task = loop.create_task(self._run_query(handle))
        self._tasks[handle.query_id] = task
        task.add_done_callback(lambda _t: self._tasks.pop(handle.query_id, None))
        return handle

    async def _run_query(self, handle: QueryHandle) -> None:
        loop = asyncio.get_running_loop()
        run_info: dict = {}
        adaptation: list = []
        acquired = False

        def on_pane(result: WindowResult) -> None:
            # Driver thread → loop thread; put_nowait on an unbounded queue
            # never blocks the driver.
            loop.call_soon_threadsafe(handle._deliver_pane, result)

        def run() -> tuple:
            return execute_plan(
                handle.plan,
                adaptation_log=adaptation,
                run_info=run_info,
                on_pane=on_pane,
            )

        try:
            await self.scheduler.acquire(handle.tenant_id, handle.cost)
            acquired = True
            handle.started_at = loop.time()
            results, cluster = await loop.run_in_executor(self._executor, run)
            report = SystemReport(
                system=handle.plan.name,
                results=results,
                virtual_seconds=cluster.elapsed(),
                items_total=len(handle.plan.source.events()),
                parallel_fallback=run_info.get("parallel_fallback"),
                columnar_fallback=run_info.get("columnar_fallback"),
                adaptation=adaptation,
            )
            handle.finished_at = loop.time()
            actual = run_info.get("sampled_total")
            if actual is not None:
                # Settle-up: swap the ledger's pre-run estimate for the
                # measured actuals, so over-estimates refund slack and
                # under-estimates surcharge it (release below stays in
                # estimate units, symmetric with acquire).
                self.scheduler.settle(
                    handle.tenant_id, handle.cost, float(actual)
                )
            answer = QueryAnswer(
                query_id=handle.query_id,
                tenant_id=handle.tenant_id,
                report=report,
                cost=handle.cost,
                submitted_at=handle.submitted_at,
                started_at=handle.started_at,
                first_pane_at=handle.first_pane_at,
                finished_at=handle.finished_at,
                actual_cost=float(actual) if actual is not None else None,
            )
            self._m_completed.inc()
            self._observe_latency(answer)
            handle._finish(answer)
        except BaseException as exc:  # surfaced through handle.result()
            handle.finished_at = loop.time()
            self._m_failed.inc()
            handle._fail(exc)
        finally:
            if acquired:
                self.scheduler.release(handle.tenant_id, handle.cost)

    def _observe_latency(self, answer: QueryAnswer) -> None:
        """Feed a finished query's latencies into the service histograms."""
        for scope in ("service", f"tenant.{answer.tenant_id}"):
            histogram = self.metrics.histogram
            histogram(f"{scope}.admission_wait_seconds").observe(
                answer.started_at - answer.submitted_at
            )
            if answer.time_to_first_pane is not None:
                histogram(f"{scope}.time_to_first_pane_seconds").observe(
                    answer.time_to_first_pane
                )
            histogram(f"{scope}.time_to_answer_seconds").observe(
                answer.time_to_answer
            )

    def metrics_snapshot(self) -> dict:
        """JSON-able service health: ledgers, queues, latency summaries.

        The payload behind the wire protocol's ``metrics`` op and the
        ``python -m repro metrics`` CLI — per-tenant admission ledgers
        (including settle-up totals) joined with the per-tenant latency
        histograms, plus service-wide counters and capacity state.
        """
        histogram = self.metrics.histogram
        latencies = (
            ("admission_wait", "admission_wait_seconds"),
            ("time_to_first_pane", "time_to_first_pane_seconds"),
            ("time_to_answer", "time_to_answer_seconds"),
        )
        tenants = {}
        for tenant_id, ledger in self.scheduler.snapshot().items():
            entry = dict(ledger)
            for short, name in latencies:
                entry[short] = histogram(f"tenant.{tenant_id}.{name}").summary()
            tenants[tenant_id] = entry
        service = {
            "submitted": self._m_submitted.value,
            "admitted": self._m_admitted.value,
            "rejected": self._m_rejected.value,
            "completed": self._m_completed.value,
            "failed": self._m_failed.value,
            "in_flight": self.in_flight,
            "queue_depth": self.scheduler.queue_depth(),
            "capacity": self.scheduler.capacity,
            "active_cost": self.scheduler.active_cost,
        }
        for short, name in latencies:
            service[short] = histogram(f"service.{name}").summary()
        return {"service": service, "tenants": tenants}

    # -- lifecycle -----------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return len(self._tasks)

    async def close(self, drain: bool = True) -> None:
        """Stop the service; graceful by default.

        ``drain=True`` refuses new submissions but waits for every
        in-flight query to finish (their tenants still receive panes and
        answers); ``drain=False`` cancels them.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        tasks = list(self._tasks.values())
        if tasks:
            if not drain:
                for task in tasks:
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
        connections = list(self._connections)
        for conn in connections:
            conn.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        self._executor.shutdown(wait=True)

    # -- TCP endpoint --------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Start the newline-JSON endpoint; returns ``(host, port)`` bound."""
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("serve_tcp() must be called first")
        await self._server.serve_forever()

    async def _handle_connection(self, reader, writer) -> None:
        from . import protocol

        write_lock = asyncio.Lock()
        streams: List[asyncio.Task] = []
        self._connections.add(asyncio.current_task())

        async def send(payload: dict) -> None:
            async with write_lock:
                writer.write(protocol.encode_line(payload))
                try:
                    await writer.drain()
                except ConnectionError:
                    pass

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = protocol.decode_line(line)
                except ValueError as exc:
                    await send(protocol.error_message(None, str(exc)))
                    continue
                op = message.get("op", "submit")
                if op == "ping":
                    await send({"type": "pong"})
                    continue
                if op == "metrics":
                    await send(
                        protocol.metrics_message(message.get("id"), self)
                    )
                    continue
                if op == "close":
                    break
                if op != "submit":
                    await send(
                        protocol.error_message(
                            message.get("id"), f"unknown op {op!r}"
                        )
                    )
                    continue
                client_id = message.get("id")
                try:
                    sub = protocol.submission_from_message(message)
                    handle = await self.submit(sub)
                except AdmissionRejected as exc:
                    await send(protocol.rejection_message(client_id, exc))
                    continue
                except (ValueError, TypeError) as exc:
                    await send(protocol.error_message(client_id, str(exc)))
                    continue
                await send(protocol.admitted_message(client_id, handle))
                streams.append(
                    asyncio.ensure_future(
                        self._stream_results(client_id, handle, send)
                    )
                )
        except asyncio.CancelledError:
            # Shutdown cancelled the read loop; finish result streaming (the
            # queries themselves drain via close()) and hang up cleanly.
            pass
        finally:
            self._connections.discard(asyncio.current_task())
            if streams:
                await asyncio.gather(*streams, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _stream_results(self, client_id, handle: QueryHandle, send) -> None:
        from . import protocol

        async for pane in handle.panes():
            await send(protocol.pane_message(client_id, handle, pane))
        try:
            answer = await handle.result()
        except Exception as exc:
            await send(
                protocol.error_message(
                    client_id, f"query {handle.query_id} failed: {exc}"
                )
            )
            return
        await send(protocol.answer_message(client_id, answer))
