"""The multi-tenant approximate-query serving layer.

The paper's systems answer one budgeted query over one stream; this
package is the front door for *many concurrent* budgeted queries over
*shared* streams — the ROADMAP's millions-of-users story:

* `QueryService` — long-running asyncio service: in-process async
  submissions plus a newline-JSON TCP endpoint, each admitted query
  compiled through `repro.runtime.build_plan` and run on its driver with
  per-pane results streamed back as they land.
* `TenantScheduler` — per-tenant ratio-accounting admission
  (``observed * budget - sampled >= cost``) and fair-share arbitration of
  a global in-flight sample capacity.
* `SourceHub` — named shared sources; N tenants over one stream ingest
  and columnarize it once.

See ``docs/architecture.md`` (service section) for the full picture.
"""

from .hub import SourceHub
from .scheduler import (
    AdmissionRejected,
    RejectionReason,
    TenantAccount,
    TenantScheduler,
)
from .service import QueryAnswer, QueryHandle, QueryService, QuerySubmission

__all__ = [
    "AdmissionRejected",
    "QueryAnswer",
    "QueryHandle",
    "QueryService",
    "QuerySubmission",
    "RejectionReason",
    "SourceHub",
    "TenantAccount",
    "TenantScheduler",
]
