"""Per-tenant budget admission and fair-share capacity arbitration.

The serving layer answers many concurrent budgeted queries from one
shared deployment, so two resources need arbitration *before* a plan
ever runs:

* **How much sampling may a tenant consume over time?**  Each tenant
  holds a budget fraction ``b ∈ (0, 1]`` of the samples their submitted
  work would cost, enforced by ratio accounting — the admission rule of
  the streaming budget managers (river ``BudgetManager``, scikit-activeml
  ``FixedBudget``): keep ``observed`` (sample cost of everything the
  tenant submitted) and ``sampled`` (cost of everything admitted), and
  admit a query of cost ``c`` iff::

      observed * b - sampled >= c

  which is the classic unit-cost rule ``observed * budget - sampled >= 1``
  generalized to weighted costs.  The rule is *self-correcting*: every
  admission spends exactly what the slack affords, so the invariant
  ``sampled <= observed * b`` holds at every instant — a tenant can never
  leak budget from another tenant's account — while a temporarily
  over-budget tenant earns admission back simply by continuing to submit
  (observed grows, sampled doesn't).

* **How many samples may be in flight at once?**  A global ``capacity``
  (in the same sample-cost units) bounds concurrently running queries.
  When oversubscribed, waiters are granted **fair-share**: the next slot
  goes to the queued tenant with the least *cumulative granted cost* (a
  stride-scheduling ordering), FIFO within a tenant — so a tenant
  queueing 10 queries cannot starve a tenant queueing 1.  Fairness
  affects only *when* a query starts, never its plan: admitted plans run
  with exactly the sample sizes the planner derived, keeping service
  answers bitwise identical to standalone `execute_plan` runs.

Admission failures raise `AdmissionRejected` with a typed
`RejectionReason`, which the TCP protocol surfaces verbatim.
"""

from __future__ import annotations

import asyncio
import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "RejectionReason",
    "AdmissionRejected",
    "TenantAccount",
    "TenantScheduler",
]

#: Tolerance for the admission comparison so a budget of exactly 1.0
#: admits every query (the slack equals the cost, less float noise).
_EPS = 1e-9


class RejectionReason(enum.Enum):
    """Why a submission was refused; the wire protocol sends ``.value``."""

    UNKNOWN_TENANT = "unknown-tenant"
    BUDGET_EXHAUSTED = "tenant-budget-exhausted"
    UNKNOWN_SOURCE = "unknown-source"
    PLAN_INVALID = "plan-invalid"
    DRAINING = "service-draining"


class AdmissionRejected(Exception):
    """A submission the scheduler (or service) refused, with a typed reason."""

    def __init__(self, reason: RejectionReason, detail: str = "") -> None:
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason.value}: {detail}" if detail else reason.value)


@dataclass
class TenantAccount:
    """One tenant's ratio-accounting ledger (sample-cost units throughout)."""

    tenant_id: str
    budget: float
    #: Cost of everything this tenant submitted (admitted or not).
    observed: float = 0.0
    #: Cost of everything admitted; invariant: ``sampled <= observed * budget``.
    sampled: float = 0.0
    #: Cost currently running (granted, not yet released).
    active_cost: float = 0.0
    #: Cumulative granted cost — the fair-share ordering key.
    granted_cost: float = 0.0
    admitted: int = 0
    rejected: int = 0
    #: Cumulative settle-up delta (actual − estimated); negative = refunds.
    settled: float = 0.0
    settles: int = 0

    @property
    def ratio(self) -> float:
        """Achieved sampled/observed ratio (0 when nothing submitted)."""
        return self.sampled / self.observed if self.observed else 0.0


@dataclass
class _Waiter:
    cost: float
    seq: int
    future: "asyncio.Future[None]"


class TenantScheduler:
    """Ratio-accounting admission + fair-share capacity for many tenants.

    ``capacity`` bounds the total sample cost concurrently in flight; a
    query whose cost alone exceeds it still runs — alone — once the
    service drains (grant-when-idle, so no submission can deadlock).

    Example
    -------
    >>> sched = TenantScheduler(capacity=1000.0)
    >>> sched.register("alice", budget=1.0)
    >>> sched.admit("alice", cost=100.0)
    >>> sched.account("alice").sampled
    100.0
    """

    def __init__(self, capacity: float = 1_000_000.0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._accounts: Dict[str, TenantAccount] = {}
        self._active_cost = 0.0
        self._waiters: Dict[str, Deque[_Waiter]] = {}
        self._seq = 0

    # -- tenant registry ----------------------------------------------------

    def register(self, tenant_id: str, budget: float = 1.0) -> TenantAccount:
        """Register (or re-budget) a tenant; budget is a fraction in (0, 1]."""
        if not 0 < budget <= 1:
            raise ValueError(
                f"tenant budget must be a fraction in (0, 1], got {budget}"
            )
        account = self._accounts.get(tenant_id)
        if account is None:
            account = TenantAccount(tenant_id=tenant_id, budget=budget)
            self._accounts[tenant_id] = account
        else:
            account.budget = budget
        return account

    def account(self, tenant_id: str) -> TenantAccount:
        try:
            return self._accounts[tenant_id]
        except KeyError:
            raise AdmissionRejected(
                RejectionReason.UNKNOWN_TENANT,
                f"tenant {tenant_id!r} is not registered",
            ) from None

    @property
    def tenants(self) -> List[str]:
        return list(self._accounts)

    # -- ratio-accounting admission -----------------------------------------

    def admit(self, tenant_id: str, cost: float) -> None:
        """Charge ``cost`` to the tenant's ledger or raise `AdmissionRejected`.

        Every submission grows ``observed`` (rejected work still counts as
        observed — that is what lets the ratio converge to the budget); only
        admitted work grows ``sampled``.
        """
        if cost <= 0:
            raise ValueError(f"query cost must be positive, got {cost}")
        account = self.account(tenant_id)
        account.observed += cost
        slack = account.observed * account.budget - account.sampled
        if slack >= cost - _EPS:
            account.sampled += cost
            account.admitted += 1
            return
        account.rejected += 1
        raise AdmissionRejected(
            RejectionReason.BUDGET_EXHAUSTED,
            f"tenant {tenant_id!r} budget {account.budget:g} exhausted: "
            f"admitting cost {cost:g} needs slack >= {cost:g}, have "
            f"{max(0.0, slack):g} (observed={account.observed:g}, "
            f"sampled={account.sampled:g})",
        )

    def settle(self, tenant_id: str, estimated: float, actual: float) -> float:
        """Reconcile a finished query's estimated cost against measured actuals.

        Admission charged the planner's pre-run ``estimated`` cost; the
        driver reports what the run *actually* sampled
        (``run_info["sampled_total"]``).  The delta lands on the ledger's
        ``sampled`` side — a refund when the run came in under its
        estimate, a surcharge when it overran — and on the fair-share
        ``granted_cost`` ordering key, both clamped at zero.

        ``observed`` deliberately stays in estimate units: a rejected
        query never runs, so demand is only ever knowable as the
        estimate.  Keeping the denominator there is what makes the
        achieved ratio converge to the budget even under a
        *systematically biased* estimator — with per-query actual
        ``a = k·e``, steady state admits a fraction ``b/k`` of
        submissions (capped at 1), so ``sampled/observed → min(b, k)``
        and consumption never drifts past ``b × estimated demand``.

        Returns the applied delta (``actual − estimated``).
        """
        account = self.account(tenant_id)
        delta = float(actual) - float(estimated)
        account.sampled = max(0.0, account.sampled + delta)
        account.granted_cost = max(0.0, account.granted_cost + delta)
        account.settled += delta
        account.settles += 1
        return delta

    # -- fair-share capacity ------------------------------------------------

    def _fits(self, cost: float) -> bool:
        # Grant-when-idle: a query costing more than the whole capacity may
        # still run once nothing else is in flight.
        return (
            self._active_cost + cost <= self.capacity + _EPS
            or self._active_cost == 0.0
        )

    def _grant(self, account: TenantAccount, cost: float) -> None:
        self._active_cost += cost
        account.active_cost += cost
        account.granted_cost += cost

    async def acquire(self, tenant_id: str, cost: float) -> None:
        """Wait for capacity; granted fair-share across queued tenants."""
        account = self.account(tenant_id)
        queue = self._waiters.get(tenant_id)
        if (queue is None or not queue) and self._fits(cost):
            self._grant(account, cost)
            return
        loop = asyncio.get_running_loop()
        waiter = _Waiter(cost=cost, seq=self._seq, future=loop.create_future())
        self._seq += 1
        self._waiters.setdefault(tenant_id, deque()).append(waiter)
        try:
            await waiter.future
        except asyncio.CancelledError:
            # Remove ourselves so _dispatch never grants a dead waiter.
            queue = self._waiters.get(tenant_id)
            if queue is not None and waiter in queue:
                queue.remove(waiter)
            self._dispatch()
            raise

    def release(self, tenant_id: str, cost: float) -> None:
        """Return a granted slot and wake fair-share waiters."""
        account = self.account(tenant_id)
        account.active_cost -= cost
        self._active_cost -= cost
        if self._active_cost < _EPS:
            self._active_cost = max(0.0, self._active_cost)
        self._dispatch()

    def _dispatch(self) -> None:
        """Grant queued waiters: least cumulative granted cost first.

        FIFO within a tenant (only the head waiter of each queue is a
        candidate); across tenants the stride-style ``granted_cost``
        ordering keeps long queues from starving short ones.  Ties break
        on submission order.
        """
        while True:
            candidates: List[Tuple[float, int, str]] = []
            for tenant_id, queue in self._waiters.items():
                if queue:
                    account = self._accounts[tenant_id]
                    candidates.append(
                        (account.granted_cost, queue[0].seq, tenant_id)
                    )
            if not candidates:
                break
            candidates.sort()
            granted_one = False
            for _granted, _seq, tenant_id in candidates:
                queue = self._waiters[tenant_id]
                waiter = queue[0]
                if waiter.future.cancelled():
                    queue.popleft()
                    granted_one = True  # re-scan: the queue head changed
                    break
                if self._fits(waiter.cost):
                    queue.popleft()
                    self._grant(self._accounts[tenant_id], waiter.cost)
                    waiter.future.set_result(None)
                    granted_one = True
                    break
            if not granted_one:
                break

    # -- observability -------------------------------------------------------

    @property
    def active_cost(self) -> float:
        """Total sample cost currently granted and in flight."""
        return self._active_cost

    def queue_depth(self, tenant_id: Optional[str] = None) -> int:
        """Waiters queued for capacity — one tenant's, or all tenants'."""
        if tenant_id is not None:
            queue = self._waiters.get(tenant_id)
            return len(queue) if queue else 0
        return sum(len(queue) for queue in self._waiters.values())

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant ledger snapshot (the load benchmark's leakage check)."""
        return {
            tenant_id: {
                "budget": account.budget,
                "observed": account.observed,
                "sampled": account.sampled,
                "ratio": account.ratio,
                "active_cost": account.active_cost,
                "granted_cost": account.granted_cost,
                "admitted": account.admitted,
                "rejected": account.rejected,
                "settled": account.settled,
                "settles": account.settles,
                "queue_depth": self.queue_depth(tenant_id),
            }
            for tenant_id, account in self._accounts.items()
        }
