"""Spark-style Simple Random Sampling — the `sample` baseline (§4.1.1).

Spark's RDD ``sample`` (for exact-size sampling, `takeSample` and MLib's
ScaSRS of Meng, ICML'13) draws a size-``k`` sample via a *random sort*:

1. assign every item an independent U(0,1) key,
2. select the ``k`` items with the smallest keys.

Sorting the whole batch is the bottleneck, so Spark prunes first with two
thresholds ``p < q``:

* items with key < ``p`` are **accepted immediately** (with high probability
  fewer than ``k`` of them exist),
* items with key > ``q`` are **discarded immediately**,
* only the thin "waitlist" in ``[p, q]`` is sorted, and the smallest keys
  top up the accepted set to exactly ``k``.

We implement the scheme faithfully, including the threshold choices from
the ScaSRS paper (``p = k/n − γ₁``-style bounds; we use the simpler, widely
deployed form with failure probability δ = 1e-4).  The per-batch sort work
is reported back to the caller so the simulated cluster can charge for it —
that cost asymmetry versus OASRS is exactly what Figure 4 measures.

SRS is *not* stratified: rare sub-streams may be missed entirely, which is
the accuracy weakness Figures 4b/6c/7a demonstrate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, TypeVar

from ..core._vector import VECTOR_MIN as _VECTOR_MIN
from ..core._vector import derive_generator as _derive_generator
from ..core._vector import np as _np

T = TypeVar("T")

__all__ = ["SRSResult", "ScaSRSSampler", "simple_random_sample"]

# Failure probability for the threshold bounds, as in the ScaSRS paper.
_DELTA = 1e-4


@dataclass(frozen=True)
class SRSResult(Generic[T]):
    """A simple-random sample plus the cost-relevant execution profile.

    Carries, next to the sampled ``items``, the counts the simulated
    cluster charges for — how many items were accepted without sorting,
    how many landed on the waitlist (and therefore paid the sort), and how
    many were discarded outright.

    Example
    -------
    >>> r = ScaSRSSampler(rng=random.Random(1)).sample(list(range(100)), 5)
    >>> len(r.items), r.population, r.weight
    (5, 100, 20.0)
    """

    items: List[T]
    population: int
    accepted_directly: int  # keys < p
    waitlisted: int  # keys in [p, q] — the portion that had to be sorted
    discarded: int  # keys > q

    @property
    def sort_work(self) -> float:
        """Comparison work of the waitlist sort (n log2 n), for cost models."""
        n = self.waitlisted
        if n <= 1:
            return float(n)
        return n * math.log2(n)

    @property
    def weight(self) -> float:
        """Per-item representation weight: population / sample size."""
        if not self.items:
            return 1.0
        return self.population / len(self.items)


def _thresholds(k: int, n: int) -> tuple:
    """ScaSRS-style acceptance/rejection thresholds (p, q).

    With fraction f = k/n, choose p below f and q above f such that the
    probability of selecting fewer than k items below q — or more than k
    below p — is at most δ.  The standard bounds use γ-terms of order
    sqrt(f ln(1/δ) / n).
    """
    f = k / n
    gamma1 = -math.log(_DELTA) / n
    gamma2 = -(2.0 / 3.0) * math.log(_DELTA) / n
    p = max(0.0, f + gamma2 - math.sqrt(gamma2 * gamma2 + 3.0 * gamma2 * f))
    q = min(1.0, f + gamma1 + math.sqrt(gamma1 * gamma1 + 2.0 * gamma1 * f))
    return p, q


class ScaSRSSampler(Generic[T]):
    """Batch sampler implementing the random-sort SRS with p/q pruning.

    Unlike OASRS this is a *batch* operation: the whole micro-batch must be
    materialised (as an RDD) before sampling, which is one of the three
    Spark limitations the paper lists in §1.  ``sample`` is the per-item
    reference implementation; ``sample_chunk`` is the vectorized fast path
    used by the chunked execution mode (one NumPy draw per chunk instead of
    one ``random()`` call per item; identical selection semantics).

    Example
    -------
    >>> sampler = ScaSRSSampler(rng=random.Random(0))
    >>> result = sampler.sample(list(range(1000)), k=10)
    >>> len(result.items), result.population
    (10, 1000)
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng if rng is not None else random.Random()
        self._np_rng = None

    def sample(self, batch: Sequence[T], k: int) -> SRSResult[T]:
        """Draw an (approximately) size-``k`` uniform sample from ``batch``."""
        n = len(batch)
        if k < 0:
            raise ValueError(f"sample size must be non-negative, got {k}")
        if n == 0 or k == 0:
            return SRSResult([], n, 0, 0, n)
        if k >= n:
            return SRSResult(list(batch), n, n, 0, 0)

        p, q = _thresholds(k, n)
        accepted: List[T] = []
        waitlist: List[tuple] = []
        discarded = 0
        rand = self._rng.random
        for item in batch:
            key = rand()
            if key < p:
                accepted.append(item)
            elif key <= q:
                waitlist.append((key, item))
            else:
                discarded += 1

        waitlisted = len(waitlist)
        if len(accepted) < k:
            # Sort only the waitlist — the pruned random sort.
            waitlist.sort(key=lambda kv: kv[0])
            need = k - len(accepted)
            accepted.extend(item for _key, item in waitlist[:need])
        elif len(accepted) > k:
            # Rare (probability ≤ δ): direct acceptances overshot; trim with
            # a uniform choice to preserve exchangeability.
            self._rng.shuffle(accepted)
            accepted = accepted[:k]
        return SRSResult(
            items=accepted,
            population=n,
            accepted_directly=min(len(accepted), k),
            waitlisted=waitlisted,
            discarded=discarded,
        )

    def sample_fraction(self, batch: Sequence[T], fraction: float) -> SRSResult[T]:
        """Draw a ``fraction`` of the batch (Spark's ``sample(False, f)``)."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        k = int(round(len(batch) * fraction))
        return self.sample(batch, k)

    def sample_chunk(self, chunk: Sequence[T], k: int) -> SRSResult[T]:
        """Vectorized chunk fast path with the same contract as ``sample``.

        Assigns every item its U(0,1) sort key in one NumPy draw, partitions
        against the ScaSRS ``p``/``q`` thresholds with array comparisons, and
        sorts only the waitlist keys — the selection rule, thresholds, and
        the returned cost profile are exactly those of ``sample``.  Falls
        back to the per-item implementation when NumPy is unavailable or the
        chunk is too small for vectorization to pay off.
        """
        n = len(chunk)
        if _np is None or n < _VECTOR_MIN or k <= 0 or k >= n:
            return self.sample(chunk, k)
        if self._np_rng is None:
            self._np_rng = _derive_generator(self._rng)
        gen = self._np_rng
        p, q = _thresholds(k, n)
        keys = gen.random(n)
        accepted = [chunk[i] for i in _np.flatnonzero(keys < p).tolist()]
        wait_idx = _np.flatnonzero((keys >= p) & (keys <= q))
        waitlisted = int(wait_idx.size)
        discarded = n - len(accepted) - waitlisted
        if len(accepted) < k:
            order = wait_idx[_np.argsort(keys[wait_idx], kind="stable")]
            need = k - len(accepted)
            accepted.extend(chunk[i] for i in order[:need].tolist())
        elif len(accepted) > k:
            chosen = gen.permutation(len(accepted))[:k]
            accepted = [accepted[i] for i in chosen.tolist()]
        return SRSResult(
            items=accepted,
            population=n,
            accepted_directly=min(len(accepted), k),
            waitlisted=waitlisted,
            discarded=discarded,
        )

    def sample_fraction_chunk(self, chunk: Sequence[T], fraction: float) -> SRSResult[T]:
        """Chunked counterpart of ``sample_fraction``."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        return self.sample_chunk(chunk, int(round(len(chunk) * fraction)))


def simple_random_sample(
    batch: Sequence[T], k: int, rng: Optional[random.Random] = None
) -> List[T]:
    """One-shot convenience wrapper around `ScaSRSSampler.sample`."""
    return ScaSRSSampler(rng=rng).sample(batch, k).items
