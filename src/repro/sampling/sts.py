"""Spark-style Stratified Sampling — the `sampleByKey` baseline (§4.1.1).

Spark's stratified sampling first clusters the batch by key with
``groupBy(strata)`` — a shuffle that synchronises all workers — then runs
the random-sort SRS within each stratum:

* ``sampleByKey(fraction)`` — one pass, per-item Bernoulli/threshold
  acceptance; sample sizes are only *approximately* ``fraction × C_i``.
* ``sampleByKeyExact(fraction)`` — guarantees exact per-stratum sizes
  ``⌈fraction × C_i⌉`` at the cost of the full waitlist sort per stratum
  (and, on a real cluster, possible extra passes).

The paper's three criticisms of this design (§1, §4.1) are all visible in
this implementation and are charged by the simulated cluster:

1. it is batch-only — the whole RDD must exist before sampling starts,
2. it needs a **pre-defined sampling fraction per stratum**, so it cannot
   adapt when sub-stream arrival rates shift between intervals, and
3. the ``groupBy`` + sort require **synchronization among workers**
   (`sync_barriers`/`shuffled_items` in the result profile).

Statistically STS is excellent — proportional allocation is near-optimal
for stationary strata — which is why Figure 4b shows it slightly *more*
accurate than OASRS while Figures 4a/4c/6a show its throughput collapse.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import (
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..core._vector import VECTOR_MIN as _VECTOR_MIN
from ..core._vector import derive_generator as _derive_generator
from ..core._vector import np as _np
from .srs import ScaSRSSampler, SRSResult

T = TypeVar("T")
Key = Hashable

__all__ = ["STSResult", "StratifiedSampler"]


@dataclass(frozen=True)
class STSResult(Generic[T]):
    """A stratified sample plus its cost-relevant execution profile.

    ``per_stratum`` maps stratum key to ``(items, population)``; weights are
    ``population / len(items)`` as with any proportional design.

    Example
    -------
    >>> sampler = StratifiedSampler(rng=random.Random(0))
    >>> batch = [("a", i) for i in range(100)] + [("b", i) for i in range(10)]
    >>> result = sampler.sample_by_key(batch, lambda kv: kv[0], 0.5)
    >>> result.population, sorted(result.per_stratum)
    (110, ['a', 'b'])
    """

    per_stratum: Dict[Key, Tuple[List[T], int]]
    shuffled_items: int  # items moved by the groupBy shuffle
    sync_barriers: int  # worker-synchronisation points incurred
    sort_work: float  # total waitlist-sort comparisons across strata

    @property
    def items(self) -> List[T]:
        out: List[T] = []
        for kept, _population in self.per_stratum.values():
            out.extend(kept)
        return out

    @property
    def population(self) -> int:
        return sum(pop for _kept, pop in self.per_stratum.values())

    def weights(self) -> Dict[Key, float]:
        out: Dict[Key, float] = {}
        for key, (kept, population) in self.per_stratum.items():
            out[key] = population / len(kept) if kept else 1.0
        return out


class StratifiedSampler(Generic[T]):
    """Batch stratified sampling à la Spark ``sampleByKey(Exact)``.

    Parameters
    ----------
    exact:
        When True, reproduce ``sampleByKeyExact``: exact per-stratum sample
        sizes via the full waitlist sort.  When False, reproduce
        ``sampleByKey``: single-pass Bernoulli acceptance with approximate
        sizes (cheaper, noisier).
    workers:
        Number of workers participating in the groupBy shuffle; only
        affects the cost profile, not the sample.

    ``sample_by_key`` is the per-item reference implementation;
    ``sample_by_key_chunked`` consumes the batch as chunks (e.g. RDD
    partitions) and uses the vectorized per-stratum samplers.

    Example
    -------
    >>> sampler = StratifiedSampler(exact=True, rng=random.Random(3))
    >>> batch = [("x", i) for i in range(40)]
    >>> result = sampler.sample_by_key(batch, lambda kv: kv[0], 0.25)
    >>> len(result.per_stratum["x"][0])
    10
    """

    def __init__(
        self,
        exact: bool = True,
        workers: int = 4,
        rng: Optional[random.Random] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.exact = exact
        self.workers = workers
        self._rng = rng if rng is not None else random.Random()
        self._srs = ScaSRSSampler(rng=self._rng)
        self._np_rng = None

    def sample_by_key(
        self,
        batch: Sequence[T],
        key_fn,
        fractions,
    ) -> STSResult[T]:
        """Stratified sample with per-stratum fractions.

        ``fractions`` is either a single float applied to every stratum or a
        ``{key: fraction}`` mapping (Spark's required pre-defined map —
        missing keys fall back to 0, mirroring Spark's strictness about
        knowing strata up front).
        """
        groups: Dict[Key, List[T]] = {}
        for item in batch:
            groups.setdefault(key_fn(item), []).append(item)

        per_stratum: Dict[Key, Tuple[List[T], int]] = {}
        sort_work = 0.0
        for key, members in groups.items():
            fraction = (
                fractions if isinstance(fractions, float) else fractions.get(key, 0.0)
            )
            if not 0 <= fraction <= 1:
                raise ValueError(
                    f"fraction for stratum {key!r} must be in [0, 1], got {fraction}"
                )
            if self.exact:
                k = int(math.ceil(len(members) * fraction)) if fraction > 0 else 0
                k = min(k, len(members))
                result: SRSResult[T] = self._srs.sample(members, k)
                kept = result.items
                sort_work += result.sort_work
            else:
                kept = [m for m in members if self._rng.random() < fraction]
            per_stratum[key] = (kept, len(members))

        # Cost profile: groupBy shuffles every item across workers and each
        # stratum's exact sampling ends with a collect barrier.
        barriers = 1 + (len(groups) if self.exact else 0)
        return STSResult(
            per_stratum=per_stratum,
            shuffled_items=len(batch),
            sync_barriers=barriers,
            sort_work=sort_work,
        )

    def sample_by_key_chunked(
        self,
        chunks: Iterable[Sequence[T]],
        key_fn,
        fractions,
    ) -> STSResult[T]:
        """Chunk-at-a-time stratified sampling (the vectorized fast path).

        Consumes the batch as an iterable of chunks — in the batched engine
        these are the RDD's partitions — grouping each chunk into strata as
        it arrives, then sampling every stratum with the vectorized SRS
        (``exact=True``) or one batched Bernoulli draw per stratum
        (``exact=False``).  The selection semantics, weights, and the cost
        profile (every item still shuffles; exact mode still pays a barrier
        per stratum) match ``sample_by_key``.
        """
        groups: Dict[Key, List[T]] = {}
        total = 0
        for chunk in chunks:
            total += len(chunk)
            get_group = groups.get
            for item in chunk:
                key = key_fn(item)
                bucket = get_group(key)
                if bucket is None:
                    groups[key] = bucket = []
                bucket.append(item)

        per_stratum: Dict[Key, Tuple[List[T], int]] = {}
        sort_work = 0.0
        for key, members in groups.items():
            fraction = (
                fractions if isinstance(fractions, float) else fractions.get(key, 0.0)
            )
            if not 0 <= fraction <= 1:
                raise ValueError(
                    f"fraction for stratum {key!r} must be in [0, 1], got {fraction}"
                )
            if self.exact:
                k = int(math.ceil(len(members) * fraction)) if fraction > 0 else 0
                k = min(k, len(members))
                result: SRSResult[T] = self._srs.sample_chunk(members, k)
                kept = result.items
                sort_work += result.sort_work
            elif _np is not None and len(members) >= _VECTOR_MIN:
                if self._np_rng is None:
                    self._np_rng = _derive_generator(self._rng)
                hits = _np.flatnonzero(self._np_rng.random(len(members)) < fraction)
                kept = [members[i] for i in hits.tolist()]
            else:
                kept = [m for m in members if self._rng.random() < fraction]
            per_stratum[key] = (kept, len(members))

        barriers = 1 + (len(groups) if self.exact else 0)
        return STSResult(
            per_stratum=per_stratum,
            shuffled_items=total,
            sync_barriers=barriers,
            sort_work=sort_work,
        )

    def proportional_fractions(
        self, expected_counts: Dict[Key, int], total_sample: int
    ) -> Dict[Key, float]:
        """The pre-defined fraction map Spark STS needs (§1, limitation 2).

        Derives per-stratum fractions from *expected* counts so the total
        sample is about ``total_sample``.  If arrival rates later drift from
        these expectations the realised sample drifts too — the adaptivity
        gap OASRS closes.
        """
        total = sum(expected_counts.values())
        if total == 0:
            return {key: 0.0 for key in expected_counts}
        f = min(1.0, total_sample / total)
        return {key: f for key in expected_counts}
