"""Baseline sampling algorithms reimplemented from Apache Spark MLib.

* `repro.sampling.srs` — Simple Random Sampling via the pruned random sort
  (ScaSRS), Spark's ``sample`` / ``takeSample``.
* `repro.sampling.sts` — Stratified Sampling via groupBy + per-stratum SRS,
  Spark's ``sampleByKey`` / ``sampleByKeyExact``.

Both report execution profiles (sort work, shuffle volume, barriers) that
the simulated cluster converts into time, reproducing the cost asymmetries
the paper's evaluation hinges on.
"""

from .srs import ScaSRSSampler, SRSResult, simple_random_sample
from .sts import StratifiedSampler, STSResult

__all__ = [
    "ScaSRSSampler",
    "SRSResult",
    "STSResult",
    "StratifiedSampler",
    "simple_random_sample",
]
