"""Runtime observability: a metrics registry and a structured tracer.

The paper's evaluation is throughput/latency/accuracy curves computed
*after* a run; this package is the live counterpart — where does time go
while a run is in flight, and why did the control loops decide what they
decided.  Two primitives:

* `MetricsRegistry` — named counters, gauges, and fixed-bucket
  histograms.  Disabled registries hand out shared module-level no-op
  instruments, so instrumented code hoists one ``registry.counter(name)``
  lookup out of its loop and pays a single no-op method call per
  increment when telemetry is off.
* `Tracer` — nested spans (``run → interval → {ingest, offer, transport,
  estimate, checkpoint}`` on the execution side, ``service → admission →
  execution → pane`` on the serving side) plus instant events, exported
  as JSON-lines or Chrome ``trace_event`` JSON for chrome://tracing.

`TelemetryConfig` is the declarative knob (``SystemConfig(telemetry=…)``);
`RunTelemetry` is the live per-run bundle the drivers fill in and surface
as ``SystemReport.telemetry``.  Neither primitive touches RNG state or
estimates — telemetry-on runs are bitwise identical to telemetry-off
runs (pinned by the golden suite).  See ``docs/observability.md``.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from .telemetry import (
    NULL_PANE_TIMER,
    PaneTimer,
    RunTelemetry,
    TelemetryConfig,
    run_telemetry,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer, write_chrome_trace

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_PANE_TIMER",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "PaneTimer",
    "RunTelemetry",
    "Span",
    "TelemetryConfig",
    "Tracer",
    "run_telemetry",
    "write_chrome_trace",
]
