"""The per-run telemetry bundle and the drivers' lap-style stage timer.

`TelemetryConfig` is the frozen, declarative knob that rides on
``SystemConfig(telemetry=…)`` — it says *whether* to trace and/or meter,
nothing else, so configs stay picklable and comparable.  When a driver
sees it, it builds a live `RunTelemetry` (one `Tracer` + one
`MetricsRegistry` + the per-pane stage table) and threads it through
``run_info`` to `SystemReport.telemetry`.  Passing a `RunTelemetry`
instance instead of a config lets callers hold the collector directly
(the CLI does this to merge traces across systems).

`PaneTimer` is how the drivers time stages without littering the run
loop with conditionals: ``open()`` at the top of an interval, ``lap(
"ingest")`` after each stage, ``close(index, …)`` at the bottom.  The
laps become one ``interval`` span with per-stage children plus a row in
``RunTelemetry.pane_stages``.  The disabled twin `NULL_PANE_TIMER` makes
every method a no-op, so a telemetry-off run pays a handful of no-op
calls per *interval* — intervals number in the dozens while items number
in the millions, which is what makes "free when off" hold on fig6a.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Union

from .metrics import MetricsRegistry, NULL_METRICS
from .trace import NULL_TRACER, Tracer

__all__ = [
    "TelemetryConfig",
    "RunTelemetry",
    "PaneTimer",
    "NULL_PANE_TIMER",
    "run_telemetry",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """Declarative telemetry switch for `SystemConfig`.

    ``tracing`` builds span trees (JSON-lines / chrome://tracing export);
    ``metrics`` builds the counter/gauge/histogram registry.  Both default
    on — the config's presence is the opt-in.
    """

    tracing: bool = True
    metrics: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.tracing, bool) or not isinstance(self.metrics, bool):
            raise TypeError("TelemetryConfig fields must be bools")


class RunTelemetry:
    """Live telemetry for one run: tracer + metrics + per-pane stage table."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self.tracer = Tracer() if self.config.tracing else NULL_TRACER
        self.metrics = MetricsRegistry() if self.config.metrics else NULL_METRICS
        #: One row per closed pane: ``{"index": i, "end": t, "stages": {...}}``.
        self.pane_stages: List[Dict[str, object]] = []

    def pane_timer(self) -> "PaneTimer":
        return PaneTimer(self)

    def note_stage(self, stage: str, start: float, end: float) -> None:
        """Credit ``[start, end)`` to ``stage`` on the most recent pane.

        For driver paths where a stage runs outside the pane timer's
        open/close window (the pipelined engine's checkpoint hook fires
        after its pane aggregation closed) — adds the duration to the last
        pane row and emits a span under whatever span is currently open.
        """
        if self.pane_stages:
            stages = self.pane_stages[-1]["stages"]
            stages[stage] = stages.get(stage, 0.0) + (end - start)
        self.tracer.add_span(stage, start, end)

    def stage_seconds(self) -> Dict[str, float]:
        """Total seconds per stage, summed across panes (stable key order)."""
        totals: Dict[str, float] = {}
        for row in self.pane_stages:
            for stage, seconds in row["stages"].items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def summary(self) -> Dict[str, object]:
        """JSON-able rollup for reports, benchmarks, and the CLI."""
        return {
            "stage_seconds": {
                k: round(v, 6) for k, v in self.stage_seconds().items()
            },
            "panes": len(self.pane_stages),
            "spans": sum(1 for _ in self.tracer.spans()),
            "metrics": self.metrics.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunTelemetry(panes={len(self.pane_stages)}, "
            f"tracing={self.tracer.enabled}, metrics={self.metrics.enabled})"
        )


class PaneTimer:
    """Lap clock for one interval: open → lap per stage → close.

    `close` emits the ``interval`` span (with one child span per lap) under
    whatever span is currently open on the tracer — the drivers keep their
    ``run`` span open for the whole loop, so intervals nest correctly —
    and appends the stage row to ``RunTelemetry.pane_stages``.
    """

    __slots__ = ("_telemetry", "_laps", "_t0", "_last")

    def __init__(self, telemetry: RunTelemetry) -> None:
        self._telemetry = telemetry
        self._laps: List[tuple] = []
        self._t0 = 0.0
        self._last = 0.0

    def open(self) -> None:
        self._t0 = self._last = perf_counter()
        self._laps = []

    def lap(self, stage: str) -> None:
        now = perf_counter()
        self._laps.append((stage, self._last, now))
        self._last = now

    def close(self, index: int, end: Optional[float] = None, **attrs) -> None:
        now = perf_counter()
        stages: Dict[str, float] = {}
        for stage, t0, t1 in self._laps:
            stages[stage] = stages.get(stage, 0.0) + (t1 - t0)
        row: Dict[str, object] = {"index": index, "stages": stages}
        if end is not None:
            row["end"] = end
        self._telemetry.pane_stages.append(row)

        tracer = self._telemetry.tracer
        if tracer.enabled:
            span_attrs: Dict[str, object] = {"index": index}
            if end is not None:
                span_attrs["end"] = end
            span_attrs.update(attrs)
            interval = tracer.add_span("interval", self._t0, now, span_attrs)
            for stage, t0, t1 in self._laps:
                tracer.add_span(stage, t0, t1, parent=interval)


class _NullPaneTimer:
    """Disabled timer: the telemetry-off fast path inside the run loops."""

    __slots__ = ()

    def open(self) -> None:
        pass

    def lap(self, stage: str) -> None:
        pass

    def close(self, index: int, end: Optional[float] = None, **attrs) -> None:
        pass


NULL_PANE_TIMER = _NullPaneTimer()


def run_telemetry(
    telemetry: Union[None, TelemetryConfig, RunTelemetry],
) -> Optional[RunTelemetry]:
    """Resolve ``SystemConfig.telemetry`` into a live collector (or None)."""
    if telemetry is None:
        return None
    if isinstance(telemetry, RunTelemetry):
        return telemetry
    return RunTelemetry(telemetry)
