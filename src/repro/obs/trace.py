"""Structured tracing: nested spans with JSON-lines and Chrome export.

A `Span` is a named, timed tree node with free-form attributes; a
`Tracer` maintains the active span stack and the forest of completed
roots.  Spans nest in *creation order* — children are appended to their
parent as they begin — so the tree's **structure** (names, nesting,
attributes, sibling order) is deterministic for a deterministic run,
while the clock fields carry real `time.perf_counter()` readings.  Tests
assert `Span.structure()` (no clocks); trace files carry the timings.

Two export formats:

* `Tracer.write_jsonl(path)` — one JSON object per span, depth-first in
  creation order, with ``depth`` for cheap grep/jq analysis.
* `Tracer.write_chrome(path)` / `write_chrome_trace(path, named)` —
  Chrome ``trace_event`` complete events (``ph: "X"``, microsecond
  timestamps relative to the tracer epoch), loadable in chrome://tracing
  or https://ui.perfetto.dev.  `write_chrome_trace` merges several
  tracers (one per system run) into one file, one "process" lane each.

The disabled path is `NULL_TRACER`: `begin`/`end`/`event` are no-ops and
``with tracer.span(...)`` costs two no-op calls — safe to leave in
instrumented code unconditionally.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "write_chrome_trace"]


class Span:
    """One node of a trace tree: name, attrs, [start, end) clock readings."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(
        self, name: str, attrs: Optional[Dict[str, object]] = None,
        start: float = 0.0, end: Optional[float] = None,
    ) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.start = start
        self.end = end
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def structure(self) -> Dict[str, object]:
        """The deterministic view: names/attrs/nesting, no clock fields."""
        node: Dict[str, object] = {"name": self.name}
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [c.structure() for c in self.children]
        return node

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name}, {self.duration * 1e3:.3f} ms, {len(self.children)} children)"


class _SpanContext:
    """``with tracer.span("name")`` — begin on enter, end on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer.begin(self._name, **self._attrs)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.end()


class Tracer:
    """Active-stack span builder; completed roots accumulate on `roots`."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._stack: List[Span] = []
        self.roots: List[Span] = []
        self.epoch: Optional[float] = None

    # -- building ---------------------------------------------------------
    def begin(self, name: str, **attrs) -> Span:
        now = self._clock()
        if self.epoch is None:
            self.epoch = now
        span = Span(name, attrs, start=now)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self) -> Optional[Span]:
        if not self._stack:
            return None
        span = self._stack.pop()
        span.end = self._clock()
        return span

    def span(self, name: str, **attrs) -> _SpanContext:
        return _SpanContext(self, name, attrs)

    def event(self, name: str, **attrs) -> Span:
        """A zero-duration instant attached to the current span (or root)."""
        now = self._clock()
        if self.epoch is None:
            self.epoch = now
        span = Span(name, attrs, start=now, end=now)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def add_span(
        self, name: str, start: float, end: float,
        attrs: Optional[Dict[str, object]] = None, parent: Optional[Span] = None,
    ) -> Span:
        """Attach a retroactively-timed span (used by lap-style timers)."""
        if self.epoch is None:
            self.epoch = start
        span = Span(name, dict(attrs) if attrs else {}, start=start, end=end)
        if parent is not None:
            parent.children.append(span)
        elif self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def close(self) -> None:
        """End any spans left open (crash paths keep a well-formed tree)."""
        while self._stack:
            self.end()

    # -- export -----------------------------------------------------------
    def structure(self) -> List[Dict[str, object]]:
        return [root.structure() for root in self.roots]

    def spans(self) -> Iterator[Tuple[Span, int]]:
        for root in self.roots:
            yield from root.walk()

    def jsonl_lines(self) -> Iterator[str]:
        epoch = self.epoch or 0.0
        for span, depth in self.spans():
            record = {
                "name": span.name,
                "depth": depth,
                "start_us": round((span.start - epoch) * 1e6, 1),
                "dur_us": round(span.duration * 1e6, 1),
            }
            if span.attrs:
                record["attrs"] = span.attrs
            yield json.dumps(record, default=str, sort_keys=True)

    def write_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            for line in self.jsonl_lines():
                fh.write(line + "\n")

    def chrome_events(self, pid: int = 0, tid: int = 0) -> List[Dict[str, object]]:
        epoch = self.epoch or 0.0
        events: List[Dict[str, object]] = []
        for span, _depth in self.spans():
            event: Dict[str, object] = {
                "name": span.name,
                "ph": "X" if span.duration else "i",
                "ts": round((span.start - epoch) * 1e6, 1),
                "pid": pid,
                "tid": tid,
                "args": {k: str(v) for k, v in span.attrs.items()},
            }
            if span.duration:
                event["dur"] = round(span.duration * 1e6, 1)
            else:
                event["s"] = "t"  # instant scope: thread
            events.append(event)
        return events

    def write_chrome(self, path, name: str = "run") -> None:
        write_chrome_trace(path, [(name, self)])


def write_chrome_trace(path, named_tracers: Iterable[Tuple[str, Tracer]]) -> None:
    """Merge ``(name, tracer)`` pairs into one chrome://tracing JSON file."""
    events: List[Dict[str, object]] = []
    for pid, (name, tracer) in enumerate(named_tracers):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
        events.extend(tracer.chrome_events(pid=pid))
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh, default=str)
        fh.write("\n")


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> "Span":
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NullTracer:
    """Disabled tracer: every operation is a no-op."""

    enabled = False
    roots: Tuple[Span, ...] = ()
    epoch = None

    def begin(self, name: str, **attrs) -> Span:
        return _NULL_SPAN

    def end(self) -> Optional[Span]:
        return None

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, **attrs) -> Span:
        return _NULL_SPAN

    def add_span(self, name, start, end, attrs=None, parent=None) -> Span:
        return _NULL_SPAN

    def close(self) -> None:
        pass

    def structure(self) -> List[Dict[str, object]]:
        return []

    def spans(self) -> Iterator[Tuple[Span, int]]:
        return iter(())

    def jsonl_lines(self) -> Iterator[str]:
        return iter(())

    def chrome_events(self, pid: int = 0, tid: int = 0) -> List[Dict[str, object]]:
        return []


_NULL_SPAN = Span("null")
_NULL_SPAN_CONTEXT = _NullSpanContext()

#: Shared disabled tracer — safe to call unconditionally from hot code.
NULL_TRACER = NullTracer()
