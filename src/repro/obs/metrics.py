"""Counters, gauges, and fixed-bucket histograms with a no-op fast path.

Design constraints (see ISSUE 10 / docs/observability.md):

* **Near-zero cost when disabled.**  A disabled registry
  (`NullMetricsRegistry`) returns shared module-level no-op instruments
  from `counter()` / `gauge()` / `histogram()`.  Instrumented code binds
  the instrument once, outside its loop::

      items = registry.counter("items.observed")   # one lookup, ever
      for interval in run:
          items.inc(n)                             # no-op when disabled

  so the hot path never does a dict lookup and the disabled cost is one
  attribute-free method call per *interval* (never per chunk or item).
* **Deterministic snapshots.**  `snapshot()` sorts by name so telemetry
  output is stable across runs and hash seeds.

Values are plain floats; histograms use fixed inclusive upper-edge
buckets (one overflow bucket) so `observe()` is a single bisect and
percentiles are cheap bucket walks — estimates with bucket-edge
resolution, which is all the service wire report needs.
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"


#: Default histogram edges, tuned for seconds-scale latencies (1 ms – 10 s).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """Fixed-bucket histogram: inclusive upper edges plus an overflow bucket.

    `percentile()` returns the upper edge of the bucket holding the
    nearest-rank observation (the observed max for the overflow bucket) —
    a deliberate estimate, not an exact order statistic.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "max")

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket edge")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        if not self.count:
            return 0.0
        rank = min(max(1, ceil(p / 100.0 * self.count)), self.count)
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max  # pragma: no cover - unreachable

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 9),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max,
        }


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    max = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments, created on first use and snapshot-able."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, factory, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory()
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:
        return self._get(
            name, lambda: Histogram(name, bounds or DEFAULT_BUCKETS), Histogram
        )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Name-sorted view: ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.value
            else:
                out["histograms"][name] = instrument.summary()
        return out


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: every instrument is a shared no-op singleton."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name, bounds=None) -> Histogram:  # type: ignore[override]
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared disabled registry — the module-level no-op fast path.
NULL_METRICS = NullMetricsRegistry()
