"""Fault tolerance for distributed OASRS: snapshots, faults, recovery.

§3.2's distributed execution keeps per-worker reservoirs and counters with
no synchronization — which also means a worker crash mid-interval loses
only *its own* reservoir and counter, never global state.  This module
makes that recovery story concrete, and supplies the state-snapshot
primitives the runtime checkpoint layer (`repro.runtime.checkpoint`) is
built on:

* **Snapshot primitives** — `reservoir_state` / `sampler_state` /
  `snapshot_attrs` capture a `Reservoir`, `OASRSSampler`, or allocation
  policy as plain data (RNG state included, down to the per-reservoir
  numpy generator used by the vectorized chunk path), and their
  ``restore_*`` counterparts rebuild *exactly* that state.  "Exactly"
  is the contract: a restored sampler draws the same random numbers the
  original would have, so post-restore panes are bitwise identical to an
  uninterrupted run.
* **Fault schedules** — `ShardKill` / `FaultSchedule` describe
  deterministic worker-loss injections for `ShardedExecutor`, and
  `RecoveryEvent` is the per-incident record executors surface to pane
  results.
* `ResilientDistributedOASRS` wraps `DistributedOASRS`-style execution
  with per-worker liveness: a failed worker's un-checkpointed state is
  discarded, its routed items are re-routed to survivors from the failure
  point on, and the interval's weights remain *correct for the items that
  survived* (Equation 1 is per-stratum over observed counts, so dropping
  a worker's counts keeps the estimator unbiased over the remaining
  sub-population — the estimate simply covers fewer items, and the error
  bound widens accordingly).
* Optional **checkpointing**: a worker snapshots its full sampler state
  (reservoirs + counters + RNG, via `sampler_state`) at item-count
  boundaries; on failure the last checkpoint is restored, so only the
  items since the checkpoint are lost rather than the interval.  The
  snapshot format is the same one chunked execution runs on — a restored
  worker continues through `OASRSSampler.process_chunk` with no format
  translation, so checkpoints and chunked execution cannot diverge.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Generic,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from .oasrs import AllocationPolicy, KeyFn, OASRSSampler
from .reservoir import Reservoir
from .strata import WeightedSample, combine_worker_samples

try:  # pragma: no cover - exercised implicitly by both suites
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

T = TypeVar("T")

__all__ = [
    "WorkerFailure",
    "ResilientDistributedOASRS",
    "RecoveryEvent",
    "ShardKill",
    "FaultSchedule",
    "reservoir_state",
    "restore_reservoir",
    "sampler_state",
    "restore_sampler",
    "snapshot_attrs",
    "restore_attrs",
]


class WorkerFailure(Exception):
    """Raised internally to simulate a worker crash (failure injection)."""


# ---------------------------------------------------------------------------
# State snapshots: plain-data capture/restore of the sampling stack
# ---------------------------------------------------------------------------


def snapshot_attrs(obj: Any) -> Dict[str, Any]:
    """Deep-copy an object's ``__dict__`` — the generic state snapshot.

    Works for every allocation policy (they hold only plain counters and
    dicts) and for any other slot-less stateful helper whose behavior is
    fully determined by its attributes.
    """
    return copy.deepcopy(obj.__dict__)


def restore_attrs(obj: Any, state: Dict[str, Any]) -> None:
    """Restore a `snapshot_attrs` snapshot *in place*.

    In-place restoration matters: the runtime shares policy objects between
    samplers, executors, and bound strategies, and swapping attributes
    (rather than the object) keeps every alias valid.
    """
    obj.__dict__.clear()
    obj.__dict__.update(copy.deepcopy(state))


def reservoir_state(reservoir: Reservoir) -> Dict[str, Any]:
    """Capture one reservoir as plain data, vectorized-RNG state included.

    The per-reservoir numpy generator is snapshotted by value
    (``bit_generator.state``), never re-derived: `derive_generator`
    consumes bits from the parent ``random.Random``, so re-deriving on
    restore would desynchronize every later draw.
    """
    np_state = None
    if reservoir._np_rng is not None:
        np_state = copy.deepcopy(reservoir._np_rng.bit_generator.state)
    return {
        "capacity": reservoir.capacity,
        "items": list(reservoir.items),
        "seen": reservoir.seen,
        "np_state": np_state,
    }


def restore_reservoir(state: Dict[str, Any], rng: random.Random) -> Reservoir:
    """Rebuild a reservoir from `reservoir_state`, sharing ``rng``."""
    reservoir = Reservoir(state["capacity"], rng=rng)
    reservoir._items = list(state["items"])
    reservoir._seen = state["seen"]
    if state["np_state"] is not None and _np is not None:
        generator = _np.random.default_rng(0)
        generator.bit_generator.state = copy.deepcopy(state["np_state"])
        reservoir._np_rng = generator
    return reservoir


def sampler_state(sampler: OASRSSampler) -> Dict[str, Any]:
    """Capture an `OASRSSampler` mid-stream as plain data.

    Includes the shared ``random.Random`` state, the known-key set, every
    reservoir (in insertion order — reservoir creation order determines
    which reservoir draws next from the shared RNG), and the allocation
    policy's attributes.  Callables (``key_fn``) are deliberately *not*
    captured: restore targets a sampler built by the same plan, which
    supplies them.
    """
    return {
        "rng": sampler._rng.getstate(),
        "known_keys": sorted(sampler._known_keys, key=repr),
        "value_keys": sorted(sampler._value_keys, key=repr),
        "reservoirs": [
            (key, reservoir_state(res)) for key, res in sampler._reservoirs.items()
        ],
        "policy": snapshot_attrs(sampler._policy),
    }


def restore_sampler(sampler: OASRSSampler, state: Dict[str, Any]) -> OASRSSampler:
    """Restore a `sampler_state` snapshot onto a structurally-equal sampler.

    The target must have been built with the same key function and policy
    type (the plan rebuilds it); this overwrites its RNG, reservoirs, and
    policy attributes with the checkpointed values.
    """
    sampler._rng.setstate(state["rng"])
    restore_attrs(sampler._policy, state["policy"])
    sampler._known_keys = set(state["known_keys"])
    # Older snapshots predate value-mode reservoirs; default to none.
    sampler._value_keys = set(state.get("value_keys", ()))
    sampler._reservoirs = {
        key: restore_reservoir(saved, sampler._rng)
        for key, saved in state["reservoirs"]
    }
    return sampler


# ---------------------------------------------------------------------------
# Fault injection schedules and recovery records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardKill:
    """Deterministically kill one shard worker during one interval.

    The worker dies after processing ``after_fraction`` of its shard: that
    prefix is lost (discard-and-rewiden), the remaining items are re-routed
    to the surviving shards.  ``permanent`` removes the worker from the
    live set for all later intervals; otherwise it restarts (empty) at the
    next interval.
    """

    interval: int
    worker: int
    after_fraction: float = 0.5
    permanent: bool = False

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if not 0.0 <= self.after_fraction <= 1.0:
            raise ValueError(
                f"after_fraction must be in [0, 1], got {self.after_fraction}"
            )


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic set of `ShardKill` injections for one run."""

    kills: Tuple[ShardKill, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "kills", tuple(self.kills))
        for kill in self.kills:
            if not isinstance(kill, ShardKill):
                raise ValueError(f"kills must be ShardKill instances, got {kill!r}")

    def kills_for(self, interval: int) -> List[ShardKill]:
        return [kill for kill in self.kills if kill.interval == interval]


@dataclass(frozen=True)
class RecoveryEvent:
    """One worker-loss incident, as surfaced on the pane it happened in."""

    interval: int
    worker: int
    items_lost: int
    items_rerouted: int
    permanent: bool = False


# ---------------------------------------------------------------------------
# Resilient distributed sampler (in-process liveness model)
# ---------------------------------------------------------------------------


class _Worker(Generic[T]):
    """One sampling worker with full-state snapshot/restore support."""

    def __init__(self, policy: AllocationPolicy, key_fn: KeyFn, seed: int) -> None:
        self._policy = policy
        self._key_fn = key_fn
        self._seed = seed
        self.sampler: OASRSSampler[T] = OASRSSampler(
            policy, key_fn=key_fn, rng=random.Random(seed)
        )
        self.alive = True
        self.items_since_checkpoint = 0
        self._checkpoint: Optional[Dict[str, Any]] = None
        self._checkpoint_count = 0

    def offer(self, item: T) -> None:
        self.sampler.offer(item)
        self.items_since_checkpoint += 1

    def process_chunk(self, items: Sequence[T]) -> None:
        """Absorb a chunk through the vectorized sampler path."""
        self.sampler.process_chunk(items)
        self.items_since_checkpoint += len(items)

    def checkpoint(self) -> None:
        """Snapshot the full sampler state (reservoirs + counters + RNG).

        The snapshot is `sampler_state` plain data — the exact state the
        chunk-first execution path runs on — so a restored worker resumes
        with the same reservoirs, counters, and RNG stream it would have
        had, rather than an approximate peeked sample.
        """
        self._checkpoint = sampler_state(self.sampler)
        self._checkpoint_count = self.sampler.peek().total_count
        self.items_since_checkpoint = 0

    def crash(self) -> None:
        self.alive = False

    def recover(self) -> int:
        """Restart from the last checkpoint (or empty); return items kept.

        Restoration is exact: the checkpointed RNG state is reinstated, so
        the restarted worker is bitwise the worker at checkpoint time —
        there is no reseeding drift between the snapshot and live state.
        """
        restored = 0
        if self._checkpoint is not None:
            restore_sampler(self.sampler, self._checkpoint)
            restored = self._checkpoint_count
        else:
            self.sampler = OASRSSampler(
                self._policy, key_fn=self._key_fn, rng=random.Random(self._seed)
            )
        self.alive = True
        self.items_since_checkpoint = 0
        return restored


class ResilientDistributedOASRS(Generic[T]):
    """Distributed OASRS that tolerates worker crashes mid-interval.

    Parameters mirror `DistributedOASRS`; additionally ``checkpoint_every``
    (items per worker) bounds the loss window when a worker dies.
    """

    def __init__(
        self,
        workers: int,
        policy_factory,
        key_fn: KeyFn,
        rng: Optional[random.Random] = None,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive when given")
        base = rng if rng is not None else random.Random()
        self.workers: List[_Worker[T]] = [
            _Worker(policy_factory(), key_fn, seed=base.getrandbits(32))
            for _ in range(workers)
        ]
        self.checkpoint_every = checkpoint_every
        self._index = 0
        self.items_lost = 0
        self.failures_seen = 0

    # -- routing ----------------------------------------------------------

    def _alive_workers(self) -> List[int]:
        return [i for i, w in enumerate(self.workers) if w.alive]

    def offer(self, item: T) -> int:
        """Route one item to a live worker (round-robin over survivors)."""
        alive = self._alive_workers()
        if not alive:
            raise RuntimeError("all workers have failed")
        worker_id = alive[self._index % len(alive)]
        self._index += 1
        worker = self.workers[worker_id]
        worker.offer(item)
        self._maybe_checkpoint(worker)
        return worker_id

    def offer_many(self, items: Iterable[T]) -> None:
        for item in items:
            self.offer(item)

    def process_chunk(self, items: Sequence[T]) -> None:
        """Route a chunk across live workers through the vectorized path.

        Items are distributed round-robin starting at the current routing
        index (matching per-item ``offer`` order), but each worker absorbs
        its share in one `OASRSSampler.process_chunk` call.
        """
        alive = self._alive_workers()
        if not alive:
            raise RuntimeError("all workers have failed")
        shares: Dict[int, List[T]] = {worker_id: [] for worker_id in alive}
        routed = 0
        for offset, item in enumerate(items):
            worker_id = alive[(self._index + offset) % len(alive)]
            shares[worker_id].append(item)
            routed += 1
        self._index += routed
        for worker_id, share in shares.items():
            if not share:
                continue
            worker = self.workers[worker_id]
            worker.process_chunk(share)
            self._maybe_checkpoint(worker)

    def _maybe_checkpoint(self, worker: _Worker[T]) -> None:
        if (
            self.checkpoint_every is not None
            and worker.items_since_checkpoint >= self.checkpoint_every
        ):
            worker.checkpoint()

    # -- failure injection ---------------------------------------------------

    def fail_worker(self, worker_id: int) -> None:
        """Crash one worker: its un-checkpointed interval state is lost.

        If the worker had a checkpoint, the worker restarts *from* that
        exact state (reservoirs, counters, RNG) and its checkpointed items
        stay in the interval's result; everything it absorbed since the
        checkpoint is gone (counted in ``items_lost``).
        """
        worker = self.workers[worker_id]
        if not worker.alive:
            return
        self.failures_seen += 1
        self.items_lost += worker.items_since_checkpoint
        worker.crash()
        worker.recover()

    # -- interval close ----------------------------------------------------------

    def close_interval(self) -> WeightedSample[T]:
        """Merge survivors' samples for the interval (restored state included)."""
        parts = [w.sampler.close_interval() for w in self.workers if w.alive]
        self._index = 0
        self.items_lost = 0
        for worker in self.workers:
            worker._checkpoint = None
            worker._checkpoint_count = 0
            worker.items_since_checkpoint = 0
        return combine_worker_samples(parts)

    def coverage(self, items_routed: int) -> float:
        """Fraction of routed items still represented after failures."""
        if items_routed == 0:
            return 1.0
        return max(0.0, 1.0 - self.items_lost / items_routed)
