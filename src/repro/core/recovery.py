"""Fault tolerance for distributed OASRS (systems extension).

§3.2's distributed execution keeps per-worker reservoirs and counters with
no synchronization — which also means a worker crash mid-interval loses
only *its own* reservoir and counter, never global state.  This module
makes that recovery story concrete:

* `ResilientDistributedOASRS` wraps `DistributedOASRS`-style execution
  with per-worker liveness: a failed worker's partial sample is discarded,
  its routed items are re-routed to survivors from the failure point on,
  and the interval's weights remain *correct for the items that survived*
  (Equation 1 is per-stratum over observed counts, so dropping a worker's
  counts keeps the estimator unbiased over the remaining sub-population —
  the estimate simply covers fewer items, and the error bound widens
  accordingly).
* Optional **checkpointing**: a worker can snapshot (reservoir, counters)
  at interval boundaries; on failure the last checkpoint is restored, so
  only the items since the checkpoint are lost rather than the interval.

This is deliberately simple — the point the tests establish is that the
estimator's correctness degrades gracefully and predictably under worker
loss, with no coordination protocol required.
"""

from __future__ import annotations

import random
from typing import Dict, Generic, Iterable, List, Optional, Set, Tuple, TypeVar

from .oasrs import AllocationPolicy, KeyFn, OASRSSampler
from .strata import WeightedSample, combine_worker_samples

T = TypeVar("T")

__all__ = ["WorkerFailure", "ResilientDistributedOASRS"]


class WorkerFailure(Exception):
    """Raised internally to simulate a worker crash (failure injection)."""


class _Worker(Generic[T]):
    """One sampling worker with snapshot/restore support."""

    def __init__(self, policy: AllocationPolicy, key_fn: KeyFn, seed: int) -> None:
        self._policy = policy
        self._key_fn = key_fn
        self._seed = seed
        self.sampler: OASRSSampler[T] = OASRSSampler(
            policy, key_fn=key_fn, rng=random.Random(seed)
        )
        self.alive = True
        self.items_since_checkpoint = 0
        self._checkpoint: Optional[WeightedSample[T]] = None

    def offer(self, item: T) -> None:
        self.sampler.offer(item)
        self.items_since_checkpoint += 1

    def checkpoint(self) -> None:
        """Snapshot the current interval state (cheap: the sample is small)."""
        self._checkpoint = self.sampler.peek()
        self.items_since_checkpoint = 0

    def crash(self) -> None:
        self.alive = False

    def recover(self) -> Optional[WeightedSample[T]]:
        """Return the last checkpointed partial sample, if any, and restart."""
        restored = self._checkpoint
        self.sampler = OASRSSampler(
            self._policy, key_fn=self._key_fn, rng=random.Random(self._seed + 1)
        )
        self.alive = True
        self._checkpoint = None
        self.items_since_checkpoint = 0
        return restored


class ResilientDistributedOASRS(Generic[T]):
    """Distributed OASRS that tolerates worker crashes mid-interval.

    Parameters mirror `DistributedOASRS`; additionally ``checkpoint_every``
    (items per worker) bounds the loss window when a worker dies.
    """

    def __init__(
        self,
        workers: int,
        policy_factory,
        key_fn: KeyFn,
        rng: Optional[random.Random] = None,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive when given")
        base = rng if rng is not None else random.Random()
        self.workers: List[_Worker[T]] = [
            _Worker(policy_factory(), key_fn, seed=base.getrandbits(32))
            for _ in range(workers)
        ]
        self.checkpoint_every = checkpoint_every
        self._recovered_partials: List[WeightedSample[T]] = []
        self._index = 0
        self.items_lost = 0
        self.failures_seen = 0

    # -- routing ----------------------------------------------------------

    def _alive_workers(self) -> List[int]:
        return [i for i, w in enumerate(self.workers) if w.alive]

    def offer(self, item: T) -> int:
        """Route one item to a live worker (round-robin over survivors)."""
        alive = self._alive_workers()
        if not alive:
            raise RuntimeError("all workers have failed")
        worker_id = alive[self._index % len(alive)]
        self._index += 1
        worker = self.workers[worker_id]
        worker.offer(item)
        if (
            self.checkpoint_every is not None
            and worker.items_since_checkpoint >= self.checkpoint_every
        ):
            worker.checkpoint()
        return worker_id

    def offer_many(self, items: Iterable[T]) -> None:
        for item in items:
            self.offer(item)

    # -- failure injection ---------------------------------------------------

    def fail_worker(self, worker_id: int) -> None:
        """Crash one worker: its un-checkpointed interval state is lost.

        If the worker had a checkpoint, that partial sample is salvaged and
        will be merged into the interval's result; everything it absorbed
        since the checkpoint is gone (counted in ``items_lost``).
        """
        worker = self.workers[worker_id]
        if not worker.alive:
            return
        self.failures_seen += 1
        self.items_lost += worker.items_since_checkpoint
        worker.crash()
        restored = worker.recover()
        if restored is not None and restored.total_count > 0:
            self._recovered_partials.append(restored)

    # -- interval close ----------------------------------------------------------

    def close_interval(self) -> WeightedSample[T]:
        """Merge survivors' samples (plus salvaged checkpoints) for the interval."""
        parts = [w.sampler.close_interval() for w in self.workers if w.alive]
        parts.extend(self._recovered_partials)
        self._recovered_partials = []
        self._index = 0
        self.items_lost = 0
        return combine_worker_samples(parts)

    def coverage(self, items_routed: int) -> float:
        """Fraction of routed items still represented after failures."""
        if items_routed == 0:
            return 1.0
        return max(0.0, 1.0 - self.items_lost / items_routed)
