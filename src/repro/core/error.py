"""Error estimation for approximate results (§3.3, Equations 5–9).

The estimators of `repro.core.query` are sums of independently sampled
strata, so their variances add (Equation 5).  Classical finite-population
random-sampling theory then gives per-stratum variance estimates:

* approximate SUM  (Equation 6)::

      Var(SUM)  ≈ Σ_i  C_i (C_i − Y_i) s_i² / Y_i

* approximate MEAN (Equations 8–9), with ω_i = C_i / Σ C_i::

      Var(MEAN) ≈ Σ_i  ω_i² (s_i² / Y_i) (C_i − Y_i) / C_i

where ``s_i²`` is the unbiased sample variance within stratum *i*
(Equation 7).  The ``(C_i − Y_i)`` factors are the finite-population
corrections: a fully-kept stratum (Y_i = C_i, weight 1) contributes zero
variance, which is exactly why OASRS never "pays" for rare strata.

Error bounds use the normal approximation (Central Limit Theorem across
items within a stratum) and the 68–95–99.7 rule: the true value lies within
k standard deviations with probability ≈ 68% (k=1), 95% (k=2), 99.7% (k=3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from .query import QueryResult, StratumStats

__all__ = [
    "ErrorBound",
    "variance_of_sum",
    "variance_of_mean",
    "estimate_error",
    "confidence_z",
    "CONFIDENCE_TO_Z",
]

# The 68-95-99.7 rule, plus the conventional 90/99 levels (two-sided normal
# quantiles) so budgets can be expressed at standard confidence levels.
CONFIDENCE_TO_Z: Dict[float, float] = {
    0.68: 1.0,
    0.90: 1.645,
    0.95: 2.0,  # the paper uses the empirical-rule "2 sigma", not 1.96
    0.99: 2.576,
    0.997: 3.0,
}


def confidence_z(confidence: float) -> float:
    """z-multiplier for a confidence level, per the 68-95-99.7 rule."""
    try:
        return CONFIDENCE_TO_Z[round(confidence, 3)]
    except KeyError:
        raise ValueError(
            f"unsupported confidence {confidence}; choose one of "
            f"{sorted(CONFIDENCE_TO_Z)}"
        ) from None


@dataclass(frozen=True)
class ErrorBound:
    """An approximate result expressed as ``value ± margin``.

    ``margin`` is ``z × sqrt(variance)`` at the requested confidence level.
    ``interval`` gives the two-sided confidence interval.
    """

    value: float
    variance: float
    confidence: float
    margin: float

    @property
    def interval(self) -> tuple:
        return (self.value - self.margin, self.value + self.margin)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def relative_margin(self) -> float:
        """Margin as a fraction of the estimate (inf when the value is 0)."""
        if self.value == 0:
            return math.inf if self.margin > 0 else 0.0
        return abs(self.margin / self.value)

    def covers(self, truth: float) -> bool:
        lo, hi = self.interval
        return lo <= truth <= hi

    def __str__(self) -> str:
        return f"{self.value:.6g} ± {self.margin:.6g} ({self.confidence:.1%})"


def _stratum_sum_variance(s: StratumStats) -> float:
    """One stratum's contribution to Equation 6."""
    if s.y <= 1 or s.c <= s.y:
        # Degenerate (single sample: variance unknown, assume 0 as the paper's
        # formulas do) or fully-sampled stratum (finite-population correction
        # kills the term).
        return 0.0
    return s.c * (s.c - s.y) * s.variance / s.y


def variance_of_sum(strata: Sequence[StratumStats]) -> float:
    """Equation 6: variance of the approximate SUM across strata."""
    return math.fsum(_stratum_sum_variance(s) for s in strata)


def variance_of_mean(strata: Sequence[StratumStats]) -> float:
    """Equation 9: variance of the approximate MEAN across strata."""
    population = sum(s.c for s in strata)
    if population == 0:
        return 0.0
    total = 0.0
    for s in strata:
        if s.y <= 1 or s.c <= s.y or s.c == 0:
            continue
        omega = s.c / population
        total += (omega ** 2) * (s.variance / s.y) * ((s.c - s.y) / s.c)
    return total


def estimate_error(result: QueryResult, confidence: float = 0.95) -> ErrorBound:
    """Attach an error bound to a query result (the ``estimateError`` step).

    SUM-like results (sum, count, histogram entries) use Equation 6;
    MEAN-like results use Equation 9.  COUNT is exact under OASRS (the
    counters are maintained outside the sample), so its variance is zero.
    """
    if result.kind == "sum":
        variance = variance_of_sum(result.strata)
    elif result.kind == "mean":
        variance = variance_of_mean(result.strata)
    elif result.kind == "count":
        variance = 0.0
    else:
        raise ValueError(f"unknown query kind {result.kind!r}")
    z = confidence_z(confidence)
    margin = z * math.sqrt(variance)
    return ErrorBound(
        value=result.value, variance=variance, confidence=confidence, margin=margin
    )


def required_sample_size(
    population: int,
    variance_guess: float,
    target_margin: float,
    confidence: float = 0.95,
) -> int:
    """Solve Equation 6 for Y given a target ± margin on a one-stratum SUM.

    Used by the accuracy-budget cost function: with
    ``margin = z sqrt(C (C − Y) s² / Y)`` we get
    ``Y = C / (1 + margin² / (z² C s²))``.  Clamped to [1, population].
    """
    if population <= 0:
        return 0
    if target_margin <= 0 or variance_guess <= 0:
        return population
    z = confidence_z(confidence)
    denom = 1.0 + (target_margin ** 2) / (z ** 2 * population * variance_guess)
    needed = population / denom
    return max(1, min(population, int(math.ceil(needed))))


__all__.append("required_sample_size")
