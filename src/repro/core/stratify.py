"""Online stratification of unlabeled streams (§7, "Stratified sampling").

OASRS assumes the input is already stratified by source (§2.3).  For
streams where the source is unavailable — or where one physical source
mixes several distributions — §7 sketches two pre-processing strategies:
a bootstrap-based estimator and a semi-supervised classifier.  This module
implements practical, dependency-free versions of both, each exposing the
same ``assign(value) -> stratum_key`` interface so it can serve as the
``key_fn`` of an `OASRSSampler`:

* `QuantileStratifier` — the bootstrap flavour: maintain a reservoir-based
  sketch of the value distribution ("bootstrap sample"), periodically
  re-derive ``k`` equal-probability quantile buckets, and assign each
  arriving value to its bucket.  Robust, no assumptions on shape.
* `GaussianMixtureStratifier` — the semi-supervised flavour: an online
  1-D k-means (a hard-assignment EM) over running cluster means; items
  are labelled with the nearest cluster, and cluster centres track drift
  with a configurable learning rate.  Works with an optional warm-start
  of labelled seeds (the "semi-supervised" part).

Both stratifiers deliberately *stabilise* their keys: a value's stratum is
the bucket/cluster index, so reservoirs persist across interval boundaries
even as boundaries shift slightly.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence

from .reservoir import Reservoir

__all__ = ["QuantileStratifier", "GaussianMixtureStratifier"]


class QuantileStratifier:
    """Bootstrap-style stratifier: equal-probability quantile buckets.

    Keeps a sketch reservoir of recent values; every ``refresh_every``
    observations the bucket boundaries are recomputed as the sketch's
    ``k``-quantiles.  Until the first refresh every value maps to bucket 0
    (one stratum), which is safe: OASRS degrades to plain reservoir
    sampling, never to bias.

    Parameters
    ----------
    strata:
        Number of buckets ``k`` (≥ 1).
    sketch_size:
        Reservoir capacity of the distribution sketch.
    refresh_every:
        Recompute boundaries after this many new observations.
    rng:
        Randomness for the sketch reservoir.
    """

    def __init__(
        self,
        strata: int,
        sketch_size: int = 512,
        refresh_every: int = 256,
        rng: Optional[random.Random] = None,
    ) -> None:
        if strata <= 0:
            raise ValueError(f"strata must be positive, got {strata}")
        if sketch_size < strata:
            raise ValueError("sketch_size must be at least the stratum count")
        if refresh_every <= 0:
            raise ValueError("refresh_every must be positive")
        self.strata = strata
        self.refresh_every = refresh_every
        self._sketch: Reservoir[float] = Reservoir(sketch_size, rng=rng)
        self._since_refresh = 0
        self._boundaries: List[float] = []

    @property
    def boundaries(self) -> List[float]:
        """Current bucket boundaries (k − 1 ascending cut points)."""
        return list(self._boundaries)

    def _refresh(self) -> None:
        values = sorted(self._sketch.items)
        if len(values) < self.strata:
            return
        cuts = []
        for i in range(1, self.strata):
            # Nearest-rank quantile of the bootstrap sample.
            idx = min(len(values) - 1, int(round(i * len(values) / self.strata)))
            cuts.append(values[idx])
        # De-duplicate (heavy ties can collapse buckets; fewer strata is fine).
        deduped: List[float] = []
        for cut in cuts:
            if not deduped or cut > deduped[-1]:
                deduped.append(cut)
        self._boundaries = deduped

    def observe(self, value: float) -> None:
        """Feed the sketch without assigning (e.g. during warm-up)."""
        self._sketch.offer(float(value))
        self._since_refresh += 1
        if self._since_refresh >= self.refresh_every:
            self._refresh()
            self._since_refresh = 0

    def assign(self, value: float) -> int:
        """Observe the value and return its stratum key (bucket index)."""
        self.observe(value)
        if not self._boundaries:
            return 0
        return bisect.bisect_right(self._boundaries, float(value))


class GaussianMixtureStratifier:
    """Semi-supervised stratifier: online 1-D k-means with drift tracking.

    Cluster centres are initialised from ``seeds`` (labelled examples, one
    list per stratum) when given — otherwise from the first ``k`` distinct
    values — and updated toward each assigned value with step
    ``learning_rate`` so the strata follow non-stationary streams.
    """

    def __init__(
        self,
        strata: int,
        seeds: Optional[Sequence[Sequence[float]]] = None,
        learning_rate: float = 0.05,
    ) -> None:
        if strata <= 0:
            raise ValueError(f"strata must be positive, got {strata}")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if seeds is not None and len(seeds) != strata:
            raise ValueError(
                f"need one seed group per stratum: got {len(seeds)} for {strata}"
            )
        self.strata = strata
        self.learning_rate = learning_rate
        self._centres: List[float] = []
        if seeds is not None:
            for group in seeds:
                if not group:
                    raise ValueError("seed groups must be non-empty")
                self._centres.append(sum(group) / len(group))
            self._centres.sort()

    @property
    def centres(self) -> List[float]:
        return list(self._centres)

    def assign(self, value: float) -> int:
        """Return the stratum (nearest centre), updating the model online."""
        v = float(value)
        if len(self._centres) < self.strata:
            # Bootstrap phase: adopt sufficiently novel values as centres.
            if not self._centres or all(
                abs(v - c) > 1e-12 for c in self._centres
            ):
                self._centres.append(v)
                self._centres.sort()
            return self._nearest(v)
        idx = self._nearest(v)
        self._centres[idx] += self.learning_rate * (v - self._centres[idx])
        return idx

    def _nearest(self, value: float) -> int:
        best, best_dist = 0, float("inf")
        for i, centre in enumerate(self._centres):
            dist = abs(value - centre)
            if dist < best_dist:
                best, best_dist = i, dist
        return best
