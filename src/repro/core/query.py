"""Approximate linear queries over weighted samples (§3.2, Equations 2–4).

OASRS supports *linear* queries — anything expressible as a weighted sum of
per-item values.  Given the interval's `WeightedSample`, the estimators are:

* ``SUM_i  = (Σ_j I_{i,j}) × W_i``                 (Equation 2, per stratum)
* ``SUM    = Σ_i SUM_i``                           (Equation 3)
* ``MEAN   = SUM / Σ_i C_i``                       (Equation 4)
* ``COUNT  = Σ_i C_i`` (exact — counters are maintained, not sampled)
* per-group variants (grouped sum/mean/count/histogram) that treat each
  group independently, which is how the case studies use the system
  (traffic per protocol, mean distance per borough).

Every estimator returns the per-stratum pieces alongside the scalar so that
`repro.core.error` can attach variance-based error bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Hashable, List, Optional, TypeVar

from ._vector import np as _np
from .records import item_value as _item_value
from .strata import StratumSample, WeightedSample

# Strata smaller than this keep the exact fsum path: identical rounding for
# the unit tests, no NumPy call overhead where it would not pay off.
# (Deliberately larger than `_vector.VECTOR_MIN` — moments are cheaper per
# item than RNG draws, so vectorization pays off later.)
_VECTOR_MIN_STATS = 4096

T = TypeVar("T")
ValueFn = Callable[[T], float]

__all__ = [
    "StratumStats",
    "approximate_sum",
    "approximate_mean",
    "approximate_count",
    "grouped_sum",
    "grouped_sum_results",
    "grouped_mean",
    "histogram",
    "histogram_with_errors",
    "QueryResult",
]


@dataclass(frozen=True)
class StratumStats:
    """Per-stratum sufficient statistics feeding Equations 2–9.

    ``y`` is the sample size ``Y_i``, ``c`` the population counter ``C_i``,
    ``weight`` the Equation-1 weight, ``mean``/``variance`` the sample mean
    ``Ī_i`` and unbiased sample variance ``s_i²`` (Equation 7).
    """

    key: Hashable
    y: int
    c: int
    weight: float
    total: float
    mean: float
    variance: float

    @staticmethod
    def from_stratum(
        stratum: StratumSample[T], value_fn: Optional[ValueFn] = None
    ) -> "StratumStats":
        y = len(stratum.items)
        if _np is not None and y >= _VECTOR_MIN_STATS:
            # Vectorized path for large strata: one pass of the (Python)
            # value function into a NumPy buffer, then C-speed moments.
            items = stratum.items
            raw = getattr(items, "value_list", None)
            if raw is not None and (value_fn is None or value_fn is _item_value):
                array = _np.asarray(raw(), dtype=_np.float64)
            elif value_fn is None:
                array = _np.asarray(items, dtype=_np.float64)
            else:
                array = _np.asarray([value_fn(x) for x in items], dtype=_np.float64)
            total = float(array.sum())
            mean = total / y
            variance = float(array.var(ddof=1)) if y > 1 else 0.0
            return StratumStats(
                key=stratum.key,
                y=y,
                c=stratum.count,
                weight=stratum.weight,
                total=total,
                mean=mean,
                variance=variance,
            )
        values = stratum.values(value_fn)
        total = math.fsum(values)
        mean = total / y if y else 0.0
        if y > 1:
            variance = math.fsum((v - mean) ** 2 for v in values) / (y - 1)
        else:
            variance = 0.0
        return StratumStats(
            key=stratum.key,
            y=y,
            c=stratum.count,
            weight=stratum.weight,
            total=total,
            mean=mean,
            variance=variance,
        )


@dataclass(frozen=True)
class QueryResult(Generic[T]):
    """An approximate scalar plus the per-stratum statistics behind it."""

    value: float
    strata: List[StratumStats]
    kind: str

    def __float__(self) -> float:
        return self.value


def _stats(
    sample: WeightedSample[T], value_fn: Optional[ValueFn]
) -> List[StratumStats]:
    return [StratumStats.from_stratum(s, value_fn) for s in sample]


def approximate_sum(
    sample: WeightedSample[T], value_fn: Optional[ValueFn] = None
) -> QueryResult[T]:
    """Equations 2–3: the weighted-sum estimator of the interval total."""
    strata = _stats(sample, value_fn)
    value = math.fsum(s.total * s.weight for s in strata)
    return QueryResult(value=value, strata=strata, kind="sum")


def approximate_mean(
    sample: WeightedSample[T], value_fn: Optional[ValueFn] = None
) -> QueryResult[T]:
    """Equation 4: approximate mean = SUM / Σ C_i (0 for an empty interval)."""
    strata = _stats(sample, value_fn)
    population = sum(s.c for s in strata)
    if population == 0:
        return QueryResult(value=0.0, strata=strata, kind="mean")
    total = math.fsum(s.total * s.weight for s in strata)
    return QueryResult(value=total / population, strata=strata, kind="mean")


def approximate_count(sample: WeightedSample[T]) -> QueryResult[T]:
    """Item count.  Exact, because OASRS keeps the per-stratum counters."""
    strata = _stats(sample, value_fn=lambda _x: 1.0)
    return QueryResult(value=float(sum(s.c for s in strata)), strata=strata, kind="count")


def grouped_sum(
    sample: WeightedSample[T],
    group_fn: Callable[[T], Hashable],
    value_fn: Optional[ValueFn] = None,
) -> Dict[Hashable, float]:
    """Weighted sum per group (e.g. bytes per protocol).

    Groups may cut across strata; each item contributes
    ``value × stratum_weight`` to its group, which stays a linear query.
    """
    vf: ValueFn = (lambda x: float(x)) if value_fn is None else value_fn  # type: ignore[assignment,return-value]
    out: Dict[Hashable, float] = {}
    for stratum in sample:
        for item in stratum.items:
            group = group_fn(item)
            out[group] = out.get(group, 0.0) + vf(item) * stratum.weight
    return out


def grouped_mean(
    sample: WeightedSample[T],
    group_fn: Callable[[T], Hashable],
    value_fn: Optional[ValueFn] = None,
) -> Dict[Hashable, float]:
    """Weighted mean per group (e.g. mean trip distance per borough).

    The denominator is the *estimated* group population Σ weight, because
    exact per-group counters only exist when groups coincide with strata.
    When they do coincide (the common case in the paper's case studies) the
    estimate equals Equation 4 computed per stratum.
    """
    vf: ValueFn = (lambda x: float(x)) if value_fn is None else value_fn  # type: ignore[assignment,return-value]
    sums: Dict[Hashable, float] = {}
    weights: Dict[Hashable, float] = {}
    for stratum in sample:
        for item in stratum.items:
            group = group_fn(item)
            sums[group] = sums.get(group, 0.0) + vf(item) * stratum.weight
            weights[group] = weights.get(group, 0.0) + stratum.weight
    return {g: sums[g] / weights[g] for g in sums if weights[g] > 0}


def histogram(
    sample: WeightedSample[T],
    bin_fn: Callable[[T], Hashable],
) -> Dict[Hashable, float]:
    """Weighted histogram: estimated population count per bin."""
    return grouped_sum(sample, group_fn=bin_fn, value_fn=lambda _x: 1.0)


def grouped_sum_results(
    sample: WeightedSample[T],
    group_fn: Callable[[T], Hashable],
    value_fn: Optional[ValueFn] = None,
) -> Dict[Hashable, "QueryResult[T]"]:
    """Per-group SUM estimates *with per-stratum statistics*, one per group.

    Each group's estimate is itself a linear query over the restriction of
    every stratum to that group, so Equation 6 applies per group — this is
    what powers per-bin error bounds on histograms and per-protocol /
    per-borough bounds in the case studies.  The restricted stratum keeps
    the full stratum weight; its count is estimated as
    ``round(members × W_i)`` (exact whenever groups coincide with strata).
    """
    vf: ValueFn = (lambda x: float(x)) if value_fn is None else value_fn  # type: ignore[assignment,return-value]
    groups = {group_fn(item) for stratum in sample for item in stratum.items}

    out: Dict[Hashable, QueryResult[T]] = {}
    for group in groups:
        # A group sum is the linear query with the *extended* value function
        # v'(x) = v(x)·1[x ∈ group], evaluated over every stratum's full
        # sample — so Y_i, C_i and the Equation-7 variance all come from the
        # whole stratum, and the variance correctly reflects how uncertain
        # the group's membership count is, not just its members' values.
        strata: List[StratumStats] = []
        for stratum in sample:
            values = [
                vf(item) if group_fn(item) == group else 0.0
                for item in stratum.items
            ]
            y = len(values)
            if y == 0:
                continue
            total = math.fsum(values)
            mean = total / y
            variance = (
                math.fsum((v - mean) ** 2 for v in values) / (y - 1) if y > 1 else 0.0
            )
            strata.append(
                StratumStats(
                    key=stratum.key, y=y, c=stratum.count, weight=stratum.weight,
                    total=total, mean=mean, variance=variance,
                )
            )
        value = math.fsum(s.total * s.weight for s in strata)
        out[group] = QueryResult(value=value, strata=strata, kind="sum")
    return out


def histogram_with_errors(
    sample: WeightedSample[T],
    bin_fn: Callable[[T], Hashable],
) -> Dict[Hashable, "QueryResult[T]"]:
    """Histogram bins as SUM queries, ready for `estimate_error` per bin."""
    return grouped_sum_results(sample, group_fn=bin_fn, value_fn=lambda _x: 1.0)
