"""Shared NumPy-acceleration shim for the vectorized chunk paths.

Every chunk fast path (reservoir, SRS/STS samplers, stratum statistics,
the native system's moment accounting) is pure-stdlib with an optional
NumPy acceleration.  This module centralises the three pieces they share:

* ``np`` — the NumPy module, or ``None`` when it is not installed (every
  caller must keep a stdlib fallback),
* ``VECTOR_MIN`` — the default chunk length below which the Python loop
  beats the NumPy call overhead (callers with different per-item costs may
  use their own named threshold),
* ``derive_generator(rng)`` — a ``numpy.random.Generator`` seeded from a
  stdlib ``random.Random``, so seeded runs stay reproducible end to end.
"""

from __future__ import annotations

import random

try:
    import numpy as np
except ImportError:  # pragma: no cover - environment without numpy
    np = None

__all__ = ["np", "VECTOR_MIN", "derive_generator"]

# Below this chunk size the Python loop beats the NumPy call overhead.
VECTOR_MIN = 64


def derive_generator(rng: random.Random):
    """Vector RNG derived from the scalar RNG (requires NumPy present)."""
    return np.random.default_rng(rng.getrandbits(64))
