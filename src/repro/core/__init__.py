"""Core StreamApprox algorithms: OASRS sampling, linear queries, error bounds.

This subpackage is the paper's primary contribution, independent of any
stream-processing substrate:

* `repro.core.reservoir` — classic reservoir sampling (Algorithm 1),
* `repro.core.strata` — per-stratum samples, counters and weights (Eq. 1),
* `repro.core.oasrs` — Online Adaptive Stratified Reservoir Sampling
  (Algorithm 3) with pluggable reservoir-allocation policies,
* `repro.core.distributed` — synchronization-free multi-worker OASRS,
* `repro.core.query` — approximate linear queries (Eq. 2–4),
* `repro.core.error` — variance estimators and error bounds (Eq. 5–9),
* `repro.core.budget` — the §7 virtual cost function and the adaptive
  sample-size feedback loop.
"""

from .budget import (
    AccuracyBudget,
    AdaptiveSampleSizeController,
    CostModel,
    LatencyBudget,
    ResourceBudget,
    VirtualCostFunction,
)
from .distributed import DistributedOASRS, ShardedExecutor
from .error import (
    ErrorBound,
    confidence_z,
    estimate_error,
    required_sample_size,
    variance_of_mean,
    variance_of_sum,
)
from .oasrs import (
    AllocationPolicy,
    EqualAllocation,
    FixedPerStratum,
    OASRSSampler,
    ProportionalAllocation,
    WaterFillingAllocation,
    oasrs_sample,
    water_filling_capacities,
)
from .query import (
    QueryResult,
    StratumStats,
    approximate_count,
    approximate_mean,
    approximate_sum,
    grouped_mean,
    grouped_sum,
    grouped_sum_results,
    histogram,
    histogram_with_errors,
)
from .quantiles import (
    HeavyHitter,
    QuantileEstimate,
    approximate_median,
    approximate_quantile,
    heavy_hitters,
)
from .recovery import ResilientDistributedOASRS, WorkerFailure
from .reservoir import Reservoir, reservoir_sample
from .stratify import GaussianMixtureStratifier, QuantileStratifier
from .strata import (
    StratumSample,
    WeightedSample,
    combine_worker_samples,
    stratum_weight,
)

__all__ = [
    "AccuracyBudget",
    "AdaptiveSampleSizeController",
    "AllocationPolicy",
    "CostModel",
    "DistributedOASRS",
    "EqualAllocation",
    "ErrorBound",
    "FixedPerStratum",
    "GaussianMixtureStratifier",
    "HeavyHitter",
    "LatencyBudget",
    "OASRSSampler",
    "ProportionalAllocation",
    "QuantileEstimate",
    "QuantileStratifier",
    "QueryResult",
    "Reservoir",
    "ResilientDistributedOASRS",
    "ShardedExecutor",
    "ResourceBudget",
    "StratumSample",
    "StratumStats",
    "VirtualCostFunction",
    "WaterFillingAllocation",
    "WeightedSample",
    "WorkerFailure",
    "approximate_count",
    "approximate_mean",
    "approximate_median",
    "approximate_quantile",
    "approximate_sum",
    "combine_worker_samples",
    "confidence_z",
    "estimate_error",
    "grouped_mean",
    "grouped_sum",
    "grouped_sum_results",
    "heavy_hitters",
    "histogram",
    "histogram_with_errors",
    "oasrs_sample",
    "required_sample_size",
    "reservoir_sample",
    "stratum_weight",
    "variance_of_mean",
    "variance_of_sum",
    "water_filling_capacities",
]
