"""Online Adaptive Stratified Reservoir Sampling — OASRS (Algorithm 3).

OASRS is the paper's core contribution.  Within each time interval it:

1. stratifies the arriving stream by a user-supplied key function (the
   sub-stream source),
2. runs an independent fixed-capacity reservoir per stratum — so rare
   strata are never overlooked, and no stratum statistics are needed in
   advance,
3. counts every arriving item per stratum (``C_i``), and
4. on interval close, assigns each stratum the Equation-1 weight
   ``W_i = C_i / Y_i`` (when the reservoir overflowed) or ``1``.

The sampler is *online*: items are processed one at a time with O(1) work
(``offer``) or, on hot paths, chunk at a time with amortised routing and
batched RNG draws (``process_chunk`` — statistically equivalent, see
`repro.core.reservoir.Reservoir.offer_many`), and it is *adaptive*:
per-stratum reservoir capacities come from a policy that may be
re-evaluated every interval (e.g. driven by the query budget, see
`repro.core.budget`).

Two capacity policies from the paper are provided:

* ``EqualAllocation`` — split the interval's total sample size equally over
  the strata seen so far (the paper's ``getSampleSize(sampleSize, S)``);
  newly appearing strata get a reservoir immediately.
* ``FixedPerStratum`` — a constant reservoir size per stratum, the
  configuration used in the paper's figures ("a sample of a fixed size for
  each sub-stream", §5.2).
"""

from __future__ import annotations

import random
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    TypeVar,
)

from ._vector import np as _np
from .records import L2_SLICE as _L2_SLICE
from .records import ColumnSlice, _FloatRun, _StratumMembers, item_key
from .reservoir import Reservoir
from .strata import StratumSample, WeightedSample, stratum_weight

T = TypeVar("T")
Key = Hashable
KeyFn = Callable[[T], Key]

# Columnar chunks at or below this size are grouped with a Python loop over
# the decoded scalars; np.unique + boolean-mask gathers only pay off once a
# chunk is a few cache lines of codes.
_SMALL_CHUNK = 128

__all__ = [
    "AllocationPolicy",
    "EqualAllocation",
    "FixedPerStratum",
    "ProportionalAllocation",
    "WaterFillingAllocation",
    "OASRSSampler",
    "oasrs_sample",
    "water_filling_capacities",
]


class AllocationPolicy:
    """Decides the reservoir capacity ``N_i`` for each stratum.

    ``capacity_for`` is consulted when a stratum first appears within an
    interval, and again at every ``rebalance`` (interval start), so policies
    may adapt to the evolving set of strata.
    """

    def capacity_for(self, key: Key, known_strata: int) -> int:
        raise NotImplementedError

    def rebalance(self, keys) -> Dict[Key, int]:
        """Capacities for all known strata at an interval boundary."""
        keys = list(keys)
        return {k: self.capacity_for(k, len(keys)) for k in keys}


class FixedPerStratum(AllocationPolicy):
    """Every stratum gets the same constant reservoir capacity ``N``."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity

    def capacity_for(self, key: Key, known_strata: int) -> int:
        return self.capacity


class EqualAllocation(AllocationPolicy):
    """Split a total per-interval sample size equally across known strata.

    With ``total=sampleSize`` and ``X`` strata seen so far, every stratum
    gets ``max(1, total // X)`` slots.  This mirrors the paper's
    ``getSampleSize(sampleSize, S)`` step in Algorithm 3.
    """

    def __init__(self, total: int) -> None:
        if total <= 0:
            raise ValueError(f"total sample size must be positive, got {total}")
        self.total = total

    def capacity_for(self, key: Key, known_strata: int) -> int:
        strata = max(1, known_strata)
        return max(1, self.total // strata)


class ProportionalAllocation(AllocationPolicy):
    """Allocate proportionally to observed stratum sizes (ablation policy).

    Uses the previous interval's counts as a proxy for arrival rates.  This
    is what Spark's STS effectively requires (a pre-defined per-stratum
    fraction) and is included to ablate against OASRS's fixed reservoirs.
    """

    def __init__(self, total: int) -> None:
        if total <= 0:
            raise ValueError(f"total sample size must be positive, got {total}")
        self.total = total
        self._last_counts: Dict[Key, int] = {}

    def observe(self, counts: Dict[Key, int]) -> None:
        self._last_counts = dict(counts)

    def capacity_for(self, key: Key, known_strata: int) -> int:
        total_seen = sum(self._last_counts.values())
        if total_seen == 0:
            strata = max(1, known_strata)
            return max(1, self.total // strata)
        share = self._last_counts.get(key, 0) / total_seen
        return max(1, int(round(self.total * share)))


def water_filling_capacities(counts: Dict[Key, int], budget: int) -> Dict[Key, int]:
    """Split a total sample budget into per-stratum reservoir capacities.

    Finds a level ``L`` such that ``Σ min(C_i, L) ≈ budget`` and gives each
    stratum ``min(C_i, L)`` slots (never below 1): small strata are kept
    entirely while popular strata share the remaining budget equally.  This
    is the natural ``getSampleSize`` for "no stratum overlooked, fixed
    reservoir per stratum, total budget k".
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    active = {k: c for k, c in counts.items() if c > 0}
    if not active:
        return {}
    remaining = budget
    capacities: Dict[Key, int] = {}
    pending = sorted(active.items(), key=lambda kc: kc[1])
    while pending:
        level = remaining // len(pending)
        key, count = pending[0]
        if count <= level:
            # Smallest stratum fits under the level: keep it entirely.
            capacities[key] = max(1, count)
            remaining -= count
            pending.pop(0)
        else:
            # Every remaining stratum is larger than the level: split evenly.
            for key, _count in pending:
                capacities[key] = max(1, level)
            pending = []
    return capacities


class WaterFillingAllocation(AllocationPolicy):
    """Budgeted adaptive allocation: water-fill using last interval's counts.

    Stays online: the first interval splits the budget equally over strata
    seen so far; each ``rebalance`` (interval boundary) re-derives
    capacities from the counts observed in the interval just closed, fed in
    via ``observe``.
    """

    def __init__(self, total: int, expected_strata: Optional[int] = None) -> None:
        if total <= 0:
            raise ValueError(f"total sample budget must be positive, got {total}")
        if expected_strata is not None and expected_strata <= 0:
            raise ValueError("expected_strata must be positive when given")
        self.total = total
        self.expected_strata = expected_strata
        self._last_counts: Dict[Key, int] = {}
        self._capacities: Dict[Key, int] = {}

    def observe(self, counts: Dict[Key, int]) -> None:
        self._last_counts = dict(counts)
        self._capacities = (
            water_filling_capacities(self._last_counts, self.total)
            if self._last_counts
            else {}
        )

    def set_total(self, total: int) -> None:
        """Re-target the budget and re-derive capacities from the last counts.

        This is the actuation point of the §4.2 adaptive feedback loop: the
        runtime's budget controller calls it between intervals, so the next
        interval's water-filling uses the new budget immediately instead of
        lagging one ``observe`` behind.
        """
        if total <= 0:
            raise ValueError(f"total sample budget must be positive, got {total}")
        self.total = total
        if self._last_counts:
            self._capacities = water_filling_capacities(self._last_counts, total)

    def capacity_for(self, key: Key, known_strata: int) -> int:
        if key in self._capacities:
            return self._capacities[key]
        # Before the first observation, split the budget over the declared
        # sources (§2.3: strata are the registered sub-stream sources) or,
        # lacking a declaration, over the strata seen so far.
        strata = max(1, self.expected_strata or known_strata)
        return max(1, self.total // strata)


class OASRSSampler(Generic[T]):
    """Streaming OASRS over consecutive time intervals.

    Parameters
    ----------
    policy:
        Reservoir-capacity policy (``N_i`` per stratum).
    key_fn:
        Maps an item to its stratum key (its sub-stream source).
    rng:
        Seeded ``random.Random`` for reproducibility.  Each stratum draws
        from this shared generator.

    Usage
    -----
    >>> sampler = OASRSSampler(FixedPerStratum(3), key_fn=lambda x: x[0],
    ...                        rng=random.Random(1))
    >>> for item in [("a", 1), ("a", 2), ("b", 5)]:
    ...     sampler.offer(item)
    >>> sample = sampler.close_interval()
    >>> sorted(sample.keys)
    ['a', 'b']

    ``close_interval`` returns the interval's `WeightedSample` and resets
    all reservoirs/counters for the next interval, matching Algorithm 2's
    per-time-interval loop.
    """

    def __init__(
        self,
        policy: AllocationPolicy,
        key_fn: KeyFn,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._policy = policy
        self._key_fn = key_fn
        self._rng = rng if rng is not None else random.Random()
        self._reservoirs: Dict[Key, Reservoir[T]] = {}
        self._known_keys: set = set()
        # Keys whose current reservoir holds raw float values (fed through
        # the columnar kernel) rather than item tuples; `peek` re-attaches
        # the key lazily.  Cleared whenever reservoirs are recreated.
        self._value_keys: set = set()

    @property
    def strata_seen(self) -> int:
        """Number of distinct strata observed since construction."""
        return len(self._known_keys)

    def offer(self, item: T) -> Key:
        """Route one arriving item to its stratum's reservoir; O(1)."""
        key = self._key_fn(item)
        reservoir = self._reservoirs.get(key)
        if reservoir is None:
            self._known_keys.add(key)
            capacity = self._policy.capacity_for(key, len(self._known_keys))
            reservoir = Reservoir(capacity, rng=self._rng)
            self._reservoirs[key] = reservoir
        elif self._value_keys and key in self._value_keys:
            # Defensive: the runtime never mixes per-item and columnar
            # feeds within an interval, but if it happens, materialize the
            # stored floats into tuples before accepting a tuple.
            reservoir._items[:] = [(key, v) for v in reservoir._items]
            self._value_keys.discard(key)
        reservoir.offer(item)
        return key

    def offer_many(self, items: Iterable[T]) -> None:
        """Offer items one at a time (the legacy per-item loop).

        Prefer `process_chunk` on hot paths — it amortises routing and RNG
        work across the whole chunk.
        """
        for item in items:
            self.offer(item)

    def process_chunk(self, items: Sequence[T]) -> int:
        """Vectorized fast path: route and sample a whole chunk at once.

        Groups the chunk by stratum in a single pass, then hands each
        stratum's run of items to its reservoir's `Reservoir.offer_many`
        batched-RNG path.  Statistically equivalent to offering each item
        individually (identical per-item acceptance probabilities; ordering
        within a stratum is preserved), and bit-for-bit identical for
        one-item chunks.  Returns the number of items that entered a
        reservoir.

        A `repro.core.records.ColumnSlice` chunk (with the canonical
        ``item_key`` stratifier) takes the columnar route: grouping happens
        on the interned key codes with NumPy — no per-item Python loop at
        all — and reservoirs receive lazy per-stratum views.  Group order
        (first appearance in the chunk) and per-group member order match
        the dict-grouping path exactly, so the RNG draw sequence — and
        therefore the sample — is bitwise identical.  Chunks larger than
        `repro.core.records.L2_SLICE` are processed slice by slice to keep
        the working set cache-sized.
        """
        if not hasattr(items, "__len__"):
            items = list(items)
        n = len(items)
        if n == 0:
            return 0
        if n > _L2_SLICE:
            accepted = 0
            for start in range(0, n, _L2_SLICE):
                accepted += self.process_chunk(items[start : start + _L2_SLICE])
            return accepted
        columnar = (
            _np is not None
            and isinstance(items, ColumnSlice)
            and self._key_fn is item_key
        )
        if n == 1:
            if columnar:
                # Keep one-item column chunks on the value-mode route so a
                # reservoir never sees mixed float/tuple contents.
                key = items.key_table[items.codes[0]]
                reservoir = self._reservoirs.get(key)
                if reservoir is None:
                    self._known_keys.add(key)
                    capacity = self._policy.capacity_for(key, len(self._known_keys))
                    reservoir = Reservoir(capacity, rng=self._rng)
                    self._reservoirs[key] = reservoir
                    self._value_keys.add(key)
                elif key not in self._value_keys:
                    if reservoir.seen:
                        self.offer(items[0])
                        return 1
                    self._value_keys.add(key)
                reservoir.offer(items.values.item(0))
                return 1
            self.offer(items[0])
            return 1
        if columnar:
            return self._process_columns(items)
        key_fn = self._key_fn
        groups: Dict[Key, List[T]] = {}
        get_group = groups.get
        for item in items:
            key = key_fn(item)
            bucket = get_group(key)
            if bucket is None:
                groups[key] = bucket = []
            bucket.append(item)
        reservoirs = self._reservoirs
        accepted = 0
        for key, members in groups.items():
            reservoir = reservoirs.get(key)
            if reservoir is None:
                self._known_keys.add(key)
                capacity = self._policy.capacity_for(key, len(self._known_keys))
                reservoir = Reservoir(capacity, rng=self._rng)
                reservoirs[key] = reservoir
            accepted += reservoir.offer_many(members)
        return accepted

    def _process_columns(self, chunk: ColumnSlice) -> int:
        """Columnar chunk routing: group by interned key codes, no item loop.

        Strata are visited in order of first appearance within the chunk —
        the same order dict grouping produces — and each stratum's members
        keep their stream order, so every reservoir sees exactly the input
        (and consumes exactly the RNG draws) of the per-item grouping path.
        """
        codes = chunk.codes
        values = chunk.values
        table = chunk.key_table
        if codes.shape[0] <= _SMALL_CHUNK:
            # np.unique + mask gathers do not amortize over tiny chunks; a
            # Python grouping loop over the (already decoded) scalars is
            # faster and produces the same groups in the same order.
            grouped: Dict[int, list] = {}
            get_group = grouped.get
            vals = values.tolist()
            pos = 0
            for code in codes.tolist():
                bucket = get_group(code)
                if bucket is None:
                    grouped[code] = bucket = []
                bucket.append(vals[pos])
                pos += 1
            runs = ((table[code], members) for code, members in grouped.items())
        else:
            uniq, first = _np.unique(codes, return_index=True)
            if uniq.size == 1:
                order = (0,)
            else:
                order = _np.argsort(first, kind="stable").tolist()
            runs = (
                (
                    table[uniq[gi]],
                    _FloatRun(values if uniq.size == 1 else values[codes == uniq[gi]]),
                )
                for gi in order
            )
        reservoirs = self._reservoirs
        value_keys = self._value_keys
        accepted = 0
        for key, members in runs:
            reservoir = reservoirs.get(key)
            if reservoir is None:
                self._known_keys.add(key)
                capacity = self._policy.capacity_for(key, len(self._known_keys))
                reservoir = Reservoir(capacity, rng=self._rng)
                reservoirs[key] = reservoir
                value_keys.add(key)
                value_mode = True
            elif key in value_keys:
                value_mode = True
            elif reservoir.seen == 0:
                value_keys.add(key)
                value_mode = True
            else:
                # The reservoir already holds item tuples from a per-item
                # feed; keep feeding tuples so contents stay homogeneous.
                value_mode = False
            if value_mode:
                # Value mode: the reservoir stores raw floats — no tuple is
                # built for items that merely pass through.  `peek`
                # re-attaches the stratum key lazily via _StratumMembers.
                accepted += reservoir.offer_many(members)
            else:
                accepted += reservoir.offer_many(
                    [(key, v) for v in members]
                    if type(members) is list
                    else _StratumMembers(key, members.values)
                )
        return accepted

    def peek(self) -> WeightedSample[T]:
        """Current interval's weighted sample *without* resetting state."""
        sample: WeightedSample[T] = WeightedSample()
        value_keys = self._value_keys
        for key, reservoir in self._reservoirs.items():
            count = reservoir.seen
            if count == 0:
                continue
            if key in value_keys:
                # Value-mode reservoir: stored floats become (key, value)
                # tuples only if a consumer actually indexes the members.
                kept = _StratumMembers(key, reservoir.items)
            else:
                kept = tuple(reservoir.items)
            weight = stratum_weight(count, len(kept))
            sample.add(StratumSample(key, kept, count, weight))
        return sample

    def close_interval(self) -> WeightedSample[T]:
        """Finish the interval: emit its sample and reset for the next one.

        Reservoir capacities are re-derived from the policy so adaptive
        policies (budget feedback, proportional allocation) take effect at
        interval boundaries, as in Algorithm 2.
        """
        sample = self.peek()
        if isinstance(self._policy, (ProportionalAllocation, WaterFillingAllocation)):
            self._policy.observe({s.key: s.count for s in sample})
        capacities = self._policy.rebalance(self._known_keys)
        # Rebuild next interval's reservoirs in first-arrival order (the
        # expiring dict's insertion order), not set-iteration order: stratum
        # order feeds order-sensitive float accumulation in the error
        # bounds, so it must be identical across hash seeds and across a
        # checkpoint resume (which rebuilds ``_known_keys`` from a sorted
        # snapshot and would otherwise iterate differently).
        ordered = [key for key in self._reservoirs if key in capacities]
        if len(ordered) < len(capacities):
            known = self._reservoirs
            ordered += sorted(
                (key for key in capacities if key not in known), key=repr
            )
        self._reservoirs = {
            key: Reservoir(capacities[key], rng=self._rng) for key in ordered
        }
        self._value_keys.clear()
        return sample

    def set_policy(self, policy: AllocationPolicy) -> None:
        """Swap the allocation policy (used by the adaptive budget loop)."""
        self._policy = policy

    def rebalance(self) -> None:
        """Re-derive reservoir capacities from the (possibly updated) policy.

        ``close_interval`` already creates the next interval's reservoirs,
        so a budget change applied *between* intervals (the §4.2 feedback
        step) would otherwise only take effect one interval late.  Calling
        this after updating the policy rebuilds the reservoirs with the new
        capacities.  Only empty reservoirs are replaced, so the call is
        safe at any point — mid-interval it leaves active reservoirs alone.
        """
        capacities = self._policy.rebalance(self._known_keys)
        for key, capacity in capacities.items():
            reservoir = self._reservoirs.get(key)
            if reservoir is None or reservoir.seen == 0:
                self._reservoirs[key] = Reservoir(capacity, rng=self._rng)
                self._value_keys.discard(key)


def oasrs_sample(
    items: Iterable[T],
    sample_size_per_stratum: int,
    key_fn: KeyFn,
    rng: Optional[random.Random] = None,
) -> WeightedSample[T]:
    """One-shot OASRS over a finite batch of items (one time interval).

    This is the ``OASRS(items, sampleSize)`` call of Algorithm 2 specialised
    to the fixed-per-stratum policy the paper evaluates.
    """
    sampler: OASRSSampler[T] = OASRSSampler(
        FixedPerStratum(sample_size_per_stratum), key_fn=key_fn, rng=rng
    )
    sampler.offer_many(items)
    return sampler.close_interval()
