"""Stratum bookkeeping for stratified sampling (§3.2, Equation 1).

A *stratum* is one sub-stream of the input: data items that share a source
and therefore (by the paper's design assumption, §2.3) follow the same
distribution.  During one time interval OASRS keeps, per stratum ``S_i``:

* a fixed-capacity reservoir of sampled items (``N_i`` slots),
* a counter ``C_i`` of items received, and
* a weight ``W_i`` derived from the two (Equation 1)::

      W_i = C_i / N_i   if C_i > N_i    (each kept item stands for C_i/N_i)
      W_i = 1           if C_i <= N_i   (every item was kept)

``StratumSample`` is the immutable per-stratum result handed to the query
and error-estimation layers; ``WeightedSample`` bundles all strata of one
interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, List, Sequence, Tuple, TypeVar

from .records import item_value as _item_value

T = TypeVar("T")
Key = Hashable

__all__ = ["StratumSample", "WeightedSample", "stratum_weight"]


def stratum_weight(count: int, sample_size: int) -> float:
    """Equation 1: the representation weight of one sampled item.

    ``count`` is ``C_i`` (items received from the stratum this interval) and
    ``sample_size`` is ``Y_i`` (items actually kept).  When the stratum
    overflowed its reservoir each kept item represents ``C_i / Y_i`` original
    items; otherwise every item represents only itself.
    """
    if count < 0:
        raise ValueError(f"stratum count must be non-negative, got {count}")
    if sample_size < 0:
        raise ValueError(f"sample size must be non-negative, got {sample_size}")
    if sample_size == 0:
        return 1.0
    if count > sample_size:
        return count / sample_size
    return 1.0


@dataclass(frozen=True)
class StratumSample(Generic[T]):
    """The sample drawn from one stratum during one time interval.

    Attributes
    ----------
    key:
        The stratum identifier (sub-stream source).
    items:
        The ``Y_i`` sampled items.
    count:
        ``C_i`` — how many items the stratum contributed in total.
    weight:
        ``W_i`` from Equation 1.
    """

    key: Key
    items: Tuple[T, ...]
    count: int
    weight: float

    def __post_init__(self) -> None:
        if self.count < len(self.items):
            raise ValueError(
                f"stratum {self.key!r}: count {self.count} smaller than "
                f"sample size {len(self.items)}"
            )
        if self.weight <= 0:
            raise ValueError(f"stratum {self.key!r}: weight must be positive")

    @property
    def sample_size(self) -> int:
        """``Y_i`` — number of items kept from this stratum."""
        return len(self.items)

    @property
    def estimated_count(self) -> float:
        """``Y_i * W_i`` — the stratum population the sample stands for."""
        return self.sample_size * self.weight

    def values(self, value_fn=None) -> List[float]:
        """Numeric values of the sampled items (identity by default)."""
        raw = getattr(self.items, "value_list", None)
        if raw is not None and (value_fn is None or value_fn is _item_value):
            # Value-mode members already hold the raw float column; no
            # per-item projection call is needed.
            return list(raw())
        if value_fn is None:
            return [float(x) for x in self.items]  # type: ignore[arg-type]
        return [float(value_fn(x)) for x in self.items]


@dataclass
class WeightedSample(Generic[T]):
    """All strata sampled within one time interval (the pair *sample, W*).

    This is what ``OASRS(items, sampleSize)`` in Algorithm 2/3 returns: the
    union of per-stratum samples together with their weights, ready for an
    approximate linear query (`repro.core.query`) and error estimation
    (`repro.core.error`).
    """

    strata: Dict[Key, StratumSample[T]] = field(default_factory=dict)

    def add(self, stratum: StratumSample[T]) -> None:
        if stratum.key in self.strata:
            raise KeyError(f"stratum {stratum.key!r} already present")
        self.strata[stratum.key] = stratum

    def __len__(self) -> int:
        return len(self.strata)

    def __iter__(self):
        return iter(self.strata.values())

    def __contains__(self, key: Key) -> bool:
        return key in self.strata

    def __getitem__(self, key: Key) -> StratumSample[T]:
        return self.strata[key]

    @property
    def keys(self) -> List[Key]:
        return list(self.strata.keys())

    @property
    def total_items(self) -> int:
        """Total sampled items across strata (Σ Y_i)."""
        return sum(s.sample_size for s in self)

    @property
    def total_count(self) -> int:
        """Total received items across strata (Σ C_i)."""
        return sum(s.count for s in self)

    @property
    def sampling_fraction(self) -> float:
        """Achieved fraction Σ Y_i / Σ C_i (0 when the interval was empty)."""
        total = self.total_count
        if total == 0:
            return 0.0
        return self.total_items / total

    def all_items(self) -> List[T]:
        """Flat list of every sampled item (order: stratum insertion order)."""
        out: List[T] = []
        for stratum in self:
            out.extend(stratum.items)
        return out

    def weighted_items(self) -> List[Tuple[T, float]]:
        """Flat ``(item, weight)`` pairs across all strata."""
        out: List[Tuple[T, float]] = []
        for stratum in self:
            out.extend((item, stratum.weight) for item in stratum.items)
        return out

    def merge(self, other: "WeightedSample[T]") -> "WeightedSample[T]":
        """Merge two interval samples over *disjoint* stratum partitions.

        Used by the distributed execution path (§3.2): worker-local samples
        of the *same* stratum are combined by summing counts and
        concatenating items, then re-deriving the weight from Equation 1.
        """
        merged: WeightedSample[T] = WeightedSample()
        for key in {*self.strata, *other.strata}:
            mine = self.strata.get(key)
            theirs = other.strata.get(key)
            if mine is None:
                merged.add(theirs)  # type: ignore[arg-type]
            elif theirs is None:
                merged.add(mine)
            else:
                items = mine.items + theirs.items
                count = mine.count + theirs.count
                weight = stratum_weight(count, len(items))
                merged.add(StratumSample(key, items, count, weight))
        return merged

    def scaled_total(self, value_fn=None) -> float:
        """Convenience: the weighted SUM estimate (Equations 2–3)."""
        total = 0.0
        for stratum in self:
            total += math.fsum(stratum.values(value_fn)) * stratum.weight
        return total


def combine_worker_samples(
    samples: Sequence[WeightedSample[T]],
) -> WeightedSample[T]:
    """Fold worker-local samples into one, re-deriving weights per stratum."""
    if not samples:
        return WeightedSample()
    merged = samples[0]
    for sample in samples[1:]:
        merged = merged.merge(sample)
    return merged


__all__.append("combine_worker_samples")
