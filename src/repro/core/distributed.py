"""Distributed OASRS execution (§3.2, "Distributed execution").

OASRS parallelises without synchronization: a sub-stream handled by ``w``
workers is split so each worker keeps a *local* reservoir of capacity
``⌈N_i / w⌉`` plus a local counter.  At interval close, the coordinator
concatenates the local reservoirs and sums the local counters per stratum,
then re-derives the Equation-1 weight — no barrier, no shuffle, just one
O(sample-size) merge.

``DistributedOASRS`` models this: it owns ``w`` `OASRSSampler` instances and
routes items to workers (round-robin by default, mirroring a partitioned
Kafka topic; a custom ``route_fn`` can model any partitioner).  The merge
uses `repro.core.strata.combine_worker_samples`, which the tests verify is
statistically indistinguishable from a single global reservoir.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Generic, Iterable, List, Optional, TypeVar

from .oasrs import AllocationPolicy, FixedPerStratum, KeyFn, OASRSSampler
from .strata import WeightedSample, combine_worker_samples

T = TypeVar("T")

__all__ = ["DistributedOASRS"]


class _ScaledPolicy(AllocationPolicy):
    """Wrap a policy so each worker gets a 1/w share of every reservoir."""

    def __init__(self, inner: AllocationPolicy, workers: int) -> None:
        self._inner = inner
        self._workers = workers

    def capacity_for(self, key, known_strata: int) -> int:
        full = self._inner.capacity_for(key, known_strata)
        return max(1, math.ceil(full / self._workers))


class DistributedOASRS(Generic[T]):
    """OASRS spread over ``workers`` synchronization-free workers.

    Parameters
    ----------
    workers:
        Number of simulated worker nodes.
    policy:
        The *global* allocation policy; each worker runs a 1/w-scaled copy.
    key_fn:
        Stratum key function, shared by all workers.
    rng:
        Seed source; each worker derives an independent child generator so
        runs are reproducible yet workers are decorrelated.
    route_fn:
        Optional ``(item, index) -> worker_id`` partitioner.  Defaults to
        round-robin on the arrival index.
    """

    def __init__(
        self,
        workers: int,
        policy: AllocationPolicy,
        key_fn: KeyFn,
        rng: Optional[random.Random] = None,
        route_fn: Optional[Callable[[T, int], int]] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        base = rng if rng is not None else random.Random()
        self._samplers: List[OASRSSampler[T]] = [
            OASRSSampler(
                _ScaledPolicy(policy, workers),
                key_fn=key_fn,
                rng=random.Random(base.getrandbits(64)),
            )
            for _ in range(workers)
        ]
        self._route_fn = route_fn
        self._index = 0

    def offer(self, item: T) -> int:
        """Route one item to a worker; return the worker id used."""
        if self._route_fn is not None:
            worker = self._route_fn(item, self._index) % self.workers
        else:
            worker = self._index % self.workers
        self._index += 1
        self._samplers[worker].offer(item)
        return worker

    def offer_many(self, items: Iterable[T]) -> None:
        for item in items:
            self.offer(item)

    def close_interval(self) -> WeightedSample[T]:
        """Merge worker-local samples; the only cross-worker step, barrier-free.

        Each worker's interval is closed independently; the coordinator
        merge re-derives weights from the summed counters (Equation 1 is
        stable under this merge because counters add and reservoirs
        concatenate).
        """
        locals_ = [sampler.close_interval() for sampler in self._samplers]
        self._index = 0
        return combine_worker_samples(locals_)

    @classmethod
    def with_fixed_reservoirs(
        cls,
        workers: int,
        per_stratum_capacity: int,
        key_fn: KeyFn,
        rng: Optional[random.Random] = None,
    ) -> "DistributedOASRS[T]":
        """Convenience constructor for the paper's fixed-size configuration."""
        return cls(
            workers=workers,
            policy=FixedPerStratum(per_stratum_capacity),
            key_fn=key_fn,
            rng=rng,
        )
