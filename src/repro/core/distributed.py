"""Distributed OASRS execution (§3.2) — a persistent multi-process executor.

This module is no longer only a simulation.  It provides two levels of the
paper's synchronization-free distribution scheme, in which a sub-stream
handled by ``w`` workers is split so each worker keeps a *local* reservoir
of capacity ``⌈N_i / w⌉`` plus a local counter, and at interval close the
coordinator concatenates the local reservoirs, sums the local counters per
stratum, and re-derives the Equation-1 weight — no barrier, no shuffle,
just one O(sample-size) merge:

* `ShardedExecutor` — **real parallel execution**: spawns ``workers``
  operating-system processes *once per run* (fork start method, so
  closure-based key functions and the pinned stream reach the children
  without pickling), keeps them alive across intervals, and drives them
  with small per-interval control messages.  Chunk transport is zero-copy
  where the items allow it: ``(key, float)`` records travel as NumPy
  ``(int32 code, float64 value)`` arrays through reusable per-worker
  `multiprocessing.shared_memory` buffers, and drivers that hold the
  whole timestamped stream pin it before the pool spawns so an interval
  is described by a ``[lo, hi)`` index span alone — the forked workers
  slice their shard out of the inherited stream themselves.  Only budget
  re-targets (the policy snapshot in each interval message),
  fault-injection reroutes, and the merged per-shard sample payloads
  cross the process boundary as messages.  This is the executor behind
  ``SystemConfig(parallelism=N)``.
* `DistributedOASRS` — the original in-process *model* of the same scheme
  (w samplers, routed items, one merge), kept for the statistical ablations
  and for tests that need deterministic single-process routing.

Both merge through `repro.core.strata.combine_worker_samples`, which the
tests verify is statistically indistinguishable from a single global
reservoir.

Determinism contract: the coordinator draws one seed per *configured*
worker per interval and each live worker rebuilds its shard sampler from
its seed, so a pooled run, the in-process fallback (``REPRO_NO_MP``, no
fork support, or a mid-run pool failure), and the historical
fork-per-interval executor all produce bitwise-identical samples.  When
the pool degrades, the reason is recorded in ``fallback_reason`` and
surfaced as ``SystemReport.parallel_fallback`` instead of being swallowed.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
from multiprocessing import shared_memory
from time import perf_counter
from typing import (
    Callable,
    Generic,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..obs import NULL_METRICS
from ._vector import np as _np
from .oasrs import AllocationPolicy, FixedPerStratum, KeyFn, OASRSSampler
from .records import ColumnSlice, item_key
from .recovery import FaultSchedule, RecoveryEvent, restore_attrs, snapshot_attrs
from .strata import StratumSample, WeightedSample, combine_worker_samples, stratum_weight

T = TypeVar("T")

__all__ = ["DistributedOASRS", "ShardedExecutor", "ShardedIntervalSampler"]


class _ScaledPolicy(AllocationPolicy):
    """Wrap a policy so each worker gets a 1/w share of every reservoir."""

    def __init__(self, inner: AllocationPolicy, workers: int) -> None:
        self._inner = inner
        self._workers = workers

    def capacity_for(self, key, known_strata: int) -> int:
        full = self._inner.capacity_for(key, known_strata)
        return max(1, math.ceil(full / self._workers))


def _run_shard(
    shard: Sequence[T],
    policy: AllocationPolicy,
    key_fn: KeyFn,
    n_live: int,
    seed: int,
    chunk_size: int,
) -> List[Tuple[object, List[object], int]]:
    """Sample one shard for one interval; return a picklable payload.

    The sampler is rebuilt from ``seed`` every interval — that is what
    keeps pooled, in-process, and resumed executions bitwise identical:
    no RNG state survives inside a worker, only in the coordinator.
    """
    sampler: OASRSSampler = OASRSSampler(
        _ScaledPolicy(policy, n_live), key_fn=key_fn, rng=random.Random(seed)
    )
    for start in range(0, len(shard), chunk_size):
        sampler.process_chunk(shard[start : start + chunk_size])
    sample = sampler.close_interval()
    return [(s.key, list(s.items), s.count) for s in sample]


# ---------------------------------------------------------------------------
# Shared-memory chunk transport
# ---------------------------------------------------------------------------


class _ChunkCodec:
    """Encode ``(hashable, float)`` records as (int32 codes, float64 values).

    The coordinator interns stratum keys into a grow-only table; only the
    codes cross the process boundary (through shared memory), plus the
    table *extension* each worker has not seen yet in its interval
    message.  Records that are not plain two-tuples with float payloads
    fall back to pickled-list transport — correctness never depends on
    the codec, only throughput does.
    """

    __slots__ = ("key_list", "key_code", "_translations")

    def __init__(self) -> None:
        self.key_list: List[object] = []
        self.key_code: dict = {}
        #: Per-key-table translation arrays (batch code -> codec code),
        #: keyed by table identity with the table itself kept referenced.
        self._translations: dict = {}

    def _translate(self, key_table: List[object]):
        """Batch-code → codec-code translation array for one key table.

        A `repro.core.records.RecordBatch` interned its keys already; a
        column chunk therefore re-encodes as one fancy-indexed gather
        instead of a per-item hash loop.  Tables only grow, so a cached
        translation is refreshed when the table has new entries.
        """
        entry = self._translations.get(id(key_table))
        if entry is not None and len(entry[1]) >= len(key_table):
            return entry[1]
        key_code, key_list = self.key_code, self.key_list
        trans = _np.empty(len(key_table), dtype=_np.int32)
        for batch_code, key in enumerate(key_table):
            code = key_code.get(key)
            if code is None:
                code = len(key_list)
                key_code[key] = code
                key_list.append(key)
            trans[batch_code] = code
        self._translations[id(key_table)] = (key_table, trans)
        return trans

    def encode(self, chunks: Sequence[Sequence[T]], total: int):
        """Return ``(codes, values)`` arrays over the concatenated chunks,
        or None when any record does not fit the codec.

        Column chunks (`repro.core.records.ColumnSlice`) hand their arrays
        over without touching a single item: the chunk's interned codes are
        gathered through the cached table translation and its value column
        is copied wholesale — zero-conversion transport.
        """
        if _np is None:
            return None
        codes = _np.empty(total, dtype=_np.int32)
        values = _np.empty(total, dtype=_np.float64)
        key_code, key_list = self.key_code, self.key_list
        pos = 0
        for chunk in chunks:
            n = len(chunk)
            if n == 0:
                continue
            chunk_codes = getattr(chunk, "codes", None)
            if chunk_codes is not None:
                trans = self._translate(chunk.key_table)
                codes[pos : pos + n] = trans[chunk_codes]
                values[pos : pos + n] = chunk.values
                pos += n
                continue
            for item in chunk:
                if (
                    type(item) is not tuple
                    or len(item) != 2
                    or type(item[1]) is not float
                ):
                    return None
            ks, vs = zip(*chunk)
            try:
                for k in ks:
                    if k not in key_code:
                        key_code[k] = len(key_list)
                        key_list.append(k)
                codes[pos : pos + n] = _np.fromiter(
                    map(key_code.__getitem__, ks), dtype=_np.int32, count=n
                )
            except TypeError:  # unhashable key
                return None
            values[pos : pos + n] = vs
            pos += n
        return codes, values

    @staticmethod
    def decode(key_list: List[object], codes, values) -> List[Tuple[object, float]]:
        """Rebuild the record list a shard sampler consumes (worker side)."""
        return list(zip(map(key_list.__getitem__, codes.tolist()), values.tolist()))


class _ShmChannel:
    """One reusable coordinator→worker shared-memory buffer.

    Grows (with headroom) when an interval outsizes it; growth allocates a
    fresh segment under a new name, which the worker detects and
    re-attaches to.  Layout: ``n`` int32 codes at offset 0, ``n`` float64
    values at the next 8-byte boundary.
    """

    __slots__ = ("shm", "_grow_counter")

    def __init__(self, grow_counter=None) -> None:
        self.shm: Optional[shared_memory.SharedMemory] = None
        #: Counts *re*-allocations (an interval outsizing a live segment),
        #: not the initial allocation — the cost worth watching is churn.
        self._grow_counter = grow_counter

    def write(self, codes, values) -> Tuple[str, int]:
        n = int(codes.shape[0])
        offset = (4 * n + 7) & ~7
        need = offset + 8 * n
        shm = self.shm
        if shm is None or shm.size < need:
            if shm is not None and self._grow_counter is not None:
                self._grow_counter.inc()
            self.close()
            shm = shared_memory.SharedMemory(
                create=True, size=max(4096, need + need // 2)
            )
            self.shm = shm
        _np.ndarray(n, dtype=_np.int32, buffer=shm.buf)[:] = codes
        _np.ndarray(n, dtype=_np.float64, buffer=shm.buf, offset=offset)[:] = values
        return shm.name, n

    def close(self) -> None:
        if self.shm is not None:
            try:
                self.shm.close()
                self.shm.unlink()
            except (FileNotFoundError, OSError):
                pass
            self.shm = None


# ---------------------------------------------------------------------------
# The persistent worker pool
# ---------------------------------------------------------------------------


def _pool_worker_main(conn, policy, key_fn, chunk_size, source) -> None:
    """Long-lived shard worker: serve one interval per control message.

    Runs in a forked child, so ``policy`` (a copy-on-write snapshot),
    ``key_fn`` (closures included), and ``source`` (the pinned timestamped
    stream, when the driver pinned one before the pool spawned) arrive by
    memory inheritance, never by pickle.  Each ``interval`` message carries
    the seed, the live-worker count, the coordinator policy's attribute
    snapshot (the budget re-target channel), any new key-table entries,
    and a transport descriptor; the reply is the shard's
    ``(key, items, count)`` sample payload plus the worker's locally
    accumulated ``(items_seen, items_kept, shard_seconds)`` stats — the
    telemetry channel for costs the coordinator cannot observe from
    outside the process.
    """
    key_list: List[object] = []
    shm: Optional[shared_memory.SharedMemory] = None
    shm_name: Optional[str] = None
    # With the canonical key projection the shard sampler consumes column
    # views directly (its columnar kernel is bitwise-identical to per-item
    # grouping), so shm arrays and pinned column batches are never expanded
    # into per-item tuples.  Safe because the worker finishes its interval
    # before the coordinator rewrites the channel.
    columnar_ok = _np is not None and key_fn is item_key
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] != "interval":
                break  # "stop"
            _cmd, seed, n_live, policy_state, new_keys, transport = message
            if new_keys:
                key_list.extend(new_keys)
            restore_attrs(policy, policy_state)
            kind = transport[0]
            if kind == "span":
                _k, lo, hi, slot = transport
                if columnar_ok and getattr(source, "has_columns", False):
                    # Strided zero-copy view over the fork-inherited columns.
                    shard = source.item_slice(lo, hi)[slot::n_live]
                else:
                    shard = [item for _ts, item in source[lo:hi][slot::n_live]]
            elif kind == "shm":
                _k, name, n = transport
                if name != shm_name:
                    if shm is not None:
                        shm.close()
                    shm = shared_memory.SharedMemory(name=name)
                    shm_name = name
                codes = _np.ndarray(n, dtype=_np.int32, buffer=shm.buf)
                offset = (4 * n + 7) & ~7
                values = _np.ndarray(
                    n, dtype=_np.float64, buffer=shm.buf, offset=offset
                )
                if columnar_ok:
                    shard = ColumnSlice(codes, values, key_list)
                else:
                    shard = _ChunkCodec.decode(key_list, codes, values)
            else:  # "items": pickled shard (fault reroutes, exotic records)
                shard = transport[1]
            started = perf_counter()
            payload = _run_shard(shard, policy, key_fn, n_live, seed, chunk_size)
            kept = sum(len(items) for _key, items, _count in payload)
            conn.send((payload, (len(shard), kept, perf_counter() - started)))
    except KeyboardInterrupt:
        pass
    finally:
        if shm is not None:
            shm.close()
        try:
            conn.close()
        except OSError:
            pass


class _PoolWorker:
    """Coordinator-side handle for one live worker process."""

    __slots__ = ("process", "conn", "channel", "keys_sent")

    def __init__(self, process, conn, grow_counter=None) -> None:
        self.process = process
        self.conn = conn
        self.channel = _ShmChannel(grow_counter)
        #: Key-table prefix already shipped to this worker.
        self.keys_sent = 0


class ShardedExecutor(Generic[T]):
    """Real multi-core OASRS: a persistent process per shard, one merge.

    The worker pool spawns lazily on the first parallel interval and
    stays up for the whole run — no per-interval ``Pool`` construction.
    Each interval the coordinator draws the shard seeds, snapshots the
    allocation policy (so budget re-targets reach workers without their
    ever re-reading shared state), describes the shard transport (index
    span over the pinned stream, shared-memory arrays, or a pickled list),
    and merges the returned shard samples by summing counters and
    re-deriving Equation-1 weights — the paper's synchronization-free
    distributed execution, on actual cores.

    Adaptive policies stay adaptive: after each merge the *coordinator's*
    policy observes the merged per-stratum counters, and the next
    interval's messages carry the rebalanced capacities.

    Falls back to in-process execution — bitwise identical, see the module
    docstring — when ``workers == 1``, the platform lacks fork,
    ``REPRO_NO_MP`` is set, or the pool fails mid-run; the reason is
    recorded in ``fallback_reason``.  ``close`` drains the pool (drivers
    call it when the run reports); ``restore`` tears the pool down so a
    resumed run re-spawns workers against the restored live set.

    Example
    -------
    >>> ex = ShardedExecutor(4, FixedPerStratum(8), key_fn=lambda it: it[0],
    ...                      seed=1)
    >>> sample = ex.run([("a", i) for i in range(1000)])
    >>> sample["a"].count, sample["a"].sample_size
    (1000, 8)
    >>> ex.close()
    """

    def __init__(
        self,
        workers: int,
        policy: AllocationPolicy,
        key_fn: KeyFn,
        seed: Optional[int] = None,
        chunk_size: int = 1024,
        route_fn: Optional[Callable[[T, int], int]] = None,
        faults: Optional[FaultSchedule] = None,
        metrics=None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self._policy = policy
        self._key_fn = key_fn
        self._rng = random.Random(seed)
        self._route_fn = route_fn
        self._faults = faults
        self._live: List[int] = list(range(workers))
        self._intervals_run = 0
        self._recovery_log: List[RecoveryEvent] = []
        self.last_run_parallel = False
        #: Why parallel execution degraded to in-process, or None while the
        #: pool is healthy.  First cause wins; never cleared mid-run.
        self.fallback_reason: Optional[str] = None
        self._pool: Optional[dict] = None
        self._codec = _ChunkCodec()
        self._source: Optional[Sequence] = None
        self._pool_source: Optional[Sequence] = None
        # Bound once here so the interval loop never does a registry
        # lookup; with metrics=None every instrument is a shared no-op.
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_spawned = metrics.counter("pool.workers_spawned")
        self._m_snapshots = metrics.counter("pool.policy_snapshots")
        self._m_failures = metrics.counter("pool.failures")
        self._m_worker_items = metrics.counter("pool.worker_items")
        self._m_worker_kept = metrics.counter("pool.worker_kept")
        self._m_shard_seconds = metrics.histogram("pool.shard_seconds")
        self._m_span = metrics.counter("transport.span_intervals")
        self._m_shm = metrics.counter("transport.shm_intervals")
        self._m_pickled = metrics.counter("transport.pickle_intervals")
        self._m_inprocess = metrics.counter("transport.inprocess_intervals")
        self._m_codec_fallbacks = metrics.counter("transport.codec_fallbacks")
        self._m_shm_grows = metrics.counter("transport.shm_grows")

    # -- availability ------------------------------------------------------

    @staticmethod
    def _parallel_blocker() -> Optional[str]:
        if os.environ.get("REPRO_NO_MP"):
            return "REPRO_NO_MP forces in-process execution"
        if "fork" not in multiprocessing.get_all_start_methods():
            return "platform lacks the fork start method"
        return None

    @staticmethod
    def _fork_available() -> bool:
        return ShardedExecutor._parallel_blocker() is None

    def _note_fallback(self, reason: str) -> None:
        if self.fallback_reason is None:
            self.fallback_reason = reason

    @property
    def live_workers(self) -> List[int]:
        """Worker ids still alive (permanent kills remove entries)."""
        return list(self._live)

    @property
    def pooled(self) -> bool:
        """True while the persistent worker pool is spawned."""
        return self._pool is not None

    @property
    def source(self) -> Optional[Sequence]:
        """The pinned ``(timestamp, item)`` stream, if any."""
        return self._source

    def drain_recovery_events(self) -> List[RecoveryEvent]:
        """Return and clear the worker-loss events since the last drain."""
        events, self._recovery_log = self._recovery_log, []
        return events

    # -- checkpoint / recovery --------------------------------------------

    def state(self) -> dict:
        """Plain-data snapshot of the executor's cross-interval state.

        Shard contents are per-interval, and worker samplers are rebuilt
        from coordinator-drawn seeds every interval, so at a pane boundary
        the pool holds no state of its own; what persists across intervals
        — and therefore checkpoints — is the seed RNG, the live-worker
        set, the interval counter the fault schedule indexes, and the
        adaptive policy's attributes.
        """
        return {
            "rng": self._rng.getstate(),
            "live": list(self._live),
            "intervals_run": self._intervals_run,
            "policy": snapshot_attrs(self._policy),
        }

    def restore(self, state: dict) -> None:
        """Restore a `state` snapshot exactly (RNG stream included).

        Tears the worker pool down: the restored live set may not match
        the spawned processes (a resumed run replays kills itself), so the
        next parallel interval re-spawns workers from the restored state.
        """
        self._close_pool()
        self._rng.setstate(state["rng"])
        self._live = list(state["live"])
        self._intervals_run = state["intervals_run"]
        restore_attrs(self._policy, state["policy"])
        self._recovery_log = []

    # -- pool lifecycle ----------------------------------------------------

    def pin_source(self, events: Sequence) -> None:
        """Pin the run's timestamped stream for span-addressed transport.

        Must happen before the pool spawns (the direct driver pins before
        its interval loop) so forked workers inherit the stream and an
        interval message can carry just a ``[lo, hi)`` index span.
        Re-pinning a different stream closes any existing pool.
        """
        if events is self._source:
            return
        if self._pool is not None and self._pool_source is not events:
            self._close_pool()
        self._source = events

    def _ensure_pool(self) -> bool:
        if self._pool is not None:
            return True
        pool: dict = {}
        try:
            ctx = multiprocessing.get_context("fork")
            # Start the shared-memory resource tracker *before* forking:
            # workers attach segments (which registers them on Python < 3.13),
            # and must inherit the coordinator's tracker rather than spawn
            # their own — a child-owned tracker would warn about "leaked"
            # segments the coordinator unlinks perfectly well.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            for worker_id in self._live:
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_pool_worker_main,
                    args=(
                        child_conn,
                        self._policy,
                        self._key_fn,
                        self.chunk_size,
                        self._source,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                pool[worker_id] = _PoolWorker(
                    process, parent_conn, self._m_shm_grows
                )
                self._m_spawned.inc()
        except (OSError, ValueError, RuntimeError) as exc:
            for worker in pool.values():
                self._stop_worker(worker, graceful=False)
            self._note_fallback(
                f"worker pool spawn failed ({type(exc).__name__}: {exc}); "
                "running in-process"
            )
            return False
        self._pool = pool
        self._pool_source = self._source
        return True

    @staticmethod
    def _stop_worker(worker: _PoolWorker, graceful: bool = True) -> None:
        if graceful:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
            worker.process.join(timeout=1.0)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.channel.close()

    def _close_pool(self) -> None:
        pool, self._pool = self._pool, None
        self._pool_source = None
        if not pool:
            return
        for worker in pool.values():
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in pool.values():
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.channel.close()

    def close(self) -> None:
        """Drain the worker pool; idempotent, safe on never-spawned pools."""
        self._close_pool()

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            self._close_pool()
        except Exception:
            pass

    def _retire(self, worker_ids: List[int]) -> None:
        """Remove permanently killed workers; terminate their processes.

        The pool re-widens over the survivors: subsequent intervals
        message only the remaining live workers, whose 1/w capacity scale
        follows the shrunken live count.
        """
        self._live = [w for w in self._live if w not in worker_ids]
        if self._pool is None:
            return
        for worker_id in worker_ids:
            worker = self._pool.pop(worker_id, None)
            if worker is not None:
                self._stop_worker(worker, graceful=False)

    # -- partitioning and fault injection ---------------------------------

    def _partition(self, items: Sequence[T], shard_count: int) -> List[List[T]]:
        if self._route_fn is None:
            # Strided slices == round-robin, without a per-item Python loop.
            return [list(items[w::shard_count]) for w in range(shard_count)]
        shards: List[List[T]] = [[] for _ in range(shard_count)]
        for index, item in enumerate(items):
            shards[self._route_fn(item, index) % shard_count].append(item)
        return shards

    def _inject_faults(
        self, interval: int, live: List[int], shards: List[List[T]]
    ) -> List[int]:
        """Apply this interval's scheduled kills to the partitioned shards.

        Discard-and-rewiden (§3.2): the doomed worker's already-processed
        prefix is lost outright — its reservoir and counter die with it —
        and the unprocessed suffix is re-routed round-robin to surviving
        shards.  Counters stay exact for every item that survived, so the
        merged Equation-1 weights remain unbiased over the surviving
        sub-population; the pane simply covers fewer items and its CI
        widens.  Returns worker ids to remove from the live set after the
        interval (permanent kills).
        """
        kills = self._faults.kills_for(interval) if self._faults is not None else []
        if not kills:
            return []
        killed_slots: set = set()
        remove: List[int] = []
        for kill in kills:
            try:
                slot = live.index(kill.worker)
            except ValueError:
                continue  # already dead (or never existed): nothing to kill
            if slot in killed_slots:
                continue
            killed_slots.add(slot)
            doomed = shards[slot]
            cut = int(len(doomed) * kill.after_fraction)
            lost, rerouted = doomed[:cut], doomed[cut:]
            shards[slot] = []
            targets = [s for s in range(len(shards)) if s not in killed_slots]
            if targets:
                for offset, item in enumerate(rerouted):
                    shards[targets[offset % len(targets)]].append(item)
            else:
                # No survivor to take the re-route: the whole shard is lost.
                lost, rerouted = doomed, []
            self._recovery_log.append(
                RecoveryEvent(
                    interval=interval,
                    worker=kill.worker,
                    items_lost=len(lost),
                    items_rerouted=len(rerouted),
                    permanent=kill.permanent,
                )
            )
            if kill.permanent:
                remove.append(kill.worker)
        return remove

    # -- interval execution ------------------------------------------------

    def run(self, items: Sequence[T]) -> WeightedSample[T]:
        """Sample one interval's items across all live shards and merge.

        The only cross-worker step is the final merge (counters add,
        reservoirs concatenate, weights re-derive) — there is no barrier or
        shuffle during the interval itself.
        """
        if not hasattr(items, "__len__"):
            items = list(items)
        return self._run_interval(flat=items)

    def run_chunks(self, chunks: Sequence[Sequence[T]]) -> WeightedSample[T]:
        """Sample one interval delivered as intact chunks (no flatten copy).

        The shared-memory codec encodes chunk by chunk straight into the
        transport arrays; only transports that need a flat item list
        (fault reroutes, non-codec records, in-process fallback) pay the
        concatenation.
        """
        if not hasattr(chunks, "__len__"):
            chunks = list(chunks)
        return self._run_interval(chunks=chunks)

    def run_span(self, lo: int, hi: int) -> WeightedSample[T]:
        """Sample the pinned stream's ``[lo, hi)`` span as one interval.

        The cheapest transport: pooled workers slice their shard out of
        the fork-inherited stream themselves, so the interval message is a
        few integers regardless of how many items the span covers.
        """
        if self._source is None:
            raise RuntimeError("run_span requires a pin_source-pinned stream")
        return self._run_interval(span=(lo, hi))

    def _materialize(self, flat, chunks, span) -> Sequence[T]:
        if flat is not None:
            return flat
        if chunks is not None:
            if len(chunks) == 1:
                only = chunks[0]
                return only if isinstance(only, (list, tuple)) else list(only)
            return [item for chunk in chunks for item in chunk]
        lo, hi = span
        return [item for _ts, item in self._source[lo:hi]]

    def _run_interval(
        self, flat=None, chunks=None, span=None
    ) -> WeightedSample[T]:
        interval = self._intervals_run
        self._intervals_run += 1
        self.last_run_parallel = False
        if flat is not None:
            total = len(flat)
        elif chunks is not None:
            total = sum(len(chunk) for chunk in chunks)
        else:
            total = span[1] - span[0]
        if total == 0:
            # Nothing to shard — do not wake the pool for an empty merge.
            return WeightedSample()
        live = self._live
        if not live:
            raise RuntimeError("all shard workers have failed")
        n_live = len(live)
        # One seed per *configured* worker, drawn unconditionally, so the
        # shard RNG sequence is independent of failure history and the
        # no-fault path is bitwise identical to a fault-free executor.
        all_seeds = [self._rng.getrandbits(64) for _ in range(self.workers)]
        seeds = [all_seeds[worker_id] for worker_id in live]
        has_kills = bool(
            self._faults is not None and self._faults.kills_for(interval)
        )
        shards = None
        remove: List[int] = []
        if has_kills or self._route_fn is not None:
            shards = self._partition(
                self._materialize(flat, chunks, span), n_live
            )
            remove = self._inject_faults(interval, live, shards)
        use_pool = False
        if n_live > 1:
            blocker = self._parallel_blocker()
            if blocker is None:
                use_pool = self._ensure_pool()
            else:
                self._note_fallback(blocker)
        elif self.workers > 1:
            self._note_fallback(
                f"only {n_live} of {self.workers} configured workers alive"
            )
        payloads = None
        if use_pool:
            try:
                payloads = self._run_pooled(
                    live, seeds, shards, span, chunks, flat, total
                )
                self.last_run_parallel = True
            except (OSError, EOFError, ValueError, RuntimeError) as exc:
                # A worker died or transport failed mid-interval.  Nothing
                # is lost: shard samplers are per-interval, so recomputing
                # in-process with the same seeds reproduces the interval
                # bitwise.  Record why, then respawn on a later interval.
                self._note_fallback(
                    f"worker pool failed ({type(exc).__name__}: {exc}); "
                    "interval completed in-process"
                )
                self._m_failures.inc()
                self._close_pool()
                payloads = None
        if payloads is None:
            self._m_inprocess.inc()
            if shards is None:
                shards = self._partition(
                    self._materialize(flat, chunks, span), n_live
                )
            payloads = [
                _run_shard(
                    shards[slot],
                    self._policy,
                    self._key_fn,
                    n_live,
                    seeds[slot],
                    self.chunk_size,
                )
                for slot in range(n_live)
            ]
        merged = combine_worker_samples([self._decode(p) for p in payloads])
        observe = getattr(self._policy, "observe", None)
        if observe is not None:
            observe({s.key: s.count for s in merged})
        if remove:
            self._retire(remove)
        return merged

    def _run_pooled(self, live, seeds, shards, span, chunks, flat, total):
        """One pooled interval: send live workers their transport, collect.

        Lockstep request-response over one pipe per worker; workers block
        in ``recv`` between intervals, so an idle pool costs nothing.
        """
        pool = self._pool
        n_live = len(live)
        if shards is not None:
            transports = [("items", shard) for shard in shards]
            self._m_pickled.inc()
        elif span is not None and self._pool_source is self._source:
            lo, hi = span
            transports = [("span", lo, hi, slot) for slot in range(n_live)]
            self._m_span.inc()
        else:
            if chunks is None:
                chunks = (self._materialize(flat, None, span),)
            encoded = self._codec.encode(chunks, total)
            if encoded is None:
                shards = self._partition(
                    self._materialize(flat, chunks, None), n_live
                )
                transports = [("items", shard) for shard in shards]
                self._m_pickled.inc()
                self._m_codec_fallbacks.inc()
            else:
                codes, values = encoded
                transports = [
                    ("shm", *pool[worker_id].channel.write(
                        codes[slot::n_live], values[slot::n_live]
                    ))
                    for slot, worker_id in enumerate(live)
                ]
                self._m_shm.inc()
        policy_state = snapshot_attrs(self._policy)
        key_list = self._codec.key_list
        for slot, worker_id in enumerate(live):
            worker = pool[worker_id]
            new_keys = key_list[worker.keys_sent :]
            worker.keys_sent = len(key_list)
            worker.conn.send(
                ("interval", seeds[slot], n_live, policy_state, new_keys,
                 transports[slot])
            )
        self._m_snapshots.inc(n_live)
        payloads = []
        for worker_id in live:
            payload, (items_seen, items_kept, seconds) = (
                pool[worker_id].conn.recv()
            )
            self._m_worker_items.inc(items_seen)
            self._m_worker_kept.inc(items_kept)
            self._m_shard_seconds.observe(seconds)
            payloads.append(payload)
        return payloads

    @staticmethod
    def _decode(payload: List[Tuple[object, List[object], int]]) -> WeightedSample[T]:
        sample: WeightedSample[T] = WeightedSample()
        for key, kept, count in payload:
            sample.add(
                StratumSample(key, tuple(kept), count, stratum_weight(count, len(kept)))
            )
        return sample


class ShardedIntervalSampler(Generic[T]):
    """Adapt a `ShardedExecutor` to the interval-sampler duck type.

    The pipelined sampling operator and the direct engine's interval loop
    drive samplers through ``offer`` / ``process_chunk`` /
    ``close_interval``.  This adapter buffers the interval's chunks
    *intact* — ``process_chunk`` stores the chunk reference instead of
    re-buffering items one by one, so producers that already deliver
    fresh chunk lists (the chunked dataflow, RDD partitions) reach the
    executor without a per-item copy — and fans the buffer out across the
    worker pool in one ``run_chunks`` at interval close.  Drivers that
    know the interval as a span of the pinned stream skip buffering
    entirely through ``run_interval_span``.

    Example
    -------
    >>> from repro.core.oasrs import FixedPerStratum
    >>> sharded = ShardedIntervalSampler(
    ...     ShardedExecutor(2, FixedPerStratum(4), key_fn=lambda it: it[0], seed=1))
    >>> sharded.process_chunk([("a", i) for i in range(100)])
    >>> sharded.close_interval()["a"].count
    100
    >>> sharded.close()
    """

    def __init__(self, executor: ShardedExecutor[T]) -> None:
        self._executor = executor
        self._chunks: List[Sequence[T]] = []
        self._tail: Optional[List[T]] = None

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why the executor degraded to in-process execution, if it did."""
        return self._executor.fallback_reason

    def state(self) -> dict:
        """Snapshot the executor's cross-interval state plus the buffer.

        The buffer is flattened so checkpoints stay independent of how the
        producer chunked the in-flight interval.
        """
        return {
            "executor": self._executor.state(),
            "buffer": [item for chunk in self._chunks for item in chunk],
        }

    def restore(self, state: dict) -> None:
        self._executor.restore(state["executor"])
        buffered = list(state["buffer"])
        self._chunks = [buffered] if buffered else []
        self._tail = None

    def drain_recovery_events(self):
        return self._executor.drain_recovery_events()

    def pin_source(self, events) -> None:
        """Pin the stream on the executor (span-addressed transport)."""
        self._executor.pin_source(events)

    def close(self) -> None:
        """Drain the executor's worker pool."""
        self._executor.close()

    def offer(self, item: T) -> None:
        if self._tail is None:
            self._tail = []
            self._chunks.append(self._tail)
        self._tail.append(item)

    def offer_many(self, items: Iterable[T]) -> None:
        if self._tail is None:
            self._tail = []
            self._chunks.append(self._tail)
        self._tail.extend(items)

    def process_chunk(self, items: Sequence[T]) -> None:
        """Buffer one chunk intact (by reference — hand over fresh chunks)."""
        self._tail = None
        self._chunks.append(items)

    def close_interval(self) -> WeightedSample[T]:
        chunks, self._chunks, self._tail = self._chunks, [], None
        return self._executor.run_chunks(chunks)

    def run_interval(self, items: Sequence[T]) -> WeightedSample[T]:
        """Sample one whole interval in a single executor call.

        Drivers that already hold the interval's items as a list use this
        to skip the offer/close buffering — no per-item Python call, no
        buffer copy — exactly the `ShardedExecutor.run` hot path.  Any
        previously buffered chunks are prepended so mixed use stays
        correct.
        """
        if self._chunks:
            chunks, self._chunks, self._tail = self._chunks, [], None
            chunks.append(items)
            return self._executor.run_chunks(chunks)
        return self._executor.run(items)

    def run_interval_span(self, lo: int, hi: int) -> WeightedSample[T]:
        """Sample the pinned stream's ``[lo, hi)`` span as one interval.

        The direct driver's fast path: with the stream pinned before the
        pool spawned, the interval crosses the process boundary as two
        integers.  Falls back to materialized execution when chunks are
        already buffered (mixed use).
        """
        if self._chunks:
            source = self._executor.source
            return self.run_interval([item for _ts, item in source[lo:hi]])
        return self._executor.run_span(lo, hi)


class DistributedOASRS(Generic[T]):
    """In-process model of OASRS over ``workers`` synchronization-free workers.

    For execution on real cores use `ShardedExecutor`; this class keeps all
    samplers in the calling process, which makes routing deterministic and
    cheap to instrument — the configuration the ablation tests rely on.

    Parameters
    ----------
    workers:
        Number of simulated worker nodes.
    policy:
        The *global* allocation policy; each worker runs a 1/w-scaled copy.
    key_fn:
        Stratum key function, shared by all workers.
    rng:
        Seed source; each worker derives an independent child generator so
        runs are reproducible yet workers are decorrelated.
    route_fn:
        Optional ``(item, index) -> worker_id`` partitioner.  Defaults to
        round-robin on the arrival index.
    """

    def __init__(
        self,
        workers: int,
        policy: AllocationPolicy,
        key_fn: KeyFn,
        rng: Optional[random.Random] = None,
        route_fn: Optional[Callable[[T, int], int]] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        base = rng if rng is not None else random.Random()
        self._samplers: List[OASRSSampler[T]] = [
            OASRSSampler(
                _ScaledPolicy(policy, workers),
                key_fn=key_fn,
                rng=random.Random(base.getrandbits(64)),
            )
            for _ in range(workers)
        ]
        self._route_fn = route_fn
        self._index = 0

    def offer(self, item: T) -> int:
        """Route one item to a worker; return the worker id used."""
        if self._route_fn is not None:
            worker = self._route_fn(item, self._index) % self.workers
        else:
            worker = self._index % self.workers
        self._index += 1
        self._samplers[worker].offer(item)
        return worker

    def offer_many(self, items: Iterable[T]) -> None:
        for item in items:
            self.offer(item)

    def close_interval(self) -> WeightedSample[T]:
        """Merge worker-local samples; the only cross-worker step, barrier-free.

        Each worker's interval is closed independently; the coordinator
        merge re-derives weights from the summed counters (Equation 1 is
        stable under this merge because counters add and reservoirs
        concatenate).
        """
        locals_ = [sampler.close_interval() for sampler in self._samplers]
        self._index = 0
        return combine_worker_samples(locals_)

    @classmethod
    def with_fixed_reservoirs(
        cls,
        workers: int,
        per_stratum_capacity: int,
        key_fn: KeyFn,
        rng: Optional[random.Random] = None,
    ) -> "DistributedOASRS[T]":
        """Convenience constructor for the paper's fixed-size configuration."""
        return cls(
            workers=workers,
            policy=FixedPerStratum(per_stratum_capacity),
            key_fn=key_fn,
            rng=rng,
        )
