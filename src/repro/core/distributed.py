"""Distributed OASRS execution (§3.2) — now a real multi-process executor.

This module is no longer only a simulation.  It provides two levels of the
paper's synchronization-free distribution scheme, in which a sub-stream
handled by ``w`` workers is split so each worker keeps a *local* reservoir
of capacity ``⌈N_i / w⌉`` plus a local counter, and at interval close the
coordinator concatenates the local reservoirs, sums the local counters per
stratum, and re-derives the Equation-1 weight — no barrier, no shuffle,
just one O(sample-size) merge:

* `ShardedExecutor` — **real parallel execution**: partitions each
  interval's items across ``workers`` operating-system processes
  (``multiprocessing`` with the fork start method), runs per-shard OASRS
  through the vectorized `OASRSSampler.process_chunk` path in every worker,
  and merges the weighted shard samples in the parent.  This is the
  executor behind ``SystemConfig(parallelism=N)``.
* `DistributedOASRS` — the original in-process *model* of the same scheme
  (w samplers, routed items, one merge), kept for the statistical ablations
  and for tests that need deterministic single-process routing.

Both merge through `repro.core.strata.combine_worker_samples`, which the
tests verify is statistically indistinguishable from a single global
reservoir.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
from typing import Callable, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

from .oasrs import AllocationPolicy, FixedPerStratum, KeyFn, OASRSSampler
from .recovery import FaultSchedule, RecoveryEvent, restore_attrs, snapshot_attrs
from .strata import StratumSample, WeightedSample, combine_worker_samples, stratum_weight

T = TypeVar("T")

__all__ = ["DistributedOASRS", "ShardedExecutor", "ShardedIntervalSampler"]


class _ScaledPolicy(AllocationPolicy):
    """Wrap a policy so each worker gets a 1/w share of every reservoir."""

    def __init__(self, inner: AllocationPolicy, workers: int) -> None:
        self._inner = inner
        self._workers = workers

    def capacity_for(self, key, known_strata: int) -> int:
        full = self._inner.capacity_for(key, known_strata)
        return max(1, math.ceil(full / self._workers))


# State handed to forked shard workers.  The fork start method inherits the
# parent's memory, so shards, policies, and (crucially) closure-based key
# functions reach the children without pickling; only the small per-shard
# result payloads cross the process boundary.
_FORK_STATE: Optional[Tuple] = None


def _shard_payload(index: int) -> List[Tuple[object, List[object], int]]:
    """Run OASRS over one shard; return a picklable (key, items, count) list."""
    shards, policy, key_fn, workers, seeds, chunk_size = _FORK_STATE
    sampler: OASRSSampler = OASRSSampler(
        _ScaledPolicy(policy, workers),
        key_fn=key_fn,
        rng=random.Random(seeds[index]),
    )
    shard = shards[index]
    for start in range(0, len(shard), chunk_size):
        sampler.process_chunk(shard[start : start + chunk_size])
    sample = sampler.close_interval()
    return [(s.key, list(s.items), s.count) for s in sample]


class ShardedExecutor(Generic[T]):
    """Real multi-core OASRS: one process per shard, one weighted merge.

    Each call to ``run`` partitions the interval's items round-robin (or by
    ``route_fn``) into ``workers`` sub-streams, forks a worker process per
    shard, samples every shard with a 1/w-scaled copy of the allocation
    policy through the vectorized chunk path, and merges the shard samples
    by summing counters and re-deriving Equation-1 weights — the paper's
    synchronization-free distributed execution, on actual cores.

    Adaptive policies stay adaptive: after each merge the *parent's* policy
    observes the merged per-stratum counters, so the next interval's forked
    workers inherit the rebalanced capacities.

    Falls back to in-process execution when ``workers == 1``, when the
    platform lacks the fork start method, or when ``REPRO_NO_MP`` is set —
    results are drawn from the same distribution either way.

    Example
    -------
    >>> ex = ShardedExecutor(4, FixedPerStratum(8), key_fn=lambda it: it[0],
    ...                      seed=1)
    >>> sample = ex.run([("a", i) for i in range(1000)])
    >>> sample["a"].count, sample["a"].sample_size
    (1000, 8)
    """

    def __init__(
        self,
        workers: int,
        policy: AllocationPolicy,
        key_fn: KeyFn,
        seed: Optional[int] = None,
        chunk_size: int = 1024,
        route_fn: Optional[Callable[[T, int], int]] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self._policy = policy
        self._key_fn = key_fn
        self._rng = random.Random(seed)
        self._route_fn = route_fn
        self._faults = faults
        self._live: List[int] = list(range(workers))
        self._intervals_run = 0
        self._recovery_log: List[RecoveryEvent] = []
        self.last_run_parallel = False

    @staticmethod
    def _fork_available() -> bool:
        return (
            "fork" in multiprocessing.get_all_start_methods()
            and not os.environ.get("REPRO_NO_MP")
        )

    @property
    def live_workers(self) -> List[int]:
        """Worker ids still alive (permanent kills remove entries)."""
        return list(self._live)

    def drain_recovery_events(self) -> List[RecoveryEvent]:
        """Return and clear the worker-loss events since the last drain."""
        events, self._recovery_log = self._recovery_log, []
        return events

    def state(self) -> dict:
        """Plain-data snapshot of the executor's cross-interval state.

        Shard contents are per-interval (rebuilt from the items each call);
        what persists across intervals — and therefore checkpoints — is the
        seed RNG, the live-worker set, the interval counter the fault
        schedule indexes, and the adaptive policy's attributes.
        """
        return {
            "rng": self._rng.getstate(),
            "live": list(self._live),
            "intervals_run": self._intervals_run,
            "policy": snapshot_attrs(self._policy),
        }

    def restore(self, state: dict) -> None:
        """Restore a `state` snapshot exactly (RNG stream included)."""
        self._rng.setstate(state["rng"])
        self._live = list(state["live"])
        self._intervals_run = state["intervals_run"]
        restore_attrs(self._policy, state["policy"])
        self._recovery_log = []

    def _partition(self, items: Sequence[T], shard_count: int) -> List[List[T]]:
        if self._route_fn is None:
            # Strided slices == round-robin, without a per-item Python loop.
            return [list(items[w::shard_count]) for w in range(shard_count)]
        shards: List[List[T]] = [[] for _ in range(shard_count)]
        for index, item in enumerate(items):
            shards[self._route_fn(item, index) % shard_count].append(item)
        return shards

    def _inject_faults(
        self, interval: int, live: List[int], shards: List[List[T]]
    ) -> List[int]:
        """Apply this interval's scheduled kills to the partitioned shards.

        Discard-and-rewiden (§3.2): the doomed worker's already-processed
        prefix is lost outright — its reservoir and counter die with it —
        and the unprocessed suffix is re-routed round-robin to surviving
        shards.  Counters stay exact for every item that survived, so the
        merged Equation-1 weights remain unbiased over the surviving
        sub-population; the pane simply covers fewer items and its CI
        widens.  Returns worker ids to remove from the live set after the
        interval (permanent kills).
        """
        kills = self._faults.kills_for(interval) if self._faults is not None else []
        if not kills:
            return []
        killed_slots: set = set()
        remove: List[int] = []
        for kill in kills:
            try:
                slot = live.index(kill.worker)
            except ValueError:
                continue  # already dead (or never existed): nothing to kill
            if slot in killed_slots:
                continue
            killed_slots.add(slot)
            doomed = shards[slot]
            cut = int(len(doomed) * kill.after_fraction)
            lost, rerouted = doomed[:cut], doomed[cut:]
            shards[slot] = []
            targets = [s for s in range(len(shards)) if s not in killed_slots]
            if targets:
                for offset, item in enumerate(rerouted):
                    shards[targets[offset % len(targets)]].append(item)
            else:
                # No survivor to take the re-route: the whole shard is lost.
                lost, rerouted = doomed, []
            self._recovery_log.append(
                RecoveryEvent(
                    interval=interval,
                    worker=kill.worker,
                    items_lost=len(lost),
                    items_rerouted=len(rerouted),
                    permanent=kill.permanent,
                )
            )
            if kill.permanent:
                remove.append(kill.worker)
        return remove

    def run(self, items: Sequence[T]) -> WeightedSample[T]:
        """Sample one interval's items across all live shards and merge.

        The only cross-worker step is the final merge (counters add,
        reservoirs concatenate, weights re-derive) — there is no barrier or
        shuffle during the interval itself.
        """
        interval = self._intervals_run
        self._intervals_run += 1
        if not isinstance(items, (list, tuple)):
            items = list(items)
        self.last_run_parallel = False
        if not items:
            # Nothing to shard — do not pay a pool fork for an empty merge.
            return WeightedSample()
        live = self._live
        if not live:
            raise RuntimeError("all shard workers have failed")
        shards = self._partition(items, len(live))
        # One seed per *configured* worker, drawn unconditionally, so the
        # shard RNG sequence is independent of failure history and the
        # no-fault path is bitwise identical to a fault-free executor.
        all_seeds = [self._rng.getrandbits(64) for _ in range(self.workers)]
        seeds = [all_seeds[worker_id] for worker_id in live]
        remove = self._inject_faults(interval, live, shards)
        state = (shards, self._policy, self._key_fn, len(live), seeds, self.chunk_size)
        payloads = None
        if len(live) > 1 and self._fork_available():
            global _FORK_STATE
            _FORK_STATE = state
            try:
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(len(live)) as pool:
                    payloads = pool.map(_shard_payload, range(len(live)))
                self.last_run_parallel = True
            except (OSError, ValueError, RuntimeError):
                payloads = None  # fall back to in-process below
            finally:
                _FORK_STATE = None
        if payloads is None:
            _FORK_STATE = state
            try:
                payloads = [_shard_payload(w) for w in range(len(live))]
            finally:
                _FORK_STATE = None
        merged = combine_worker_samples([self._decode(p) for p in payloads])
        observe = getattr(self._policy, "observe", None)
        if observe is not None:
            observe({s.key: s.count for s in merged})
        if remove:
            self._live = [w for w in self._live if w not in remove]
        return merged

    @staticmethod
    def _decode(payload: List[Tuple[object, List[object], int]]) -> WeightedSample[T]:
        sample: WeightedSample[T] = WeightedSample()
        for key, kept, count in payload:
            sample.add(
                StratumSample(key, tuple(kept), count, stratum_weight(count, len(kept)))
            )
        return sample


class ShardedIntervalSampler(Generic[T]):
    """Adapt a `ShardedExecutor` to the interval-sampler duck type.

    The pipelined sampling operator and the direct engine's interval loop
    drive samplers through ``offer`` / ``process_chunk`` /
    ``close_interval``.  This adapter buffers the interval's items and, at
    interval close, fans the whole buffer out across the executor's worker
    processes in one ``run`` — so ``SystemConfig.parallelism`` applies to
    interval sampling on every engine, not just the direct executor.

    Example
    -------
    >>> from repro.core.oasrs import FixedPerStratum
    >>> sharded = ShardedIntervalSampler(
    ...     ShardedExecutor(2, FixedPerStratum(4), key_fn=lambda it: it[0], seed=1))
    >>> sharded.process_chunk([("a", i) for i in range(100)])
    >>> sharded.close_interval()["a"].count
    100
    """

    def __init__(self, executor: ShardedExecutor[T]) -> None:
        self._executor = executor
        self._buffer: List[T] = []

    def state(self) -> dict:
        """Snapshot the executor's cross-interval state plus the buffer."""
        return {"executor": self._executor.state(), "buffer": list(self._buffer)}

    def restore(self, state: dict) -> None:
        self._executor.restore(state["executor"])
        self._buffer = list(state["buffer"])

    def drain_recovery_events(self):
        return self._executor.drain_recovery_events()

    def offer(self, item: T) -> None:
        self._buffer.append(item)

    def offer_many(self, items: Iterable[T]) -> None:
        self._buffer.extend(items)

    def process_chunk(self, items: Sequence[T]) -> None:
        self._buffer.extend(items)

    def close_interval(self) -> WeightedSample[T]:
        items, self._buffer = self._buffer, []
        return self._executor.run(items)

    def run_interval(self, items: Sequence[T]) -> WeightedSample[T]:
        """Sample one whole interval in a single executor call.

        Drivers that already hold the interval's items as a list (the
        direct engine) use this to skip the offer/close buffering — no
        per-item Python call, no buffer copy — exactly the
        `ShardedExecutor.run` hot path.  Any previously buffered items are
        prepended so mixed use stays correct.
        """
        if self._buffer:
            buffered, self._buffer = self._buffer, []
            buffered.extend(items)
            items = buffered
        return self._executor.run(items)


class DistributedOASRS(Generic[T]):
    """In-process model of OASRS over ``workers`` synchronization-free workers.

    For execution on real cores use `ShardedExecutor`; this class keeps all
    samplers in the calling process, which makes routing deterministic and
    cheap to instrument — the configuration the ablation tests rely on.

    Parameters
    ----------
    workers:
        Number of simulated worker nodes.
    policy:
        The *global* allocation policy; each worker runs a 1/w-scaled copy.
    key_fn:
        Stratum key function, shared by all workers.
    rng:
        Seed source; each worker derives an independent child generator so
        runs are reproducible yet workers are decorrelated.
    route_fn:
        Optional ``(item, index) -> worker_id`` partitioner.  Defaults to
        round-robin on the arrival index.
    """

    def __init__(
        self,
        workers: int,
        policy: AllocationPolicy,
        key_fn: KeyFn,
        rng: Optional[random.Random] = None,
        route_fn: Optional[Callable[[T, int], int]] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        base = rng if rng is not None else random.Random()
        self._samplers: List[OASRSSampler[T]] = [
            OASRSSampler(
                _ScaledPolicy(policy, workers),
                key_fn=key_fn,
                rng=random.Random(base.getrandbits(64)),
            )
            for _ in range(workers)
        ]
        self._route_fn = route_fn
        self._index = 0

    def offer(self, item: T) -> int:
        """Route one item to a worker; return the worker id used."""
        if self._route_fn is not None:
            worker = self._route_fn(item, self._index) % self.workers
        else:
            worker = self._index % self.workers
        self._index += 1
        self._samplers[worker].offer(item)
        return worker

    def offer_many(self, items: Iterable[T]) -> None:
        for item in items:
            self.offer(item)

    def close_interval(self) -> WeightedSample[T]:
        """Merge worker-local samples; the only cross-worker step, barrier-free.

        Each worker's interval is closed independently; the coordinator
        merge re-derives weights from the summed counters (Equation 1 is
        stable under this merge because counters add and reservoirs
        concatenate).
        """
        locals_ = [sampler.close_interval() for sampler in self._samplers]
        self._index = 0
        return combine_worker_samples(locals_)

    @classmethod
    def with_fixed_reservoirs(
        cls,
        workers: int,
        per_stratum_capacity: int,
        key_fn: KeyFn,
        rng: Optional[random.Random] = None,
    ) -> "DistributedOASRS[T]":
        """Convenience constructor for the paper's fixed-size configuration."""
        return cls(
            workers=workers,
            policy=FixedPerStratum(per_stratum_capacity),
            key_fn=key_fn,
            rng=rng,
        )
