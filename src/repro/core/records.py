"""Columnar record batches — the native record format of the pipeline.

The paper's throughput argument (§5, fig4/fig6) is that sampling should be
memory-bandwidth-bound; a hot path that materializes a Python
``(timestamp, (key, value))`` tuple per record between every layer is
bound by the allocator instead.  This module makes the *batch* the unit
every layer speaks:

* `RecordBatch` — a time-ordered event stream held as NumPy columns
  (``ts: float64``, ``key: int32`` interned against a key table,
  ``value: float64``, and an optional broker ``seq: int64``).  It
  subclasses ``list`` of the classic ``(timestamp, item)`` event tuples,
  so every existing consumer — ``bisect`` boundary searches, per-item
  operators, checkpoint replay slicing, ground-truth re-execution — keeps
  working unchanged: per-item iteration *is* the compatibility shim
  (`RecordBatch.iter_items`).  The columns are built lazily on first use
  and cached.
* `ColumnSlice` — a zero-copy view over a ``[lo, hi)`` range of the item
  columns (no timestamps), behaving as a sequence of ``(key, value)``
  items.  Slicing (including strided slicing, which is how round-robin
  sharding partitions work) returns another view; integer indexing and
  iteration materialize genuine Python ``(key, float)`` tuples, so
  anything downstream — reservoir fills, the shared-memory codec's
  ``type(value) is float`` check — sees exactly the objects the per-item
  path would have produced.
* `item_key` / `item_value` — the canonical projections of the classic
  ``(key, value)`` item shape.  Queries default to them
  (`repro.runtime.config.StreamQuery`), and the drivers enable the
  columnar path only when a query's projections *are* these functions
  (identity comparison): any custom projection falls back to the item
  shim, with the reason surfaced as ``SystemReport.columnar_fallback``.

Batches that the columnar codec cannot represent — payloads that are not
plain ``(hashable key, float)`` 2-tuples — still build the timestamp
column when possible and record why the item columns are unavailable in
`RecordBatch.columnar_reason`; the drivers report that reason instead of
silently degrading.

`L2_SLICE` caps the working set of one vectorized sampling call: oversized
inputs are processed in L2-cache-sized column slices inside
`repro.core.reservoir.Reservoir.offer_many` and
`repro.core.oasrs.OASRSSampler.process_chunk`, which is what keeps large
chunk sizes from spilling out of cache (the old chunk=4096 regression).
"""

from __future__ import annotations

from itertools import repeat
from operator import itemgetter
from typing import Hashable, Iterable, List, Optional, Tuple

from ._vector import np as _np

__all__ = [
    "L2_SLICE",
    "item_key",
    "item_value",
    "RecordBatch",
    "ColumnSlice",
]

#: Rows per vectorized sampling call.  8192 rows × (4 B code + 8 B value)
#: ≈ 96 KiB of live columns plus the reservoir's own working set — sized to
#: stay inside a typical per-core L2 cache.  Inputs larger than this are
#: processed slice by slice; chunk sizes at or below it are untouched.
L2_SLICE = 8192


def item_key(item) -> Hashable:
    """Canonical key projection of a classic ``(key, value)`` stream item."""
    return item[0]


def item_value(item) -> float:
    """Canonical value projection of a classic ``(key, value)`` stream item."""
    return item[1]


class ColumnSlice:
    """A zero-copy sequence view over interned ``(key, value)`` columns.

    ``codes``/``values`` are aligned NumPy arrays (``int32``/``float64``);
    ``key_table`` maps a code back to the original key object.  The view is
    a sequence of ``(key, value)`` items:

    * ``view[i]`` materializes one Python ``(key, float)`` tuple,
    * ``view[a:b]`` / ``view[a:b:step]`` return another `ColumnSlice` over
      the (NumPy basic-sliced, still zero-copy) sub-range — strided slicing
      is how round-robin shard partitioning stays a view,
    * iteration materializes Python tuples in one C-level pass.

    The materialized values are genuine Python ``float`` objects (via
    ``ndarray.tolist()`` / ``.item()``), preserving the exact object shapes
    the per-item path produces.
    """

    __slots__ = ("codes", "values", "key_table")

    def __init__(self, codes, values, key_table: List[Hashable]) -> None:
        self.codes = codes
        self.values = values
        self.key_table = key_table

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ColumnSlice(
                self.codes[index], self.values[index], self.key_table
            )
        return (
            self.key_table[self.codes[index]],
            self.values.item(index),
        )

    def __iter__(self):
        keys = self.key_table
        return iter(
            list(
                zip(
                    map(keys.__getitem__, self.codes.tolist()),
                    self.values.tolist(),
                )
            )
        )

    def take(self, positions) -> List[Tuple[Hashable, float]]:
        """Materialize the items at the given positions (one C-level gather).

        ``positions`` is an integer array; the batched-RNG accept loop of
        `repro.core.reservoir.Reservoir` uses this instead of one
        ``__getitem__`` call per accepted item.
        """
        keys = self.key_table
        return list(
            zip(
                map(keys.__getitem__, self.codes[positions].tolist()),
                self.values[positions].tolist(),
            )
        )

    def materialize(self) -> List[Tuple[Hashable, float]]:
        """The equivalent list of Python ``(key, value)`` item tuples."""
        return list(self)

    def __reduce__(self):
        # Pickling (e.g. the sharded executor's fallback transport) ships
        # the materialized items; the arrays may be views into buffers that
        # do not exist on the other side (shared memory, a parent batch).
        return (_rebuild_column_slice, (self.materialize(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnSlice({len(self)} items, {len(self.key_table)} keys)"


def _rebuild_column_slice(items: List[Tuple[Hashable, float]]):
    """Unpickle a `ColumnSlice` as the plain item list it represented."""
    return items


class _FloatRun:
    """A raw value run: the float sequence a value-mode reservoir samples.

    Wraps one stratum's ``float64`` value slice so
    `repro.core.reservoir.Reservoir` can fill and accept *plain Python
    floats* — no per-item tuple builds anywhere on the sampling hot path.
    The tuples reappear lazily at sample-emission time
    (`repro.core.oasrs.OASRSSampler.peek` wraps the kept floats in a
    `_StratumMembers`).
    """

    __slots__ = ("values", "_vals")

    def __init__(self, values) -> None:
        self.values = values
        self._vals = None

    def _list(self) -> List[float]:
        vals = self._vals
        if vals is None:
            vals = self._vals = self.values.tolist()
        return vals

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index):
        return self._list()[index]

    def __iter__(self):
        return iter(self._list())

    def take(self, positions) -> List[float]:
        """The floats at the given integer positions (one C-level gather)."""
        vals = self._vals
        if vals is not None:
            return [vals[p] for p in positions.tolist()]
        return self.values[positions].tolist()


class _StratumMembers:
    """One stratum's members: a constant key over a run of float values.

    A lazy sequence of ``(key, value)`` tuples used in two places: the
    columnar grouping of `repro.core.oasrs.OASRSSampler.process_chunk`
    hands these to `repro.core.reservoir.Reservoir.offer_many` (the
    vectorized accept path gathers kept items through `take`, one C-level
    pass per chunk), and `peek` emits them as the ``items`` of a
    value-mode `repro.core.strata.StratumSample`.  Estimators that only
    need the numeric values read them through `value_list` without any
    tuple ever being built; per-item access materializes the whole run
    once (also a C-level pass) and indexes the cached list.

    ``values`` may be a NumPy ``float64`` array (column view) or a plain
    list of Python floats (a value-mode reservoir's kept items).
    """

    __slots__ = ("key", "values", "_vals", "_items")

    def __init__(self, key: Hashable, values) -> None:
        self.key = key
        self.values = values
        self._vals = values if type(values) is list else None
        self._items = None

    def value_list(self) -> List[float]:
        """The member values as a list of Python floats (cached)."""
        vals = self._vals
        if vals is None:
            vals = self._vals = self.values.tolist()
        return vals

    def _materialized(self):
        items = self._items
        if items is None:
            items = self._items = list(zip(repeat(self.key), self.value_list()))
        return items

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index):
        return self._materialized()[index]

    def __iter__(self):
        return iter(self._materialized())

    def take(self, positions) -> List[Tuple[Hashable, float]]:
        """Materialize the items at the given positions (one C-level gather)."""
        items = self._items
        if items is not None:
            return [items[p] for p in positions.tolist()]
        vals = self._vals
        if vals is not None:
            key = self.key
            return [(key, vals[p]) for p in positions.tolist()]
        return list(zip(repeat(self.key), self.values[positions].tolist()))

    # Sample-merging and serialization interop: behave as the tuple of
    # items this run stands for.

    def __add__(self, other):
        return tuple(self._materialized()) + tuple(other)

    def __radd__(self, other):
        return tuple(other) + tuple(self._materialized())

    def __eq__(self, other):
        if isinstance(other, _StratumMembers):
            other = other._materialized()
        if isinstance(other, (list, tuple)):
            return list(self._materialized()) == list(other)
        return NotImplemented

    def __reduce__(self):
        return (tuple, (tuple(self._materialized()),))


class RecordBatch(list):
    """A time-ordered ``(timestamp, item)`` stream with cached NumPy columns.

    Being a ``list`` subclass is the compatibility contract: every per-item
    consumer (iteration, ``bisect``, ``len``, slicing — which returns a
    plain list) behaves exactly as before.  The columns are derived lazily:

    * ``ts`` (``float64``) — always built when NumPy is available,
    * ``codes`` (``int32``) / ``values`` (``float64``) / ``key_table`` —
      built only when every item is a plain 2-tuple of a hashable key and
      a ``float`` payload (the shared-memory codec's representable set);
      otherwise `columnar_reason` records why and the per-item shim is the
      only path,
    * ``seq`` (``int64``) — optional broker production sequence, attached
      by `repro.runtime.source.TopicSource.batches`.

    Columns are invalidated if the list length changes (the runtime never
    mutates streams; this guards ad-hoc test usage).
    """

    _UNBUILT = object()

    def __init__(self, events: Iterable[Tuple[float, object]] = ()) -> None:
        super().__init__(events)
        self._cols = RecordBatch._UNBUILT
        self._seq = None

    @classmethod
    def of(cls, events) -> "RecordBatch":
        """Coerce to a `RecordBatch`; an existing batch passes through."""
        if isinstance(events, RecordBatch):
            return events
        return cls(events)

    def with_seq(self, seqs) -> "RecordBatch":
        """Attach the broker production-sequence column (int64)."""
        if _np is not None:
            self._seq = _np.asarray(seqs, dtype=_np.int64)
        return self

    # -- column access ------------------------------------------------------

    def _columns(self):
        cols = self._cols
        if cols is RecordBatch._UNBUILT or cols[4] != len(self):
            cols = self._cols = self._build_columns()
        return cols

    def _build_columns(self):
        n = len(self)
        if _np is None:
            return (None, None, None, None, n, "numpy unavailable")
        if n == 0:
            return (
                _np.empty(0, _np.float64),
                _np.empty(0, _np.int32),
                _np.empty(0, _np.float64),
                [],
                n,
                None,
            )
        try:
            ts_vals, items = zip(*self)
        except (TypeError, ValueError):
            return (None, None, None, None, n, "events are not (ts, item) pairs")
        try:
            ts = _np.asarray(ts_vals, dtype=_np.float64)
        except (TypeError, ValueError):
            return (None, None, None, None, n, "non-numeric timestamps")
        reason = None
        if set(map(type, items)) != {tuple}:
            reason = "items are not plain (key, value) tuples"
        elif set(map(len, items)) != {2}:
            reason = "items are not 2-tuples"
        elif set(map(type, map(itemgetter(1), items))) != {float}:
            reason = "non-float payloads (value is not a plain float)"
        if reason is not None:
            return (ts, None, None, None, n, reason)
        keys = list(map(itemgetter(0), items))
        try:
            # dict.fromkeys preserves first-appearance order, so code order
            # is the order the dict-grouping shim would discover keys in.
            code_of = {k: i for i, k in enumerate(dict.fromkeys(keys))}
        except TypeError:
            return (ts, None, None, None, n, "unhashable keys")
        codes = _np.fromiter(
            map(code_of.__getitem__, keys), dtype=_np.int32, count=n
        )
        values = _np.fromiter(map(itemgetter(1), items), dtype=_np.float64, count=n)
        key_table = list(code_of)  # insertion order == code order
        return (ts, codes, values, key_table, n, None)

    @property
    def ts(self):
        """The timestamp column (float64), or None when unavailable."""
        return self._columns()[0]

    @property
    def codes(self):
        """Interned key codes (int32), or None when items are not columnar."""
        return self._columns()[1]

    @property
    def values(self):
        """The value column (float64), or None when items are not columnar."""
        return self._columns()[2]

    @property
    def key_table(self) -> Optional[List[Hashable]]:
        """Code → key mapping, or None when items are not columnar."""
        return self._columns()[3]

    @property
    def seq(self):
        """Broker production-sequence column (int64), or None."""
        return self._seq

    @property
    def columnar_reason(self) -> Optional[str]:
        """Why the item columns are unavailable (None when they are)."""
        return self._columns()[5]

    @property
    def has_columns(self) -> bool:
        """Whether the full (codes, values) item columns are available."""
        return self._columns()[1] is not None

    def project(self, key_fn, value_fn) -> Optional["RecordBatch"]:
        """Intern generic projections: a canonical-shaped view of this stream.

        Applies ``key_fn``/``value_fn`` to every item exactly once and
        returns a `RecordBatch` of ``(ts, (key, value))`` events — the shape
        whose columns the vectorized sampling path consumes.  Sampling over
        the projected batch is decision-for-decision identical to the
        per-item shim over the original: the RNG stream depends only on
        stratum membership order and counts (unchanged — the key sequence is
        the same), and every estimator reads items exclusively through the
        projections (the projected value *is* the float the shim would have
        extracted).

        Returns None when the projections cannot be interned — a projection
        raises, a value is not a plain ``float``, or a key is unhashable —
        in which case callers stay on the per-item shim.  The result is
        cached per ``(key_fn, value_fn)`` identity, so repeated runs over a
        shared stream (module-level query functions, the serving layer's
        `repro.service.hub.SourceHub`) pay the projection pass once.
        """
        cache = self.__dict__.setdefault("_projections", {})
        token = (key_fn, value_fn)
        if token in cache:
            return cache[token]
        projected: Optional[RecordBatch] = None
        events: Optional[List[Tuple[float, Tuple[Hashable, float]]]] = []
        try:
            append = events.append
            for ts, item in self:
                value = value_fn(item)
                if type(value) is not float:
                    events = None
                    break
                append((ts, (key_fn(item), value)))
        except Exception:
            events = None
        if events is not None:
            batch = RecordBatch(events)
            if batch.has_columns:
                projected = batch
        cache[token] = projected
        return projected

    # -- views and the per-item shim ----------------------------------------

    def item_slice(self, lo: int, hi: int) -> ColumnSlice:
        """Zero-copy `ColumnSlice` over the items of events ``[lo, hi)``."""
        _ts, codes, values, key_table, _n, reason = self._columns()
        if codes is None:
            raise ValueError(f"batch has no item columns: {reason}")
        return ColumnSlice(codes[lo:hi], values[lo:hi], key_table)

    def iter_items(self):
        """The per-item compatibility shim: iterate ``(timestamp, item)``.

        Identical to plain iteration — the method exists to mark call sites
        that deliberately take the legacy per-item path (non-columnar
        payloads, ``route_fn`` sharding, custom projections).
        """
        return iter(self)

    def __reduce__(self):
        # Columns are derived state; ship only the events (fork-based
        # workers inherit the cached columns through the address space
        # anyway, and pickle consumers just want the stream).
        return (RecordBatch, (list(self),))
