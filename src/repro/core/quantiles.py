"""Weighted quantiles and heavy hitters over OASRS samples (extensions).

The paper supports *linear* queries (Eq. 2–4) and notes they "can be
extended to support a large range of statistical learning algorithms".
Two extensions every monitoring deployment asks for next are implemented
here on top of the same `WeightedSample`:

* **weighted quantiles** — the q-quantile of the original stream is
  estimated by the q-quantile of the sampled values where each sampled
  item counts ``W_i`` times.  Not a linear query, so instead of Eq. 6
  bounds we provide a conservative distribution-free confidence interval
  via the Dvoretzky–Kiefer–Wolfowitz (DKW) inequality on the weighted
  empirical CDF.
* **heavy hitters** — the items (by a key function) whose estimated
  population frequency exceeds a threshold; frequencies are weighted
  histogram counts (a linear query), so Eq.-6 error bounds apply per
  candidate through `repro.core.query.histogram_with_errors`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Tuple, TypeVar

from .error import estimate_error
from .query import ValueFn, histogram_with_errors
from .strata import WeightedSample

T = TypeVar("T")

__all__ = [
    "approximate_quantile",
    "approximate_median",
    "QuantileEstimate",
    "DKWBound",
    "quantile_bound",
    "HeavyHitter",
    "heavy_hitters",
]


@dataclass(frozen=True)
class QuantileEstimate:
    """A quantile estimate with a DKW-style confidence interval.

    ``lower``/``upper`` are values of the sampled support bracketing the
    quantile at the requested confidence (conservative: DKW treats the
    weighted sample as ``effective_n`` i.i.d. draws, where ``effective_n``
    is the Kish effective sample size of the weights).
    """

    q: float
    value: float
    lower: float
    upper: float
    confidence: float
    effective_n: float


@dataclass(frozen=True)
class DKWBound:
    """A `QuantileEstimate`'s interval with the `ErrorBound` surface.

    Quantiles are not linear queries, so their intervals come from the
    DKW inequality rather than Equations 6/9 — and a DKW bracket is
    *asymmetric*: ``lower``/``upper`` are sampled support values, not
    ``value ± margin``.  This adapter exposes the bracket through the same
    duck-typed surface every `repro.core.error.ErrorBound` consumer reads
    (``margin``, ``interval``, ``relative_margin``, ``covers``), so pane
    results, the budget control loop, and report formatting work unchanged:

    * ``interval`` is the true asymmetric ``(lower, upper)`` bracket,
    * ``margin`` is the wider half-width ``max(value − lower,
      upper − value)`` — conservative, so an `AccuracyBudget` targeting a
      margin drives the sample size from the worse side,
    * ``variance``/``stddev`` are back-derived from that margin
      (distribution-free intervals have no sampling variance of their
      own; consumers that sum variances get a conservative stand-in).
    """

    value: float
    lower: float
    upper: float
    confidence: float
    q: float
    effective_n: float

    @property
    def margin(self) -> float:
        return max(self.value - self.lower, self.upper - self.value)

    @property
    def variance(self) -> float:
        return self.margin ** 2

    @property
    def stddev(self) -> float:
        return self.margin

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.lower, self.upper)

    @property
    def relative_margin(self) -> float:
        """Margin as a fraction of the estimate (inf when the value is 0)."""
        if self.value == 0:
            return math.inf if self.margin > 0 else 0.0
        return abs(self.margin / self.value)

    def covers(self, truth: float) -> bool:
        return self.lower <= truth <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.value:.6g} [{self.lower:.6g}, {self.upper:.6g}] "
            f"(q={self.q:g}, {self.confidence:.1%}, DKW)"
        )


def quantile_bound(estimate: QuantileEstimate) -> DKWBound:
    """Wrap a `QuantileEstimate` as the pane result's error bound."""
    return DKWBound(
        value=estimate.value,
        lower=estimate.lower,
        upper=estimate.upper,
        confidence=estimate.confidence,
        q=estimate.q,
        effective_n=estimate.effective_n,
    )


def _weighted_points(
    sample: WeightedSample[T], value_fn: Optional[ValueFn]
) -> List[Tuple[float, float]]:
    """Sorted (value, weight) pairs across all strata."""
    points: List[Tuple[float, float]] = []
    for stratum in sample:
        for value in stratum.values(value_fn):
            points.append((value, stratum.weight))
    points.sort(key=lambda vw: vw[0])
    return points


def _kish_effective_n(weights: List[float]) -> float:
    """Kish effective sample size: (Σw)² / Σw² — discounts unequal weights."""
    total = math.fsum(weights)
    squares = math.fsum(w * w for w in weights)
    if squares == 0:
        return 0.0
    return total * total / squares


def approximate_quantile(
    sample: WeightedSample[T],
    q: float,
    value_fn: Optional[ValueFn] = None,
    confidence: float = 0.95,
) -> QuantileEstimate:
    """Estimate the stream's q-quantile from a weighted sample.

    The point estimate is the smallest sampled value whose cumulative
    weight reaches ``q`` of the total.  The interval comes from the DKW
    inequality: with probability ≥ confidence the true CDF is within
    ``ε = sqrt(ln(2/α) / (2 n_eff))`` of the weighted empirical CDF, so the
    values at cumulative ranks ``q ± ε`` bracket the true quantile.
    """
    if not 0 < q < 1:
        raise ValueError(f"q must be in (0, 1), got {q}")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    points = _weighted_points(sample, value_fn)
    if not points:
        raise ValueError("cannot take a quantile of an empty sample")

    weights = [w for _v, w in points]
    total = math.fsum(weights)
    effective_n = _kish_effective_n(weights)
    alpha = 1.0 - confidence
    if effective_n > 0:
        epsilon = math.sqrt(math.log(2.0 / alpha) / (2.0 * effective_n))
    else:
        epsilon = 1.0

    def value_at(rank_fraction: float) -> float:
        target = min(max(rank_fraction, 0.0), 1.0) * total
        cumulative = 0.0
        for value, weight in points:
            cumulative += weight
            if cumulative >= target:
                return value
        return points[-1][0]

    return QuantileEstimate(
        q=q,
        value=value_at(q),
        lower=value_at(q - epsilon),
        upper=value_at(q + epsilon),
        confidence=confidence,
        effective_n=effective_n,
    )


def approximate_median(
    sample: WeightedSample[T],
    value_fn: Optional[ValueFn] = None,
    confidence: float = 0.95,
) -> QuantileEstimate:
    """Convenience wrapper: the weighted median with its DKW interval."""
    return approximate_quantile(sample, 0.5, value_fn=value_fn, confidence=confidence)


@dataclass(frozen=True)
class HeavyHitter:
    """One frequent key with its estimated count and ± error margin."""

    key: Hashable
    estimated_count: float
    margin: float
    share: float

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.estimated_count - self.margin, self.estimated_count + self.margin)


def heavy_hitters(
    sample: WeightedSample[T],
    key_fn: Callable[[T], Hashable],
    threshold: float = 0.01,
    confidence: float = 0.95,
) -> List[HeavyHitter]:
    """Keys whose estimated population share exceeds ``threshold``.

    Frequencies are weighted histogram counts — a linear query — so each
    candidate carries an Equation-6 error bound.  Results are sorted by
    estimated count, descending.  A key is reported when even the *lower*
    end of its interval could clear the threshold (no false dismissals at
    the stated confidence).
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    population = sample.total_count
    if population == 0:
        return []
    hitters: List[HeavyHitter] = []
    for key, result in histogram_with_errors(sample, bin_fn=key_fn).items():
        bound = estimate_error(result, confidence=confidence)
        share = result.value / population
        if (result.value + bound.margin) / population >= threshold:
            hitters.append(
                HeavyHitter(
                    key=key,
                    estimated_count=result.value,
                    margin=bound.margin,
                    share=share,
                )
            )
    hitters.sort(key=lambda h: -h.estimated_count)
    return hitters
