"""Classic reservoir sampling (Algorithm 1 of the paper).

Reservoir sampling selects a uniform random sample of a fixed maximum size
from a stream whose length is unknown in advance (Vitter, 1985).  The first
``capacity`` items fill the reservoir; after that the *i*-th arriving item
(1-based) replaces a uniformly chosen resident with probability
``capacity / i``.  Every item seen so far therefore has the same probability
``capacity / i`` of being in the reservoir — the textbook invariant the
paper's Algorithm 1 relies on.

The implementation is intentionally dependency-free and allocation-light:
one list of at most ``capacity`` items and one integer counter.
"""

from __future__ import annotations

import random
from typing import Generic, Iterable, Iterator, List, Optional, TypeVar

T = TypeVar("T")

__all__ = ["Reservoir", "reservoir_sample"]


class Reservoir(Generic[T]):
    """A fixed-capacity uniform sample over a stream of unknown length.

    Parameters
    ----------
    capacity:
        Maximum number of items retained.  Must be a positive integer.
    rng:
        Source of randomness.  Pass a seeded ``random.Random`` for
        reproducible runs; defaults to a fresh unseeded generator.

    Examples
    --------
    >>> r = Reservoir(3, rng=random.Random(7))
    >>> for x in range(100):
    ...     r.offer(x)
    >>> len(r)
    3
    >>> r.seen
    100
    """

    __slots__ = ("_capacity", "_items", "_seen", "_rng")

    def __init__(self, capacity: int, rng: Optional[random.Random] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"reservoir capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._items: List[T] = []
        self._seen = 0
        self._rng = rng if rng is not None else random.Random()

    @property
    def capacity(self) -> int:
        """Maximum number of items the reservoir retains."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Total number of items offered so far (the counter ``C`` in §3.2)."""
        return self._seen

    @property
    def items(self) -> List[T]:
        """The current sample (a copy; at most ``capacity`` items)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Reservoir(capacity={self._capacity}, size={len(self._items)}, "
            f"seen={self._seen})"
        )

    def offer(self, item: T) -> bool:
        """Offer one stream item; return True if it entered the reservoir.

        Implements Algorithm 1: fill until full, then accept the *i*-th item
        with probability ``capacity / i`` and evict a uniform resident.
        """
        self._seen += 1
        if len(self._items) < self._capacity:
            self._items.append(item)
            return True
        # Accept with probability capacity / i where i == self._seen.
        if self._rng.random() * self._seen < self._capacity:
            j = self._rng.randrange(self._capacity)
            self._items[j] = item
            return True
        return False

    def extend(self, items: Iterable[T]) -> None:
        """Offer every item of ``items`` in order."""
        for item in items:
            self.offer(item)

    def reset(self) -> None:
        """Empty the reservoir and zero the counter (new time interval)."""
        self._items.clear()
        self._seen = 0

    def is_saturated(self) -> bool:
        """True once more items were seen than the reservoir can hold."""
        return self._seen > self._capacity


def reservoir_sample(
    items: Iterable[T], capacity: int, rng: Optional[random.Random] = None
) -> List[T]:
    """One-shot helper: uniform sample of at most ``capacity`` from ``items``.

    >>> reservoir_sample(range(10), 20, rng=random.Random(0)) == list(range(10))
    True
    """
    reservoir: Reservoir[T] = Reservoir(capacity, rng=rng)
    reservoir.extend(items)
    return reservoir.items
