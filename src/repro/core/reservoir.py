"""Classic reservoir sampling (Algorithm 1 of the paper).

Reservoir sampling selects a uniform random sample of a fixed maximum size
from a stream whose length is unknown in advance (Vitter, 1985).  The first
``capacity`` items fill the reservoir; after that the *i*-th arriving item
(1-based) replaces a uniformly chosen resident with probability
``capacity / i``.  Every item seen so far therefore has the same probability
``capacity / i`` of being in the reservoir — the textbook invariant the
paper's Algorithm 1 relies on.

The implementation is intentionally dependency-free and allocation-light:
one list of at most ``capacity`` items and one integer counter.

Two execution paths are provided:

* ``offer`` — the textbook per-item loop (one ``random()`` draw per item
  once the reservoir is full),
* ``offer_many`` — the vectorized chunk path: batched RNG draws via
  Vitter-style skip counting (Algorithm X), or one NumPy draw per chunk
  when NumPy is available.  Both paths realise the same per-item acceptance
  probability ``capacity / i``, so samples are statistically
  interchangeable; a chunk of one item delegates to ``offer`` and is
  bit-for-bit identical.
"""

from __future__ import annotations

import random
from typing import Generic, Iterable, Iterator, List, Optional, Sequence, TypeVar

from ._vector import VECTOR_MIN as _VECTOR_MIN
from ._vector import derive_generator as _derive_generator
from ._vector import np as _np
from .records import L2_SLICE as _L2_SLICE

T = TypeVar("T")

__all__ = ["Reservoir", "reservoir_sample"]


class Reservoir(Generic[T]):
    """A fixed-capacity uniform sample over a stream of unknown length.

    Parameters
    ----------
    capacity:
        Maximum number of items retained.  Must be a positive integer.
    rng:
        Source of randomness.  Pass a seeded ``random.Random`` for
        reproducible runs; defaults to a fresh unseeded generator.

    Examples
    --------
    >>> r = Reservoir(3, rng=random.Random(7))
    >>> for x in range(100):
    ...     r.offer(x)
    >>> len(r)
    3
    >>> r.seen
    100
    """

    __slots__ = ("_capacity", "_items", "_seen", "_rng", "_np_rng")

    def __init__(self, capacity: int, rng: Optional[random.Random] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"reservoir capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._items: List[T] = []
        self._seen = 0
        self._rng = rng if rng is not None else random.Random()
        self._np_rng = None

    @property
    def capacity(self) -> int:
        """Maximum number of items the reservoir retains."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Total number of items offered so far (the counter ``C`` in §3.2)."""
        return self._seen

    @property
    def items(self) -> List[T]:
        """The current sample (a copy; at most ``capacity`` items)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Reservoir(capacity={self._capacity}, size={len(self._items)}, "
            f"seen={self._seen})"
        )

    def offer(self, item: T) -> bool:
        """Offer one stream item; return True if it entered the reservoir.

        Implements Algorithm 1: fill until full, then accept the *i*-th item
        with probability ``capacity / i`` and evict a uniform resident.
        """
        self._seen += 1
        if len(self._items) < self._capacity:
            self._items.append(item)
            return True
        # Accept with probability capacity / i where i == self._seen.
        if self._rng.random() * self._seen < self._capacity:
            j = self._rng.randrange(self._capacity)
            self._items[j] = item
            return True
        return False

    def offer_many(self, items: Sequence[T]) -> int:
        """Offer a whole chunk of items; return how many entered the reservoir.

        The chunk fast path of the vectorized sampling stack: instead of one
        ``random()`` call (plus Python-level branching) per item, the
        saturated regime draws skip counts with Vitter's Algorithm X — one
        uniform draw per *accepted* item — or, for chunks of at least
        ``_VECTOR_MIN`` items when NumPy is importable, a single vectorized
        batch of draws.  Acceptance probabilities are identical to ``offer``
        (``capacity / i`` for the *i*-th item ever seen), so the sample
        distribution is unchanged; only the RNG call pattern differs.  A
        one-item chunk delegates to ``offer`` so chunked and per-item
        execution agree bit-for-bit at ``chunk_size=1``.

        ``items`` may be any sequence (``len`` + indexing/slicing) — lists,
        tuples, or the lazy column views of `repro.core.records` — and is
        never copied wholesale: only the items that actually enter the
        reservoir are materialized.  Inputs larger than
        `repro.core.records.L2_SLICE` are processed slice by slice so one
        call's working set stays cache-sized; the acceptance distribution
        is unchanged (the RNG call pattern differs from an unsplit pass,
        deterministically, for such oversized inputs only).
        """
        if not hasattr(items, "__len__"):
            items = list(items)
        n = len(items)
        if n == 0:
            return 0
        if n > _L2_SLICE:
            accepted = 0
            for start in range(0, n, _L2_SLICE):
                accepted += self.offer_many(items[start : start + _L2_SLICE])
            return accepted
        if n == 1:
            return 1 if self.offer(items[0]) else 0
        pos = 0
        accepted = 0
        free = self._capacity - len(self._items)
        if free > 0:
            # Fill phase: the first `capacity` items enter deterministically.
            take = free if free < n else n
            self._items.extend(items[:take])
            self._seen += take
            accepted += take
            pos = take
            if pos == n:
                return accepted
        if _np is not None and n - pos >= _VECTOR_MIN:
            return accepted + self._accept_vectorized(items, pos)
        return accepted + self._accept_skipping(items, pos)

    def _accept_skipping(self, items: Sequence[T], pos: int) -> int:
        """Saturated-regime chunk acceptance via Algorithm X skip counts.

        Each iteration draws one uniform and advances directly to the next
        accepted item; rejected items cost one multiply each instead of a
        full RNG call.  Truncation at the chunk boundary is sound because
        per-item acceptance events are independent Bernoulli(capacity/i)
        trials.
        """
        rng_random = self._rng.random
        rng_randrange = self._rng.randrange
        cap = self._capacity
        res = self._items
        t = self._seen
        n = len(items)
        accepted = 0
        while pos < n:
            v = rng_random()
            s = 0
            # quot = P(next s+1 candidates are all rejected)
            quot = (t + 1 - cap) / (t + 1)
            while quot > v:
                s += 1
                if pos + s >= n:
                    break
                quot *= (t + s + 1 - cap) / (t + s + 1)
            if pos + s >= n:
                t += n - pos
                pos = n
                break
            res[rng_randrange(cap)] = items[pos + s]
            accepted += 1
            t += s + 1
            pos += s + 1
        self._seen = t
        return accepted

    def _accept_vectorized(self, items: Sequence[T], pos: int) -> int:
        """Saturated-regime chunk acceptance with one NumPy draw per chunk."""
        if self._np_rng is None:
            self._np_rng = _derive_generator(self._rng)
        gen = self._np_rng
        cap = self._capacity
        t = self._seen
        n = len(items) - pos
        # Item t+j (1-based) is accepted iff U_j * (t+j) < capacity.
        indices = _np.arange(t + 1, t + n + 1, dtype=_np.float64)
        hits = _np.flatnonzero(gen.random(n) * indices < cap)
        count = int(hits.size)
        if count:
            slots = gen.integers(0, cap, size=count)
            res = self._items
            take = getattr(items, "take", None)
            if take is not None:
                # Column views gather all accepted items in one C-level
                # pass instead of one __getitem__ tuple build per item.
                for slot, item in zip(slots.tolist(), take(pos + hits)):
                    res[slot] = item
            else:
                for hit, slot in zip(hits.tolist(), slots.tolist()):
                    res[slot] = items[pos + hit]
        self._seen = t + n
        return count

    def extend(self, items: Iterable[T]) -> None:
        """Offer every item of ``items`` in order."""
        for item in items:
            self.offer(item)

    def reset(self) -> None:
        """Empty the reservoir and zero the counter (new time interval)."""
        self._items.clear()
        self._seen = 0

    def is_saturated(self) -> bool:
        """True once more items were seen than the reservoir can hold."""
        return self._seen > self._capacity


def reservoir_sample(
    items: Iterable[T], capacity: int, rng: Optional[random.Random] = None
) -> List[T]:
    """One-shot helper: uniform sample of at most ``capacity`` from ``items``.

    >>> reservoir_sample(range(10), 20, rng=random.Random(0)) == list(range(10))
    True
    """
    reservoir: Reservoir[T] = Reservoir(capacity, rng=rng)
    reservoir.extend(items)
    return reservoir.items
