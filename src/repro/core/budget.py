"""Query budgets and the virtual cost function (§2.3 assumption, §7 sketch).

The paper *assumes* a virtual cost function that translates a user-specified
query budget into a sample size, and sketches in §7 how one could be built.
This module implements that sketch so the system is end-to-end runnable:

* **Accuracy budget** — a desired confidence-interval half-width.  Using
  Equation 9 plus the 68-95-99.7 rule, invert the variance formula to get
  the per-stratum sample size that achieves the target margin (seeded with
  variance estimates from the previous interval).
* **Latency / throughput budget** — a token-cost model in the spirit of
  Pulsar's virtual data centers [4]: each item costs a pre-advertised number
  of cost tokens to process; the engine's capacity (tokens per interval,
  from the simulated-cluster cost model) bounds how many sampled items fit,
  giving the sampling fraction directly.
* **Resource budget** — the same token model with capacity derived from an
  explicit worker/core allotment.

On top sits the **adaptive feedback loop** of §4.2: whenever the measured
error bound exceeds the user's target, the sample size for subsequent
intervals is increased (multiplicatively), and gently decayed when there is
slack — achieving the target accuracy without permanently over-sampling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Sequence

from .error import confidence_z
from .query import StratumStats

__all__ = [
    "AccuracyBudget",
    "LatencyBudget",
    "ResourceBudget",
    "CostModel",
    "VirtualCostFunction",
    "AdaptiveSampleSizeController",
]


@dataclass(frozen=True)
class AccuracyBudget:
    """Target: the MEAN estimate's CI half-width ≤ ``target_margin``."""

    target_margin: float
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.target_margin <= 0:
            raise ValueError("target_margin must be positive")


@dataclass(frozen=True)
class LatencyBudget:
    """Target: process each interval within ``max_seconds``."""

    max_seconds: float

    def __post_init__(self) -> None:
        if self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive")


@dataclass(frozen=True)
class ResourceBudget:
    """Target: stay within a worker/core allotment."""

    workers: int
    cores_per_worker: int = 1

    def __post_init__(self) -> None:
        if self.workers <= 0 or self.cores_per_worker <= 0:
            raise ValueError("workers and cores_per_worker must be positive")

    @property
    def total_cores(self) -> int:
        return self.workers * self.cores_per_worker


@dataclass(frozen=True)
class CostModel:
    """Pre-advertised token costs, à la Pulsar's virtual data centers.

    ``tokens_per_item`` is the cost of pushing one sampled item through the
    query; ``tokens_per_core_second`` is one core's processing capacity.
    """

    tokens_per_item: float = 1.0
    tokens_per_core_second: float = 100_000.0

    def items_within(self, seconds: float, cores: int) -> int:
        """How many items fit into ``seconds`` on ``cores`` cores."""
        capacity = seconds * cores * self.tokens_per_core_second
        return max(0, int(capacity / self.tokens_per_item))


class VirtualCostFunction:
    """Translate a query budget into per-stratum reservoir sizes (§7).

    The function is stateful: accuracy budgets need variance estimates,
    which are fed back from the previous interval's `StratumStats` via
    ``observe``.  Before any observation a conservative default fraction is
    used.
    """

    DEFAULT_FRACTION = 0.6  # the paper's most common operating point

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        cores: int = 8,
        default_fraction: float = DEFAULT_FRACTION,
    ) -> None:
        if not 0 < default_fraction <= 1:
            raise ValueError("default_fraction must be in (0, 1]")
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.cores = cores
        self.default_fraction = default_fraction
        self._last_stats: Dict[Hashable, StratumStats] = {}

    def observe(self, strata: Sequence[StratumStats]) -> None:
        """Feed back the previous interval's per-stratum statistics."""
        self._last_stats = {s.key: s for s in strata}

    # -- budget dispatch ---------------------------------------------------

    def sample_size(self, budget, expected_items_per_interval: int) -> int:
        """Per-stratum reservoir capacity for the given budget."""
        if isinstance(budget, AccuracyBudget):
            return self._for_accuracy(budget, expected_items_per_interval)
        if isinstance(budget, LatencyBudget):
            return self._for_latency(budget, expected_items_per_interval)
        if isinstance(budget, ResourceBudget):
            return self._for_resources(budget, expected_items_per_interval)
        raise TypeError(f"unsupported budget type {type(budget).__name__}")

    def sampling_fraction(self, budget, expected_items_per_interval: int) -> float:
        """The budget expressed as an overall sampling fraction."""
        strata = max(1, len(self._last_stats))
        per_stratum = self.sample_size(budget, expected_items_per_interval)
        if expected_items_per_interval <= 0:
            return 1.0
        return min(1.0, per_stratum * strata / expected_items_per_interval)

    # -- per-budget translations --------------------------------------------

    def _per_stratum_default(self, expected_items: int) -> int:
        strata = max(1, len(self._last_stats))
        return max(1, int(expected_items * self.default_fraction / strata))

    def _for_accuracy(self, budget: AccuracyBudget, expected_items: int) -> int:
        """Invert Equation 9 for the per-stratum Y achieving the margin.

        Assuming X equal-variance strata of size C with weights ω = 1/X, the
        margin condition  z · sqrt(X · ω² (s²/Y)(C−Y)/C) ≤ m  solves to
        Y ≥ s² / (m² X / z² + s²/C).  We use the worst (largest s²) stratum
        from the previous interval to stay conservative.
        """
        if not self._last_stats:
            return self._per_stratum_default(expected_items)
        z = confidence_z(budget.confidence)
        x = len(self._last_stats)
        worst = max(self._last_stats.values(), key=lambda s: s.variance)
        s2 = worst.variance
        c = max(1, worst.c)
        if s2 == 0:
            return 1
        denom = (budget.target_margin ** 2) * x / (z ** 2) + s2 / c
        needed = s2 / denom
        return max(1, min(c, int(math.ceil(needed))))

    def _for_latency(self, budget: LatencyBudget, expected_items: int) -> int:
        capacity = self.cost_model.items_within(budget.max_seconds, self.cores)
        strata = max(1, len(self._last_stats))
        if expected_items <= 0:
            return max(1, capacity // strata)
        allowed = min(capacity, expected_items)
        return max(1, allowed // strata)

    def _for_resources(self, budget: ResourceBudget, expected_items: int) -> int:
        # One interval is normalised to one second of the allotted cores.
        capacity = self.cost_model.items_within(1.0, budget.total_cores)
        strata = max(1, len(self._last_stats))
        allowed = min(capacity, expected_items) if expected_items > 0 else capacity
        return max(1, allowed // strata)


@dataclass
class AdaptiveSampleSizeController:
    """The §4.2 feedback loop: grow the sample when the error is too large.

    After each interval, call ``update`` with the measured error margin
    (relative or absolute — the controller only compares it against
    ``target_relative_margin``, which must be expressed in the same units).
    If it exceeds the target the controller scales the sample size up by
    ``growth``; when there is at least 2× slack it decays by ``decay`` to
    reclaim throughput.  Sizes are clamped to [min_size, max_size].

    Both directions round *symmetrically to the nearest integer* (growth
    additionally rounds up so it always makes progress from tiny sizes).
    Truncating the decay with ``int()`` instead — as an earlier version
    did — loses up to one extra item per step, which for small sizes turns
    a gentle multiplicative decay into a ratchet straight down to
    ``min_size`` followed by grow/decay oscillation.  With nearest-integer
    rounding the decay settles at the fixed point ``s`` where
    ``round(s × decay) == s`` instead.
    """

    initial_size: int
    target_relative_margin: float
    growth: float = 1.5
    decay: float = 0.9
    min_size: int = 1
    max_size: int = 1_000_000
    current_size: int = field(init=False)

    def __post_init__(self) -> None:
        if self.initial_size <= 0:
            raise ValueError("initial_size must be positive")
        if self.target_relative_margin <= 0:
            raise ValueError("target_relative_margin must be positive")
        if self.growth <= 1.0:
            raise ValueError("growth must exceed 1.0")
        if not 0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.current_size = max(self.min_size, min(self.max_size, self.initial_size))

    def update(self, measured_relative_margin: float) -> int:
        """Adapt to the last interval's error; return the next sample size."""
        if measured_relative_margin > self.target_relative_margin:
            proposed = int(math.ceil(self.current_size * self.growth))
        elif measured_relative_margin < self.target_relative_margin / 2:
            # Round-half-up, not int(): symmetric with the growth direction,
            # so small sizes settle at round(s·decay) == s instead of
            # ratcheting one extra item per step down to min_size.
            proposed = int(math.floor(self.current_size * self.decay + 0.5))
        else:
            proposed = self.current_size
        self.current_size = max(self.min_size, min(self.max_size, proposed))
        return self.current_size
