"""Terminal-friendly charts for experiment results.

The benchmark harness prints tables; for eyeballing shapes (Figure-7-style
time series, throughput-vs-fraction curves) a quick ASCII rendering is
often all that is needed on a headless box.  Two renderers:

* `line_chart` — one or more named series over a shared numeric x-axis,
  down-sampled to the terminal width, one glyph per series.
* `bar_chart` — horizontal bars for one value per label (throughput per
  system, loss per policy, ...).

Pure text in, pure text out — no plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["line_chart", "bar_chart"]

_GLYPHS = "*+x@o#%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    fraction = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, int(round(fraction * (steps - 1)))))


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 16,
    title: str = "",
) -> str:
    """Render named ``(x, y)`` series on one shared-axis ASCII canvas."""
    if not series or all(not points for points in series.values()):
        return f"{title}\n(no data)"
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4 characters")

    xs = [x for points in series.values() for x, _y in points]
    ys = [y for points in series.values() for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for glyph, (name, points) in zip(_GLYPHS, series.items()):
        legend.append(f"{glyph} {name}")
        for x, y in points:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            canvas[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>12.4g} ┤" + "".join(canvas[0]))
    for row in canvas[1:-1]:
        lines.append(" " * 12 + " │" + "".join(row))
    lines.append(f"{y_lo:>12.4g} ┤" + "".join(canvas[-1]))
    lines.append(" " * 12 + " └" + "─" * width)
    lines.append(" " * 14 + f"{x_lo:<12.4g}" + " " * max(0, width - 24) + f"{x_hi:>10.4g}")
    lines.append(" " * 14 + "   ".join(legend))
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render one horizontal bar per label, scaled to the maximum value."""
    if not values:
        return f"{title}\n(no data)"
    if width < 8:
        raise ValueError("bar chart needs at least 8 columns")
    peak = max(values.values())
    label_width = max(len(str(label)) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        filled = _scale(value, 0.0, peak, width) + 1 if peak > 0 else 0
        bar = "█" * filled
        lines.append(f"{str(label):>{label_width}} │{bar:<{width}} {value:,.4g}{unit}")
    return "\n".join(lines)
