"""Experiment measurement and reporting utilities."""

from .accuracy import coverage_rate, mean_timeseries, timeseries_deviation
from .adaptation import (
    budget_series,
    convergence_interval,
    format_trajectory,
    margin_series,
)
from .ascii_chart import bar_chart, line_chart
from .collector import ExperimentCollector, Measurement, format_table

__all__ = [
    "ExperimentCollector",
    "Measurement",
    "bar_chart",
    "budget_series",
    "convergence_interval",
    "coverage_rate",
    "format_table",
    "format_trajectory",
    "line_chart",
    "margin_series",
    "mean_timeseries",
    "timeseries_deviation",
]
