"""Experiment measurement and reporting utilities."""

from .accuracy import coverage_rate, mean_timeseries, timeseries_deviation
from .ascii_chart import bar_chart, line_chart
from .collector import ExperimentCollector, Measurement, format_table

__all__ = [
    "ExperimentCollector",
    "Measurement",
    "bar_chart",
    "coverage_rate",
    "format_table",
    "line_chart",
    "mean_timeseries",
    "timeseries_deviation",
]
