"""Rendering helpers for the budget-adaptation trajectory.

Budget-driven runs (``SystemConfig(budget=…)``) record one
`repro.runtime.control.AdaptationPoint` per pane on the
`repro.runtime.report.SystemReport`.  These helpers turn that trajectory
into the series/tables the CLI and the convergence benchmark print: the
per-interval sample budget, the measured CI half-width against the target,
and the interval at which the loop first meets (and then holds) the
target.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..runtime.control import AdaptationPoint
from ..runtime.report import SystemReport

__all__ = [
    "budget_series",
    "margin_series",
    "convergence_interval",
    "format_trajectory",
]


def _points(report_or_points) -> Sequence[AdaptationPoint]:
    if isinstance(report_or_points, SystemReport):
        return report_or_points.adaptation
    return report_or_points


def budget_series(report_or_points) -> List[Tuple[float, float]]:
    """(interval end, chosen sample budget) pairs — the adaptation curve."""
    return [(p.interval_end, float(p.sample_budget)) for p in _points(report_or_points)]


def margin_series(report_or_points) -> List[Tuple[float, float]]:
    """(interval end, measured CI half-width) pairs."""
    return [(p.interval_end, p.measured_margin) for p in _points(report_or_points)]


def convergence_interval(report_or_points, target_margin: float) -> Optional[int]:
    """First 1-based interval from which the margin stays ≤ the target.

    Returns ``None`` when the trajectory never reaches the target or does
    not hold it through the last recorded pane — the acceptance metric for
    the §4.2 loop ("reaches *and holds*").
    """
    points = _points(report_or_points)
    held_since: Optional[int] = None
    for index, point in enumerate(points, start=1):
        if point.measured_margin <= target_margin:
            if held_since is None:
                held_since = index
        else:
            held_since = None
    return held_since


def format_trajectory(report_or_points, target_margin: Optional[float] = None) -> str:
    """Fixed-width per-interval table of the control loop's decisions."""
    points = _points(report_or_points)
    lines = [
        f"{'interval':>8} {'end(s)':>8} {'items/ivl':>10} {'budget':>8} "
        f"{'margin':>10} {'rel':>8}"
    ]
    for index, p in enumerate(points, start=1):
        marker = ""
        if target_margin is not None:
            marker = "  ✓" if p.measured_margin <= target_margin else "  ✗"
        rel = f"{p.relative_margin:8.3%}" if p.relative_margin != float("inf") else "     inf"
        lines.append(
            f"{index:>8} {p.interval_end:8.1f} {p.observed_items:>10,} "
            f"{p.sample_budget:>8,} {p.measured_margin:10.4g} {rel}{marker}"
        )
    if target_margin is not None:
        reached = convergence_interval(points, target_margin)
        lines.append(
            f"target margin {target_margin:g}: "
            + (
                f"reached and held from interval {reached}"
                if reached is not None
                else "not held by the end of the run"
            )
        )
    return "\n".join(lines)
