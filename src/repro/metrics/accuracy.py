"""Accuracy-analysis helpers for the time-series experiments (Figure 7).

The §5.7 skew experiment plots, for each sampling technique, the estimated
window mean against the unsampled ground truth every 5 seconds over a
10-minute observation.  `mean_timeseries` extracts that series from a
`SystemReport`; `timeseries_deviation` summarises how far a series strays
from the truth (the visual "wiggliness" Figure 7 shows for SRS but not for
STS/StreamApprox).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..system.base import SystemReport

__all__ = ["mean_timeseries", "timeseries_deviation", "coverage_rate"]


def mean_timeseries(report: SystemReport) -> List[Tuple[float, float, Optional[float]]]:
    """(pane end, estimate, exact) triples for plotting against truth."""
    return [(r.end, r.estimate, r.exact) for r in report.results]


def timeseries_deviation(report: SystemReport) -> float:
    """Root-mean-square *relative* deviation of estimates from the truth."""
    errors = []
    for r in report.results:
        if r.exact:
            errors.append(((r.estimate - r.exact) / r.exact) ** 2)
    if not errors:
        return 0.0
    return math.sqrt(sum(errors) / len(errors))


def coverage_rate(report: SystemReport) -> float:
    """Fraction of panes whose ±error interval covers the ground truth.

    Validates §3.3 end-to-end: at 95% confidence this should be ≈ 0.95 for
    the StreamApprox systems.
    """
    applicable = [
        r for r in report.results if r.error is not None and r.exact is not None
    ]
    if not applicable:
        return 0.0
    covered = sum(1 for r in applicable if r.error.covers(r.exact))
    return covered / len(applicable)
