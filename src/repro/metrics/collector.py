"""Measurement bookkeeping for experiments (§6.1 "Measurements").

`ExperimentCollector` accumulates `SystemReport`s across systems and
parameter settings and renders them as the rows/series the paper's figures
show — throughput (items/s), latency (seconds to process the dataset), and
accuracy loss (|approx − exact| / exact).  `summarize` averages repeated
runs (the paper reports averages over 10 runs).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..system.base import SystemReport

__all__ = ["Measurement", "ExperimentCollector", "format_table"]


@dataclass(frozen=True)
class Measurement:
    """One (system, setting) observation."""

    system: str
    setting: object  # x-axis value: fraction, interval, rate mix, ...
    throughput: float
    accuracy_loss: float
    latency: float


@dataclass
class ExperimentCollector:
    """Accumulates measurements and renders figure-style tables."""

    name: str
    measurements: List[Measurement] = field(default_factory=list)

    def record(self, setting: object, report: SystemReport) -> Measurement:
        m = Measurement(
            system=report.system,
            setting=setting,
            throughput=report.throughput,
            accuracy_loss=report.mean_accuracy_loss(),
            latency=report.latency,
        )
        self.measurements.append(m)
        return m

    def systems(self) -> List[str]:
        seen: List[str] = []
        for m in self.measurements:
            if m.system not in seen:
                seen.append(m.system)
        return seen

    def settings(self) -> List[object]:
        seen: List[object] = []
        for m in self.measurements:
            if m.setting not in seen:
                seen.append(m.setting)
        return seen

    def series(self, system: str, metric: str) -> List[Tuple[object, float]]:
        """(setting, mean metric) pairs for one system, runs averaged."""
        by_setting: Dict[object, List[float]] = {}
        for m in self.measurements:
            if m.system == system:
                by_setting.setdefault(m.setting, []).append(getattr(m, metric))
        return [
            (setting, statistics.fmean(values))
            for setting, values in by_setting.items()
        ]

    def value(self, system: str, setting: object, metric: str) -> Optional[float]:
        for s, v in self.series(system, metric):
            if s == setting:
                return v
        return None

    def ratio(
        self, numerator: str, denominator: str, setting: object, metric: str
    ) -> Optional[float]:
        """Speedup-style ratio between two systems at one setting."""
        num = self.value(numerator, setting, metric)
        den = self.value(denominator, setting, metric)
        if num is None or den is None or den == 0:
            return None
        return num / den

    def table(self, metric: str) -> str:
        """Render the figure as text: rows = settings, columns = systems."""
        return format_table(self, metric)


def format_table(collector: ExperimentCollector, metric: str) -> str:
    systems = collector.systems()
    settings = collector.settings()
    header = [f"{collector.name} — {metric}"]
    col = max(18, max((len(s) for s in systems), default=18) + 2)
    header.append("setting".ljust(14) + "".join(s.rjust(col) for s in systems))
    lines = header
    for setting in settings:
        row = [str(setting).ljust(14)]
        for system in systems:
            v = collector.value(system, setting, metric)
            row.append(("-" if v is None else f"{v:,.4g}").rjust(col))
        lines.append("".join(row))
    return "\n".join(lines)
