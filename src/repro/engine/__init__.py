"""Stream-processing substrates: the simulated cluster and both engines.

* `repro.engine.costs` / `repro.engine.cluster` — the virtual-time cost
  model standing in for the paper's 17-node testbed (see DESIGN.md §2),
* `repro.engine.batched` — a Spark-Streaming-like micro-batch engine
  (MiniRDD + DStream),
* `repro.engine.pipelined` — a Flink-like push-based operator dataflow.
"""

from .cluster import ExecutionStats, SimulatedCluster, VirtualClock
from .costs import DEFAULT_COSTS, CostProfile

__all__ = [
    "DEFAULT_COSTS",
    "CostProfile",
    "ExecutionStats",
    "SimulatedCluster",
    "VirtualClock",
]
