"""DStream — discretized streams for the batched engine.

Mirrors Spark Streaming's model [22, 47]: the input stream is chopped into
micro-batches at a fixed *batch interval*; each micro-batch becomes one
RDD and one data-parallel job.  Sliding windows [6] are unions of the
batches they cover: a window of length ``w`` sliding by ``δ`` (both integer
multiples of the batch interval) emits, every ``δ`` seconds, the items of
the last ``w`` seconds.

`Batcher` converts a timestamped item iterator into `MicroBatch`es;
`SlidingWindower` groups finished batches into `WindowPane`s.  Both are
pure stream-to-stream generators — the engines decide what to do with each
batch/pane (form RDDs, sample, run jobs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterable, Iterator, List, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["MicroBatch", "WindowPane", "Batcher", "SlidingWindower"]


@dataclass(frozen=True)
class MicroBatch(Generic[T]):
    """Items of one batch interval: [start, start + interval)."""

    index: int
    start: float
    interval: float
    items: Tuple[T, ...]

    @property
    def end(self) -> float:
        return self.start + self.interval

    def __len__(self) -> int:
        return len(self.items)


@dataclass(frozen=True)
class WindowPane(Generic[T]):
    """One evaluation of a sliding window: [end − length, end)."""

    end: float
    length: float
    batches: Tuple[MicroBatch[T], ...]

    @property
    def start(self) -> float:
        return self.end - self.length

    @property
    def items(self) -> List[T]:
        out: List[T] = []
        for batch in self.batches:
            out.extend(batch.items)
        return out

    def __len__(self) -> int:
        return sum(len(b) for b in self.batches)


class Batcher(Generic[T]):
    """Chop a time-ordered ``(timestamp, item)`` stream into micro-batches.

    Emits *every* interval in order, including empty ones, so window algebra
    downstream stays aligned — Spark Streaming likewise launches a job per
    interval regardless of data.
    """

    def __init__(self, interval: float, start: float = 0.0) -> None:
        if interval <= 0:
            raise ValueError(f"batch interval must be positive, got {interval}")
        self.interval = interval
        self.start = start

    def batches(
        self, stream: Iterable[Tuple[float, T]]
    ) -> Iterator[MicroBatch[T]]:
        index = 0
        boundary = self.start + self.interval
        current: List[T] = []
        for timestamp, item in stream:
            if timestamp < self.start:
                raise ValueError(
                    f"timestamp {timestamp} precedes stream start {self.start}"
                )
            while timestamp >= boundary:
                yield MicroBatch(index, boundary - self.interval, self.interval, tuple(current))
                current = []
                index += 1
                boundary += self.interval
            current.append(item)
        if current:
            yield MicroBatch(index, boundary - self.interval, self.interval, tuple(current))

    def batches_columnar(self, batch) -> Iterator[MicroBatch[T]]:
        """Columnar counterpart of ``batches`` over a `RecordBatch`.

        Batch boundaries come from ``searchsorted`` on the cached timestamp
        column instead of a per-item accumulation loop, and each
        micro-batch's ``items`` is a zero-copy
        `repro.core.records.ColumnSlice` view.  Boundary arithmetic is the
        *same accumulated* ``boundary += interval`` float sequence as the
        per-item loop, so batch indices, starts, ends — and therefore every
        downstream pane fire — are bitwise identical.  Empty intervals are
        emitted, a trailing partial batch only when non-empty, and a
        timestamp before ``start`` raises, exactly as in ``batches``.
        """
        from ...core._vector import np as _np

        ts = batch.ts
        n = len(batch)
        if n and float(ts.min()) < self.start:
            raise ValueError(
                f"timestamp {float(ts.min())} precedes stream start {self.start}"
            )
        index = 0
        boundary = self.start + self.interval
        pos = 0
        while pos < n:
            end_idx = int(_np.searchsorted(ts, boundary, side="left"))
            if end_idx < n:
                yield MicroBatch(
                    index,
                    boundary - self.interval,
                    self.interval,
                    batch.item_slice(pos, end_idx),
                )
                pos = end_idx
                index += 1
                boundary += self.interval
            else:
                yield MicroBatch(
                    index,
                    boundary - self.interval,
                    self.interval,
                    batch.item_slice(pos, n),
                )
                pos = n


class SlidingWindower(Generic[T]):
    """Group micro-batches into sliding windows of ``length`` every ``slide``.

    Both parameters must be positive multiples of the batch interval (the
    same restriction Spark Streaming imposes).  A pane is emitted as soon as
    the batch closing it has been produced; early panes (before one full
    window has elapsed) cover only the available prefix, as in the paper's
    experiments which start reporting from the first slide.
    """

    def __init__(self, length: float, slide: float, batch_interval: float) -> None:
        for name, value in (("length", length), ("slide", slide)):
            if value <= 0:
                raise ValueError(f"window {name} must be positive, got {value}")
            ratio = value / batch_interval
            if abs(ratio - round(ratio)) > 1e-9:
                raise ValueError(
                    f"window {name} ({value}) must be a multiple of the "
                    f"batch interval ({batch_interval})"
                )
        self.length = length
        self.slide = slide
        self.batch_interval = batch_interval
        self._batches_per_window = int(round(length / batch_interval))
        self._batches_per_slide = int(round(slide / batch_interval))

    def panes(
        self, batches: Iterable[MicroBatch[T]]
    ) -> Iterator[WindowPane[T]]:
        history: List[MicroBatch[T]] = []
        for batch in batches:
            history.append(batch)
            if (batch.index + 1) % self._batches_per_slide == 0:
                window = history[-self._batches_per_window:]
                yield WindowPane(
                    end=batch.end, length=self.length, batches=tuple(window)
                )
            # Trim history to what future windows can still need.
            if len(history) > self._batches_per_window:
                del history[: len(history) - self._batches_per_window]
