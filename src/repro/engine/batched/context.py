"""StreamingContext — wiring for the batched (Spark-Streaming-like) engine.

Owns the `SimulatedCluster` and the batching/windowing parameters, and
offers the two entry points the systems need:

* ``rdd_of(items)`` — materialise a micro-batch as a `MiniRDD`, paying
  batch-formation costs for every item (the native / SRS / STS path), and
* ``rdd_of_presampled(items, skipped)`` — materialise an RDD from items
  that were sampled *before* RDD formation (the StreamApprox path,
  §4.2.1): only the kept items pay the copy, while the ``skipped`` ones
  were touched solely by the sampler.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TypeVar

from ..cluster import SimulatedCluster
from ..costs import CostProfile
from .dstream import Batcher, SlidingWindower
from .rdd import MiniRDD

T = TypeVar("T")

__all__ = ["StreamingContext"]


class StreamingContext:
    """Configuration + cluster handle for one batched-streaming run."""

    def __init__(
        self,
        batch_interval: float = 1.0,
        nodes: int = 1,
        cores_per_node: int = 8,
        costs: Optional[CostProfile] = None,
    ) -> None:
        if batch_interval <= 0:
            raise ValueError("batch_interval must be positive")
        self.batch_interval = batch_interval
        self.cluster = SimulatedCluster(
            nodes=nodes, cores_per_node=cores_per_node, costs=costs
        )

    def batcher(self, start: float = 0.0) -> Batcher:
        return Batcher(self.batch_interval, start=start)

    def windower(self, length: float, slide: float) -> SlidingWindower:
        return SlidingWindower(length, slide, self.batch_interval)

    def rdd_of(self, items: Sequence[T]) -> MiniRDD[T]:
        """Form an RDD from a full micro-batch (all items pay the copy)."""
        self.cluster.ingest_items(len(items))
        return MiniRDD.parallelize(self.cluster, items)

    def chunks_of(self, items: Sequence[T], chunk_size: int = 0) -> List[Sequence[T]]:
        """Split a micro-batch into the chunks the vectorized samplers eat.

        With ``chunk_size == 0`` the chunks mirror the RDD partitioning this
        batch *would* get (one block of ``costs.partition_size`` items per
        partition, at least one chunk per core) — "RDD partitions become
        chunks".  An explicit ``chunk_size`` overrides the block size, e.g.
        from `repro.system.config.SystemConfig.chunk_size`.
        """
        n = len(items)
        if n == 0:
            return []
        if chunk_size <= 0:
            blocks = -(-n // self.cluster.costs.partition_size)  # ceil
            parts = max(1, self.cluster.total_cores, blocks)
            chunk_size = -(-n // parts)
        return [items[i : i + chunk_size] for i in range(0, n, chunk_size)]

    def rdd_of_presampled(
        self, items: Sequence[T], skipped: int
    ) -> MiniRDD[T]:
        """Form an RDD from an already-sampled batch.

        ``skipped`` items were read off the stream and dropped by the
        on-the-fly sampler before RDD formation; they pay ingest (and the
        caller pays the sampler's per-item cost) but never the RDD copy —
        the structural saving behind Figure 4c.
        """
        self.cluster.ingest_items(len(items) + skipped)
        return MiniRDD.parallelize(self.cluster, items)
