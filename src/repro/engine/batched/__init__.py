"""Batched stream processing — the Spark-Streaming-like substrate."""

from .context import StreamingContext
from .dstream import Batcher, MicroBatch, SlidingWindower, WindowPane
from .rdd import MiniRDD

__all__ = [
    "Batcher",
    "MicroBatch",
    "MiniRDD",
    "SlidingWindower",
    "StreamingContext",
    "WindowPane",
]
