"""MiniRDD — a from-scratch micro-batch data-parallel dataset.

A faithful-in-structure miniature of Spark's Resilient Distributed Datasets
[46]: an immutable, partitioned collection with *lazy* transformations
recorded as a lineage DAG and *actions* that launch a job.  What matters for
the reproduction is the cost structure, so every operation charges the
`SimulatedCluster`:

* creating an RDD pays per-RDD bookkeeping and a per-item batch-formation
  copy (this is the overhead StreamApprox avoids by sampling *before*
  forming RDDs, §4.2.1),
* an action launches a job plus one task per partition,
* ``groupByKey`` / ``reduceByKey`` / ``sortBy`` shuffle items across
  partitions and synchronise workers with a barrier,
* ``sample`` / ``sampleByKey`` run the Spark sampling algorithms of
  `repro.sampling` and charge their key-assignment and sort work.

The data itself is computed eagerly per-partition at action time, walking
the lineage — narrow transformations are pipelined within a partition (one
pass, no materialisation), exactly like Spark stages.
"""

from __future__ import annotations

import math
import random
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ...sampling.srs import ScaSRSSampler
from ...sampling.sts import StratifiedSampler
from ..cluster import SimulatedCluster

T = TypeVar("T")
U = TypeVar("U")
K = Hashable
V = TypeVar("V")

__all__ = ["MiniRDD"]


class MiniRDD(Generic[T]):
    """A partitioned, lazily transformed, cost-accounted dataset.

    Do not construct directly — use ``MiniRDD.parallelize`` or the
    transformation methods, which thread the owning cluster through the
    lineage.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        compute: Callable[[], List[List[T]]],
        num_partitions: int,
        charge_formation: int = 0,
    ) -> None:
        self._cluster = cluster
        self._compute = compute
        self.num_partitions = num_partitions
        self._cached: Optional[List[List[T]]] = None
        cluster.create_rdd()
        if charge_formation:
            cluster.form_batch(charge_formation)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def parallelize(
        cluster: SimulatedCluster,
        data: Sequence[T],
        num_partitions: Optional[int] = None,
    ) -> "MiniRDD[T]":
        """Materialise a local collection as an RDD (charges batch formation).

        The default partition count follows Spark: at least one per core,
        more for large collections (one per ``partition_size`` block) —
        which is why bigger RDDs schedule more tasks, the overhead
        StreamApprox trims by sampling before RDD formation.
        """
        # Sequences (lists, tuples, the columnar views of
        # `repro.core.records`) are partitioned in place — no wholesale
        # copy; only true iterators are materialised first.
        items = data if hasattr(data, "__len__") else list(data)
        if num_partitions:
            parts = num_partitions
        else:
            blocks = -(-len(items) // cluster.costs.partition_size)  # ceil
            parts = max(1, cluster.total_cores, blocks)
        partitions = _split(items, parts)
        return MiniRDD(
            cluster,
            compute=lambda: partitions,
            num_partitions=parts,
            charge_formation=len(items),
        )

    # -- lineage execution ------------------------------------------------------

    def _partitions(self) -> List[List[T]]:
        if self._cached is None:
            self._cached = self._compute()
        return self._cached

    def _derive(
        self,
        fn: Callable[[List[List[T]]], List[List[U]]],
        num_partitions: Optional[int] = None,
    ) -> "MiniRDD[U]":
        parent = self

        def compute() -> List[List[U]]:
            return fn(parent._partitions())

        return MiniRDD(
            self._cluster,
            compute=compute,
            num_partitions=num_partitions or self.num_partitions,
        )

    # -- narrow transformations (pipelined, no shuffle) --------------------------

    def map(self, fn: Callable[[T], U]) -> "MiniRDD[U]":
        return self._derive(lambda parts: [[fn(x) for x in p] for p in parts])

    def filter(self, pred: Callable[[T], bool]) -> "MiniRDD[T]":
        return self._derive(lambda parts: [[x for x in p if pred(x)] for p in parts])

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "MiniRDD[U]":
        return self._derive(
            lambda parts: [[y for x in p for y in fn(x)] for p in parts]
        )

    def map_partitions(
        self, fn: Callable[[List[T]], Iterable[U]]
    ) -> "MiniRDD[U]":
        return self._derive(lambda parts: [list(fn(p)) for p in parts])

    def glom(self) -> "MiniRDD[List[T]]":
        """Coalesce each partition into a single list element (Spark's glom).

        This is how the batched engine exposes partitions as *chunks*: a
        downstream map over a glommed RDD sees one list per partition and
        can hand it to the vectorized chunk samplers
        (`repro.core.oasrs.OASRSSampler.process_chunk` and friends) instead
        of iterating item by item.
        """
        return self._derive(
            lambda parts: [[list(p)] for p in parts], num_partitions=self.num_partitions
        )

    def union(self, other: "MiniRDD[T]") -> "MiniRDD[T]":
        parent = self

        def compute() -> List[List[T]]:
            return parent._partitions() + other._partitions()

        return MiniRDD(
            self._cluster,
            compute=compute,
            num_partitions=self.num_partitions + other.num_partitions,
        )

    # -- wide transformations (shuffle + barrier) ---------------------------------

    def group_by_key(self: "MiniRDD[Tuple[K, V]]") -> "MiniRDD[Tuple[K, List[V]]]":
        """Hash-partition by key; shuffles every item and synchronises."""
        cluster = self._cluster
        parent = self

        def compute() -> List[List[Tuple[K, List[V]]]]:
            parts = parent._partitions()
            n_items = sum(len(p) for p in parts)
            cluster.shuffle_items(n_items)
            cluster.barrier()
            groups: Dict[K, List[V]] = {}
            for p in parts:
                for key, value in p:
                    groups.setdefault(key, []).append(value)
            out = [(k, vs) for k, vs in groups.items()]
            return _split(out, parent.num_partitions)

        return MiniRDD(cluster, compute=compute, num_partitions=self.num_partitions)

    def reduce_by_key(
        self: "MiniRDD[Tuple[K, V]]", fn: Callable[[V, V], V]
    ) -> "MiniRDD[Tuple[K, V]]":
        """Map-side combine then shuffle only the partials (cheaper than groupBy)."""
        cluster = self._cluster
        parent = self

        def compute() -> List[List[Tuple[K, V]]]:
            parts = parent._partitions()
            partials: List[Dict[K, V]] = []
            for p in parts:
                local: Dict[K, V] = {}
                for key, value in p:
                    local[key] = fn(local[key], value) if key in local else value
                partials.append(local)
            cluster.shuffle_items(sum(len(d) for d in partials))
            cluster.barrier()
            merged: Dict[K, V] = {}
            for local in partials:
                for key, value in local.items():
                    merged[key] = fn(merged[key], value) if key in merged else value
            return _split(list(merged.items()), parent.num_partitions)

        return MiniRDD(cluster, compute=compute, num_partitions=self.num_partitions)

    def sort_by(self, key_fn: Callable[[T], object]) -> "MiniRDD[T]":
        """Full sort: shuffles everything and pays n log2 n comparisons."""
        cluster = self._cluster
        parent = self

        def compute() -> List[List[T]]:
            parts = parent._partitions()
            flat = [x for p in parts for x in p]
            cluster.shuffle_items(len(flat))
            cluster.barrier()
            if len(flat) > 1:
                cluster.sort(len(flat) * math.log2(len(flat)))
            flat.sort(key=key_fn)
            return _split(flat, parent.num_partitions)

        return MiniRDD(cluster, compute=compute, num_partitions=self.num_partitions)

    # -- Spark sampling operators --------------------------------------------------

    def sample(
        self,
        fraction: float,
        rng: Optional[random.Random] = None,
        chunked: bool = False,
    ) -> "MiniRDD[T]":
        """Spark ``sample``: per-partition ScaSRS; charges keys + waitlist sort.

        With ``chunked=True`` each partition runs through the vectorized
        `ScaSRSSampler.sample_fraction_chunk` fast path ("partitions become
        chunks"): one batched RNG draw per partition instead of one call
        per item, identical selection semantics and cost profile.
        """
        cluster = self._cluster
        parent = self
        sampler = ScaSRSSampler(rng=rng)
        draw = sampler.sample_fraction_chunk if chunked else sampler.sample_fraction

        def compute() -> List[List[T]]:
            parts = parent._partitions()
            out: List[List[T]] = []
            for p in parts:
                cluster.sample_items(len(p), "srs")
                result = draw(p, fraction)
                cluster.sort(result.sort_work)
                out.append(result.items)
            return out

        return MiniRDD(cluster, compute=compute, num_partitions=self.num_partitions)

    def sample_by_key(
        self: "MiniRDD[Tuple[K, V]]",
        fractions,
        key_fn: Optional[Callable] = None,
        exact: bool = True,
        rng: Optional[random.Random] = None,
        chunked: bool = False,
    ) -> "MiniRDD[Tuple[K, V]]":
        """Spark ``sampleByKey(Exact)``: groupBy shuffle + per-stratum SRS.

        Charges the shuffle of every item, the per-stratum sorts, and the
        synchronization barriers the exact variant needs — the §4.1
        bottleneck Figure 4 measures.  With ``chunked=True`` the batch is
        consumed partition-by-partition through the vectorized
        `StratifiedSampler.sample_by_key_chunked` path (same samples,
        weights, and cost profile).
        """
        cluster = self._cluster
        parent = self
        sampler = StratifiedSampler(exact=exact, workers=cluster.nodes, rng=rng)
        kf = key_fn if key_fn is not None else (lambda kv: kv[0])

        def compute() -> List[List[Tuple[K, V]]]:
            parts = parent._partitions()
            n_items = sum(len(p) for p in parts)
            cluster.sample_items(n_items, "sts")
            if chunked:
                result = sampler.sample_by_key_chunked(parts, kf, fractions)
            else:
                flat = [x for p in parts for x in p]
                result = sampler.sample_by_key(flat, kf, fractions)
            cluster.shuffle_items(result.shuffled_items)
            for _ in range(result.sync_barriers):
                cluster.barrier()
            cluster.sort(result.sort_work)
            return _split(result.items, parent.num_partitions)

        return MiniRDD(cluster, compute=compute, num_partitions=self.num_partitions)

    # -- actions (launch a job) ------------------------------------------------------

    def _run_job(self) -> List[List[T]]:
        self._cluster.launch_job()
        self._cluster.launch_tasks(self.num_partitions)
        return self._partitions()

    def collect(self) -> List[T]:
        return [x for p in self._run_job() for x in p]

    def count(self) -> int:
        return sum(len(p) for p in self._run_job())

    def reduce(self, fn: Callable[[T, T], T]) -> T:
        items = self.collect()
        if not items:
            raise ValueError("reduce of an empty RDD")
        acc = items[0]
        for x in items[1:]:
            acc = fn(acc, x)
        return acc

    def take(self, n: int) -> List[T]:
        out: List[T] = []
        for p in self._run_job():
            for x in p:
                if len(out) >= n:
                    return out
                out.append(x)
        return out

    def process_all(self) -> int:
        """Run the user query over every item: the dominant per-item cost.

        Returns the number of items processed.  Engines call this to charge
        the query execution itself (map/filter closures above are assumed to
        be part of the same fused stage).
        """
        n = sum(len(p) for p in self._run_job())
        self._cluster.process_items(n)
        return n


def _split(items: Sequence[T], parts: int) -> List[Sequence[T]]:
    """Round-robin split preserving total order within each partition.

    Implemented as strided slices — ``items[p::parts]`` holds exactly the
    items a per-item ``out[i % parts].append(item)`` loop would give
    partition ``p``.  Plain lists yield list partitions as before; the
    columnar views of `repro.core.records` yield strided sub-views, so
    partitioning a column-backed batch copies nothing.
    """
    parts = max(1, parts)
    return [items[p::parts] for p in range(parts)]
