"""Pipelined stream processing — the Flink-like substrate."""

from .dataflow import Pipeline
from .operators import (
    CollectSink,
    FilterOperator,
    MapOperator,
    OASRSSampleOperator,
    Operator,
    ProcessSink,
    SourceOperator,
)
from .windowing import SampleWindowOperator, SlidingWindowOperator

__all__ = [
    "CollectSink",
    "FilterOperator",
    "MapOperator",
    "OASRSSampleOperator",
    "Operator",
    "Pipeline",
    "ProcessSink",
    "SampleWindowOperator",
    "SlidingWindowOperator",
    "SourceOperator",
]
