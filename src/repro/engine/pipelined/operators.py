"""Push-based dataflow operators for the pipelined (Flink-like) engine.

In the pipelined model each data item is forwarded to the next operator the
moment it is ready — no micro-batch is ever formed (§2.2).  Operators form
a chain (a linear DAG suffices for every pipeline in the paper); each
implements ``on_item(timestamp, item)`` and pushes results downstream, plus
``on_watermark(timestamp)`` which signals that event time has advanced
(used by windowed operators to fire panes).

Costs: the source charges per-item ingest, ``MapOperator``/''FilterOperator``
charge nothing extra (fused into processing), the sink charges the per-item
query-processing cost for every item that reaches it, and
``OASRSSampleOperator`` charges the O(1) reservoir offer for every item it
*sees* — sampled-out items never reach the sink, which is exactly the
pipelined saving of Flink-based StreamApprox.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Generic, List, Optional, Tuple, TypeVar

from ..cluster import SimulatedCluster

T = TypeVar("T")
U = TypeVar("U")

__all__ = [
    "ChargeOperator",
    "Operator",
    "SourceOperator",
    "MapOperator",
    "FilterOperator",
    "OASRSSampleOperator",
    "ProcessSink",
    "CollectSink",
]


class Operator(Generic[T]):
    """Base class: a stage with one downstream consumer.

    Operators receive records via ``on_item`` (one record) or ``on_chunk``
    (a run of consecutive records sharing one delivery).  The default
    ``on_chunk`` falls back to the per-item path, so existing operators keep
    working unchanged under chunked execution; chunk-aware operators
    override it (and forward with ``emit_chunk``) to amortise per-record
    overhead — the pipelined half of the vectorized chunk API.
    """

    def __init__(self) -> None:
        self._downstream: Optional["Operator"] = None

    def connect(self, downstream: "Operator[U]") -> "Operator[U]":
        self._downstream = downstream
        return downstream

    def emit(self, timestamp: float, item: T) -> None:
        if self._downstream is not None:
            self._downstream.on_item(timestamp, item)

    def emit_chunk(self, timestamps: List[float], items: List[T]) -> None:
        if self._downstream is not None and items:
            self._downstream.on_chunk(timestamps, items)

    def emit_watermark(self, timestamp: float) -> None:
        if self._downstream is not None:
            self._downstream.on_watermark(timestamp)

    def on_item(self, timestamp: float, item: T) -> None:
        raise NotImplementedError

    def on_chunk(self, timestamps: List[float], items: List[T]) -> None:
        """Receive a run of records; default = per-item fallback."""
        for timestamp, item in zip(timestamps, items):
            self.on_item(timestamp, item)

    def on_watermark(self, timestamp: float) -> None:
        self.emit_watermark(timestamp)

    def on_close(self) -> None:
        if self._downstream is not None:
            self._downstream.on_close()


class SourceOperator(Operator[T]):
    """Entry point: charges ingest and forwards items + watermarks."""

    def __init__(self, cluster: SimulatedCluster) -> None:
        super().__init__()
        self._cluster = cluster

    def on_item(self, timestamp: float, item: T) -> None:
        self._cluster.ingest_items(1)
        self.emit(timestamp, item)

    def on_chunk(self, timestamps: List[float], items: List[T]) -> None:
        self._cluster.ingest_items(len(items))
        self.emit_chunk(timestamps, items)


class MapOperator(Operator[T]):
    def __init__(self, fn: Callable[[T], U]) -> None:
        super().__init__()
        self._fn = fn

    def on_item(self, timestamp: float, item: T) -> None:
        self.emit(timestamp, self._fn(item))

    def on_chunk(self, timestamps: List[float], items: List[T]) -> None:
        fn = self._fn
        self.emit_chunk(timestamps, [fn(item) for item in items])


class FilterOperator(Operator[T]):
    def __init__(self, pred: Callable[[T], bool]) -> None:
        super().__init__()
        self._pred = pred

    def on_item(self, timestamp: float, item: T) -> None:
        if self._pred(item):
            self.emit(timestamp, item)

    def on_chunk(self, timestamps: List[float], items: List[T]) -> None:
        pred = self._pred
        kept_ts: List[float] = []
        kept: List[T] = []
        for timestamp, item in zip(timestamps, items):
            if pred(item):
                kept_ts.append(timestamp)
                kept.append(item)
        self.emit_chunk(kept_ts, kept)


class OASRSSampleOperator(Operator[T]):
    """The sampling operator the paper adds to Flink (§4.2.2).

    Wraps an `OASRSSampler` (duck-typed: needs ``offer`` and
    ``close_interval``).  Items are offered on the fly; on each watermark
    crossing a slide boundary the interval closes and the resulting
    `WeightedSample` is pushed downstream as a single record — the windowed
    aggregation below it then sees one pre-weighted sample per slide.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        sampler,
        slide: float,
        start: float = 0.0,
    ) -> None:
        super().__init__()
        if slide <= 0:
            raise ValueError("slide must be positive")
        self._cluster = cluster
        self._sampler = sampler
        self._slide = slide
        self._next_fire = start + slide

    def on_item(self, timestamp: float, item: T) -> None:
        self._cluster.sample_items(1, "oasrs")
        self._sampler.offer(item)

    def on_chunk(self, timestamps: List[float], items: List[T]) -> None:
        """Chunk fast path: close any intervals the chunk spans, then offer
        each intra-interval segment via the sampler's ``process_chunk``.

        Matches per-item semantics exactly: in per-item mode the watermark
        for an item's timestamp arrives *before* the item, so an item lying
        beyond the next fire boundary closes the interval first — here the
        chunk is split at fire boundaries (timestamps are in order) and the
        same close-then-offer order is preserved.
        """
        self._cluster.sample_items(len(items), "oasrs")
        process_chunk = getattr(self._sampler, "process_chunk", None)
        start = 0
        n = len(items)
        while start < n:
            while timestamps[start] >= self._next_fire:
                sample = self._sampler.close_interval()
                self.emit(self._next_fire, sample)
                self._next_fire += self._slide
            end = bisect_left(timestamps, self._next_fire, start)
            segment = items[start:end]
            if process_chunk is not None:
                process_chunk(segment)
            else:
                offer = self._sampler.offer
                for item in segment:
                    offer(item)
            start = end

    def on_watermark(self, timestamp: float) -> None:
        while timestamp >= self._next_fire:
            sample = self._sampler.close_interval()
            self.emit(self._next_fire, sample)
            self._next_fire += self._slide
        self.emit_watermark(timestamp)

    def on_close(self) -> None:
        sample = self._sampler.close_interval()
        if sample.total_count:
            self.emit(self._next_fire, sample)
        super().on_close()


class ChargeOperator(Operator[T]):
    """Pass-through stage charging query-processing cost per item.

    ``count_fn`` maps the record to how many logical items it represents —
    1 for plain records, ``sample.total_items`` for a `WeightedSample`
    emitted by the OASRS operator.  Keeping the charge in one explicit stage
    lets windowed operators downstream run with ``charge_processing=False``
    so overlapping panes never double-charge an item.
    """

    def __init__(
        self, cluster: SimulatedCluster, count_fn: Optional[Callable[[T], int]] = None
    ) -> None:
        super().__init__()
        self._cluster = cluster
        self._count_fn = count_fn

    def on_item(self, timestamp: float, item: T) -> None:
        n = 1 if self._count_fn is None else self._count_fn(item)
        self._cluster.process_items(n)
        self.emit(timestamp, item)

    def on_chunk(self, timestamps: List[float], items: List[T]) -> None:
        count_fn = self._count_fn
        if count_fn is None:
            n = len(items)
        else:
            n = sum(count_fn(item) for item in items)
        self._cluster.process_items(n)
        self.emit_chunk(timestamps, items)


class ProcessSink(Operator[T]):
    """Terminal stage charging the per-item query cost; collects results."""

    def __init__(self, cluster: SimulatedCluster, fn: Optional[Callable[[T], U]] = None) -> None:
        super().__init__()
        self._cluster = cluster
        self._fn = fn
        self.results: List[Tuple[float, object]] = []

    def on_item(self, timestamp: float, item: T) -> None:
        self._cluster.process_items(1)
        value = self._fn(item) if self._fn is not None else item
        self.results.append((timestamp, value))


class CollectSink(Operator[T]):
    """Terminal stage that records items without charging processing."""

    def __init__(self) -> None:
        super().__init__()
        self.results: List[Tuple[float, T]] = []

    def on_item(self, timestamp: float, item: T) -> None:
        self.results.append((timestamp, item))
