"""Dataflow assembly and execution for the pipelined engine.

`Pipeline` is a small fluent builder over the operator classes: start from
``Pipeline(cluster)``, chain stages, finish with a sink, then ``run`` a
time-ordered ``(timestamp, item)`` stream through it.  Watermarks are
generated from the item timestamps themselves (perfect watermarks — the
paper's experiments use in-order replay, so no out-of-orderness model is
needed; the operator API supports it if one is added).

Unlike the batched engine there is no job scheduling, no RDD formation and
no barrier anywhere on this path — the structural reason Flink-based
StreamApprox posts the highest throughput in every figure.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple, TypeVar

from ..cluster import SimulatedCluster
from .operators import (
    ChargeOperator,
    CollectSink,
    FilterOperator,
    MapOperator,
    OASRSSampleOperator,
    Operator,
    ProcessSink,
    SourceOperator,
)
from .windowing import SampleWindowOperator, SlidingWindowOperator

T = TypeVar("T")

__all__ = ["Pipeline"]


class Pipeline:
    """Fluent builder + runner for a linear pipelined dataflow."""

    def __init__(self, cluster: SimulatedCluster) -> None:
        self.cluster = cluster
        self._source = SourceOperator(cluster)
        self._tail: Operator = self._source
        self._sink: Optional[Operator] = None

    def _append(self, op: Operator) -> "Pipeline":
        if self._sink is not None:
            raise RuntimeError("pipeline already terminated by a sink")
        self._tail.connect(op)
        self._tail = op
        return self

    # -- stages ----------------------------------------------------------------

    def map(self, fn: Callable) -> "Pipeline":
        return self._append(MapOperator(fn))

    def filter(self, pred: Callable) -> "Pipeline":
        return self._append(FilterOperator(pred))

    def charge(self, count_fn: Optional[Callable] = None) -> "Pipeline":
        """Charge per-item query-processing cost at this point of the flow."""
        return self._append(ChargeOperator(self.cluster, count_fn))

    def sample_oasrs(self, sampler, slide: float, start: float = 0.0) -> "Pipeline":
        """Insert the paper's OASRS sampling operator (§4.2.2)."""
        return self._append(
            OASRSSampleOperator(self.cluster, sampler, slide=slide, start=start)
        )

    def window(
        self,
        length: float,
        slide: float,
        aggregate: Callable,
        start: float = 0.0,
        charge_processing: bool = True,
        preload: Optional[List[Tuple[float, object]]] = None,
    ) -> "Pipeline":
        return self._append(
            SlidingWindowOperator(
                self.cluster,
                length=length,
                slide=slide,
                aggregate=aggregate,
                start=start,
                charge_processing=charge_processing,
                preload=preload,
            )
        )

    def window_samples(
        self,
        intervals_per_window: int,
        aggregate: Callable,
        charge_processing: bool = True,
        preload: Optional[List[Tuple[float, object]]] = None,
        state_hook: Optional[Callable] = None,
    ) -> "Pipeline":
        return self._append(
            SampleWindowOperator(
                self.cluster,
                intervals_per_window,
                aggregate,
                charge_processing,
                preload=preload,
                state_hook=state_hook,
            )
        )

    # -- sinks -------------------------------------------------------------------

    def sink_process(self, fn: Optional[Callable] = None) -> "Pipeline":
        """Terminal stage that charges per-item processing cost."""
        sink = ProcessSink(self.cluster, fn)
        self._append(sink)
        self._sink = sink
        return self

    def sink_collect(self) -> "Pipeline":
        """Terminal stage that records results without processing cost."""
        sink = CollectSink()
        self._append(sink)
        self._sink = sink
        return self

    # -- execution ------------------------------------------------------------------

    def run(
        self,
        stream: Iterable[Tuple[float, T]],
        chunk_size: int = 0,
        columnar: bool = False,
    ) -> List[Tuple[float, object]]:
        """Push a time-ordered stream through; return the sink's results.

        With ``chunk_size > 1`` consecutive records are delivered as chunks
        through the operators' ``on_chunk`` fast path; watermarks advance at
        chunk granularity, and time-sensitive operators (the OASRS sampling
        operator) split chunks at their own fire boundaries, so results are
        identical to per-item execution — only the per-record Python
        overhead is amortised.

        ``columnar=True`` (set by the driver for canonical queries over a
        column-backed `repro.core.records.RecordBatch`) delivers each chunk
        as a zero-copy column view instead of buffering per item; chunk
        boundaries, watermarks, and results are identical.
        """
        if self._sink is None:
            raise RuntimeError("pipeline has no sink; call sink_process/sink_collect")
        if chunk_size and chunk_size > 1:
            if columnar and getattr(stream, "has_columns", False):
                return self._run_chunked_columnar(stream, chunk_size)
            return self._run_chunked(stream, chunk_size)
        last_ts = None
        for timestamp, item in stream:
            if last_ts is not None and timestamp < last_ts:
                raise ValueError(
                    f"stream is not time-ordered: {timestamp} after {last_ts}"
                )
            # Watermark first so windows covering (last_ts, timestamp] fire
            # before the new item is added.
            self._source.on_watermark(timestamp)
            self._source.on_item(timestamp, item)
            last_ts = timestamp
        if last_ts is not None:
            self._source.on_watermark(last_ts + 1e-9)
        self._source.on_close()
        return list(self._sink.results)  # type: ignore[attr-defined]

    def _run_chunked(
        self, stream: Iterable[Tuple[float, T]], chunk_size: int
    ) -> List[Tuple[float, object]]:
        buf_ts: List[float] = []
        buf_items: List[T] = []
        last_ts = None

        def flush() -> None:
            # Watermark advances to the chunk's first timestamp, then the
            # chunk is delivered whole; chunk-aware operators handle any
            # intra-chunk boundaries themselves.
            self._source.on_watermark(buf_ts[0])
            self._source.on_chunk(buf_ts.copy(), buf_items.copy())
            buf_ts.clear()
            buf_items.clear()

        for timestamp, item in stream:
            if last_ts is not None and timestamp < last_ts:
                raise ValueError(
                    f"stream is not time-ordered: {timestamp} after {last_ts}"
                )
            buf_ts.append(timestamp)
            buf_items.append(item)
            last_ts = timestamp
            if len(buf_items) >= chunk_size:
                flush()
        if buf_items:
            flush()
        if last_ts is not None:
            self._source.on_watermark(last_ts + 1e-9)
        self._source.on_close()
        return list(self._sink.results)  # type: ignore[attr-defined]

    def _run_chunked_columnar(
        self, batch, chunk_size: int
    ) -> List[Tuple[float, object]]:
        """Chunked run over a column-backed batch: no per-item buffering.

        Chunks are exactly the ``[i, i + chunk_size)`` runs the buffering
        loop of ``_run_chunked`` flushes; timestamps are materialised per
        chunk via ``tolist()`` (Python floats, bit-identical to the stream's
        own), and item payloads stay zero-copy
        `repro.core.records.ColumnSlice` views until an operator touches
        individual items.
        """
        source = self._source
        ts_col = batch.ts
        n = len(batch)
        if n > 1 and bool((ts_col[1:] < ts_col[:-1]).any()):
            raise ValueError("stream is not time-ordered")
        for i in range(0, n, chunk_size):
            j = min(i + chunk_size, n)
            chunk_ts = ts_col[i:j].tolist()
            source.on_watermark(chunk_ts[0])
            source.on_chunk(chunk_ts, batch.item_slice(i, j))
        if n:
            source.on_watermark(float(ts_col[n - 1]) + 1e-9)
        source.on_close()
        return list(self._sink.results)  # type: ignore[attr-defined]
