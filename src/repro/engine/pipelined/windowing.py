"""Event-time sliding windows for the pipelined engine.

Implements the time-based sliding-window computation both stream models
support (§2.2): a window of ``length`` seconds evaluated every ``slide``
seconds.  The operator buffers items with their event timestamps and fires
a pane whenever the watermark passes a slide boundary, evicting items older
than the window start — the standard Flink sliding-window semantics
restricted to what the paper's queries need (per-pane aggregation of the
items, or of pre-weighted OASRS samples, inside the window).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generic, List, Optional, Sequence, Tuple, TypeVar

from ..cluster import SimulatedCluster
from .operators import Operator

T = TypeVar("T")
A = TypeVar("A")

__all__ = ["SlidingWindowOperator", "SampleWindowOperator"]


class SlidingWindowOperator(Operator[T], Generic[T, A]):
    """Buffer items; on each slide boundary emit ``aggregate(window_items)``.

    ``aggregate`` receives the list of ``(timestamp, item)`` pairs currently
    inside ``[fire_time − length, fire_time)`` and its return value is
    emitted downstream stamped with the fire time.  Processing cost for the
    aggregation is charged per buffered item (one pass per pane).

    ``preload`` seeds the buffer with items from before ``start`` — the
    checkpointed window content a resumed run carries across the restart
    so its first panes still cover a full window.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        length: float,
        slide: float,
        aggregate: Callable[[List[Tuple[float, T]]], A],
        start: float = 0.0,
        charge_processing: bool = True,
        preload: Optional[Sequence[Tuple[float, T]]] = None,
    ) -> None:
        super().__init__()
        if length <= 0 or slide <= 0:
            raise ValueError("window length and slide must be positive")
        self._cluster = cluster
        self._length = length
        self._slide = slide
        self._aggregate = aggregate
        self._buffer: Deque[Tuple[float, T]] = deque(preload or ())
        self._next_fire = start + slide
        self._charge = charge_processing

    def on_item(self, timestamp: float, item: T) -> None:
        self._buffer.append((timestamp, item))

    def on_watermark(self, timestamp: float) -> None:
        while timestamp >= self._next_fire:
            self._fire(self._next_fire)
            self._next_fire += self._slide
        self.emit_watermark(timestamp)

    def _fire(self, fire_time: float) -> None:
        window_start = fire_time - self._length
        while self._buffer and self._buffer[0][0] < window_start:
            self._buffer.popleft()
        pane = [(ts, item) for ts, item in self._buffer if ts < fire_time]
        if self._charge:
            self._cluster.process_items(len(pane))
        self.emit(fire_time, self._aggregate(pane))

    def on_close(self) -> None:
        if self._buffer:
            self._fire(self._next_fire)
        super().on_close()


class SampleWindowOperator(Operator[T], Generic[T, A]):
    """Window over *pre-weighted samples* emitted by the OASRS operator.

    Each upstream record is one slide-interval `WeightedSample`; a pane of
    length ``w`` spanning ``k = w / slide`` intervals merges the last ``k``
    samples and aggregates the merge.  Processing is charged per *sampled*
    item only — the pipelined StreamApprox saving.

    ``preload`` seeds the recent-interval deque with checkpointed
    ``(timestamp, sample)`` records so a resumed run's first panes merge
    across the restart boundary; ``state_hook`` (if given) is called after
    every emit with ``(fire_time, recent_records)`` — the checkpoint
    layer's window into pane-boundary state.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        intervals_per_window: int,
        aggregate: Callable[[object], A],
        charge_processing: bool = True,
        preload: Optional[Sequence[Tuple[float, object]]] = None,
        state_hook: Optional[Callable[[float, Tuple[Tuple[float, object], ...]], None]] = None,
    ) -> None:
        super().__init__()
        if intervals_per_window <= 0:
            raise ValueError("intervals_per_window must be positive")
        self._cluster = cluster
        self._k = intervals_per_window
        self._aggregate = aggregate
        self._charge = charge_processing
        self._recent: Deque[Tuple[float, object]] = deque(maxlen=intervals_per_window)
        if preload:
            self._recent.extend(preload)
        self._state_hook = state_hook

    def on_item(self, timestamp: float, sample: object) -> None:
        self._recent.append((timestamp, sample))
        merged = self._recent[0][1]
        for _ts, nxt in list(self._recent)[1:]:
            merged = merged.merge(nxt)  # type: ignore[attr-defined]
        if self._charge:
            self._cluster.process_items(merged.total_items)  # type: ignore[attr-defined]
        self.emit(timestamp, self._aggregate(merged))
        if self._state_hook is not None:
            self._state_hook(timestamp, tuple(self._recent))
