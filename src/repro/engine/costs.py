"""Calibrated cost constants for the simulated cluster.

The paper's throughput/latency numbers come from a 17-node testbed we do
not have.  Instead of wall-clock measurements (which in a Python process
would be dominated by interpreter overhead, not by the structural costs the
paper studies), every engine operation charges a **virtual clock** with a
time that depends on *what the operation structurally does*: items touched,
partitions scheduled, items shuffled, comparisons sorted, barriers crossed.

Calibration targets JVM stream-processing deployments (orders of magnitude
from published Spark/Flink measurements on commodity 8-core nodes):

* pushing one record through a user query, including (de)serialization,
  costs ~10 µs of CPU,
* reading a record off the stream aggregator ~2 µs,
* copying a record into an RDD micro-batch ~3 µs (Spark engines only),
* moving a record through a shuffle ~5 µs,
* one reservoir offer (counter + coin flip) ~1.2 µs; assigning a random
  sort key ~0.6 µs; a sort comparison ~0.25 µs,
* launching a task costs ~1 ms of driver time; a worker barrier ~5 ms.

Only the *ratios* matter for reproducing the paper's shapes; the absolute
scale fixes units (seconds) so simulated throughput lands in the paper's
reported range (10⁵–10⁷ items/s depending on cluster size).

Everything is exposed as one frozen `CostProfile` so ablations can run the
same benchmark under different assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostProfile", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostProfile:
    """Seconds charged per structural unit of work.

    Attribute groups: per-item costs are divided by the cluster's effective
    parallelism; per-structure costs are serial driver-side time.
    """

    # Per-item costs (parallelisable across cores).
    item_ingest: float = 2.0e-6  # read + deserialize one item from Kafka
    item_process: float = 10.0e-6  # run the user query on one item
    item_batch_form: float = 3.0e-6  # copy one item into an RDD partition
    item_shuffle: float = 5.0e-6  # serialize + move one item in a shuffle
    item_sample_oasrs: float = 1.2e-6  # one reservoir offer (counter + coin)
    item_sample_srs: float = 0.6e-6  # assign U(0,1) key + threshold check
    item_sample_sts: float = 0.8e-6  # per-item work of sampleByKey pass
    sort_comparison: float = 0.25e-6  # one comparison in a waitlist sort

    # Per-structure costs (serial, not divided by cores).
    task_schedule: float = 0.15e-3  # driver-side dispatch of one task
    rdd_overhead: float = 0.3e-3  # per-RDD bookkeeping (lineage, blocks)
    barrier_sync: float = 2.0e-3  # one synchronization barrier
    job_launch: float = 0.5e-3  # driver-side job submission

    # Structural parameters.
    partition_size: int = 4096  # records per RDD partition (block size)

    def scaled(self, **overrides: float) -> "CostProfile":
        """A copy with some constants overridden (ablation helper)."""
        return replace(self, **overrides)


DEFAULT_COSTS = CostProfile()
