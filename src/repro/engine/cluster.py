"""Simulated cluster: virtual time, workers/cores, and cost accounting.

`VirtualClock` accumulates simulated seconds; `SimulatedCluster` knows the
cluster shape (nodes × cores) and converts structural work into time:

* ``parallel(seconds_of_work)`` — embarrassingly parallel work is divided
  by the number of cores (data-parallel map/filter/sample phases),
* ``serial(seconds)`` — driver-side or inherently serial work (scheduling,
  job launch, per-RDD bookkeeping),
* ``barrier()`` — a synchronization point among workers; cost grows
  logarithmically with the worker count (tree barrier), which is what makes
  Spark-based STS scale poorly in Figure 6a.

An `ExecutionStats` ledger counts what happened (items, tasks, shuffles,
barriers) so tests can assert on structure and benchmarks can report
throughput = items / elapsed virtual seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from .costs import DEFAULT_COSTS, CostProfile

__all__ = ["VirtualClock", "ExecutionStats", "SimulatedCluster"]


class VirtualClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} seconds")
        self._now += seconds
        return self._now

    def reset(self) -> None:
        self._now = 0.0


@dataclass
class ExecutionStats:
    """Ledger of structural work done on the cluster."""

    items_ingested: int = 0
    items_processed: int = 0
    items_shuffled: int = 0
    items_sampled: int = 0
    tasks_launched: int = 0
    jobs_launched: int = 0
    rdds_created: int = 0
    barriers: int = 0
    sort_comparisons: float = 0.0
    custom: Dict[str, float] = field(default_factory=dict)

    def bump(self, key: str, amount: float = 1.0) -> None:
        self.custom[key] = self.custom.get(key, 0.0) + amount


class SimulatedCluster:
    """A fixed-shape cluster charging virtual time for structural work.

    Parameters
    ----------
    nodes:
        Number of worker nodes.
    cores_per_node:
        Cores per node; the data-parallel speedup factor is
        ``nodes × cores_per_node`` (scaled by ``parallel_efficiency``).
    costs:
        The `CostProfile` to charge against.
    parallel_efficiency:
        Fraction of ideal speedup retained per added core (models stragglers
        and coordination; 1.0 = perfectly linear).
    """

    def __init__(
        self,
        nodes: int = 1,
        cores_per_node: int = 8,
        costs: Optional[CostProfile] = None,
        parallel_efficiency: float = 0.92,
    ) -> None:
        if nodes <= 0 or cores_per_node <= 0:
            raise ValueError("nodes and cores_per_node must be positive")
        if not 0 < parallel_efficiency <= 1:
            raise ValueError("parallel_efficiency must be in (0, 1]")
        self.nodes = nodes
        self.cores_per_node = cores_per_node
        self.costs = costs if costs is not None else DEFAULT_COSTS
        self.parallel_efficiency = parallel_efficiency
        self.clock = VirtualClock()
        self.stats = ExecutionStats()

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    @property
    def effective_parallelism(self) -> float:
        """Amdahl-style effective speedup for data-parallel phases.

        With efficiency e and c cores: 1 + e (c − 1); e = 1 gives c.
        """
        return 1.0 + self.parallel_efficiency * (self.total_cores - 1)

    # -- time charging -------------------------------------------------------

    def parallel(self, work_seconds: float) -> None:
        """Charge data-parallel work, divided across the cluster's cores."""
        if work_seconds < 0:
            raise ValueError("work_seconds must be non-negative")
        self.clock.advance(work_seconds / self.effective_parallelism)

    def serial(self, seconds: float) -> None:
        """Charge inherently serial (driver-side) time."""
        self.clock.advance(seconds)

    def barrier(self) -> None:
        """Charge one tree barrier across all workers (cost ∝ log2 nodes)."""
        fan_in = max(2.0, float(self.nodes))
        self.clock.advance(self.costs.barrier_sync * math.log2(fan_in))
        self.stats.barriers += 1

    # -- structural events ----------------------------------------------------

    def ingest_items(self, n: int) -> None:
        self.stats.items_ingested += n
        self.parallel(n * self.costs.item_ingest)

    def process_items(self, n: int) -> None:
        self.stats.items_processed += n
        self.parallel(n * self.costs.item_process)

    def form_batch(self, n: int) -> None:
        """Copy ``n`` items into RDD partitions (batched engines only)."""
        self.parallel(n * self.costs.item_batch_form)

    def shuffle_items(self, n: int) -> None:
        self.stats.items_shuffled += n
        self.parallel(n * self.costs.item_shuffle)

    def sample_items(self, n: int, kind: str) -> None:
        """Charge the per-item sampling cost of the named algorithm."""
        per_item = {
            "oasrs": self.costs.item_sample_oasrs,
            "srs": self.costs.item_sample_srs,
            "sts": self.costs.item_sample_sts,
        }.get(kind)
        if per_item is None:
            raise ValueError(f"unknown sampling kind {kind!r}")
        self.stats.items_sampled += n
        self.parallel(n * per_item)

    def sort(self, comparisons: float) -> None:
        self.stats.sort_comparisons += comparisons
        self.parallel(comparisons * self.costs.sort_comparison)

    def launch_tasks(self, n: int) -> None:
        self.stats.tasks_launched += n
        # Task launches are pipelined by the scheduler but fundamentally
        # serialised through the driver.
        self.serial(n * self.costs.task_schedule)

    def launch_job(self) -> None:
        self.stats.jobs_launched += 1
        self.serial(self.costs.job_launch)

    def create_rdd(self) -> None:
        self.stats.rdds_created += 1
        self.serial(self.costs.rdd_overhead)

    # -- reporting -------------------------------------------------------------

    def elapsed(self) -> float:
        """Virtual seconds consumed so far."""
        return self.clock.now

    def reset(self) -> None:
        self.clock.reset()
        self.stats = ExecutionStats()

    def throughput(self, items: int) -> float:
        """Items per virtual second (0 when no time was consumed)."""
        t = self.elapsed()
        if t <= 0:
            return 0.0
        return items / t
