"""StreamApprox reproduction — approximate computing for stream analytics.

A from-scratch Python implementation of *StreamApprox: Approximate
Computing for Stream Analytics* (Quoc et al., Middleware 2017): the OASRS
online adaptive stratified reservoir sampling algorithm, its error-bound
machinery, the batched (Spark-Streaming-like) and pipelined (Flink-like)
stream-processing substrates it runs on, the Spark sampling baselines it
is evaluated against, and the full benchmark harness regenerating every
figure of the paper's evaluation.

Quickstart::

    from repro import (
        FlinkStreamApproxSystem, StreamQuery, SystemConfig, WindowConfig,
    )
    from repro.workloads import stream_by_rates

    stream = stream_by_rates({"A": 800, "B": 200, "C": 10}, duration=60)
    query = StreamQuery(key_fn=lambda it: it[0], value_fn=lambda it: it[1],
                        kind="mean")
    system = FlinkStreamApproxSystem(
        query, WindowConfig(length=10, slide=5),
        SystemConfig(sampling_fraction=0.6),
    )
    report = system.run(stream)
    for pane in report.results:
        print(pane.end, pane.estimate, "±", pane.error.margin)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .core import (
    AccuracyBudget,
    AdaptiveSampleSizeController,
    DistributedOASRS,
    ShardedExecutor,
    ErrorBound,
    FixedPerStratum,
    LatencyBudget,
    OASRSSampler,
    ResourceBudget,
    VirtualCostFunction,
    WaterFillingAllocation,
    WeightedSample,
    approximate_mean,
    approximate_sum,
    estimate_error,
    oasrs_sample,
)
from .runtime import (
    AdaptationPoint,
    BudgetController,
    ExecutionPlan,
    ListSource,
    PlanError,
    PlanSource,
    RunTelemetry,
    SamplingStrategy,
    TelemetryConfig,
    TopicSource,
    available_strategies,
    build_plan,
    execute_plan,
    register_strategy,
)
from .system import (
    ALL_SYSTEMS,
    FlinkStreamApproxSystem,
    NativeFlinkSystem,
    NativeSparkSystem,
    NativeStreamApproxSystem,
    SparkSRSSystem,
    SparkSTSSystem,
    SparkStreamApproxSystem,
    StreamQuery,
    SystemConfig,
    SystemReport,
    WindowConfig,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_SYSTEMS",
    "AccuracyBudget",
    "AdaptationPoint",
    "AdaptiveSampleSizeController",
    "BudgetController",
    "DistributedOASRS",
    "ErrorBound",
    "ExecutionPlan",
    "FixedPerStratum",
    "FlinkStreamApproxSystem",
    "LatencyBudget",
    "ListSource",
    "NativeFlinkSystem",
    "NativeSparkSystem",
    "NativeStreamApproxSystem",
    "OASRSSampler",
    "PlanError",
    "PlanSource",
    "ResourceBudget",
    "RunTelemetry",
    "SamplingStrategy",
    "ShardedExecutor",
    "TelemetryConfig",
    "SparkSRSSystem",
    "SparkSTSSystem",
    "SparkStreamApproxSystem",
    "StreamQuery",
    "SystemConfig",
    "SystemReport",
    "TopicSource",
    "VirtualCostFunction",
    "WaterFillingAllocation",
    "WeightedSample",
    "WindowConfig",
    "approximate_mean",
    "approximate_sum",
    "available_strategies",
    "build_plan",
    "estimate_error",
    "execute_plan",
    "oasrs_sample",
    "register_strategy",
    "__version__",
]
