"""Synthetic NetFlow workload — case study 1 (§6.2).

The paper replays 670 GB of CAIDA 2015 Chicago backbone traces converted
to NetFlow, with 115,472,322 TCP / 67,098,852 UDP / 2,801,002 ICMP flow
records (62.3% / 36.2% / 1.5%), and measures **total traffic size per
protocol per sliding window**.

We cannot ship CAIDA data, so this generator synthesises flow records that
preserve what the query and the sampling algorithms are sensitive to:

* three protocol strata with the paper's exact population mix — including
  the rare ICMP stratum that SRS tends to miss,
* heavy-tailed flow sizes per protocol (log-normal bodies with protocol-
  specific scales; ICMP flows are tiny, TCP flows dominate bytes), matching
  the well-known skew of backbone flow-size distributions,
* flow records shaped like trimmed NetFlow v9 (§6.2 strips ports etc.):
  protocol, byte count, packet count.

The stream item is ``(protocol, FlowRecord)``; the stratum and the group
are both the protocol, and the queried value is ``record.bytes``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from .synthetic import Item  # (source, value-bearing payload) convention

__all__ = [
    "FlowRecord",
    "PROTOCOL_MIX",
    "FLOW_SIZE_PARAMS",
    "generate_flows",
    "netflow_stream",
    "flow_bytes",
    "flow_protocol",
]

# The paper's dataset composition (§6.2), normalised to shares.
_TCP, _UDP, _ICMP = 115_472_322, 67_098_852, 2_801_002
_TOTAL = _TCP + _UDP + _ICMP
PROTOCOL_MIX: Dict[str, float] = {
    "TCP": _TCP / _TOTAL,  # ≈ 0.623
    "UDP": _UDP / _TOTAL,  # ≈ 0.362
    "ICMP": _ICMP / _TOTAL,  # ≈ 0.015
}

# Log-normal flow-size bodies (parameters of underlying normal, in ln-bytes)
# calibrated to backbone-trace shapes: TCP flows median ~2 KB with a heavy
# tail, UDP median ~300 B, ICMP ~80 B and nearly constant.
FLOW_SIZE_PARAMS: Dict[str, Tuple[float, float]] = {
    "TCP": (7.6, 1.8),
    "UDP": (5.7, 1.2),
    "ICMP": (4.4, 0.4),
}


@dataclass(frozen=True)
class FlowRecord:
    """A trimmed NetFlow record (ports/duration removed as in §6.2)."""

    protocol: str
    bytes: int
    packets: int


def flow_bytes(item: Item) -> float:
    """Query value function: traffic bytes of one stream item."""
    return float(item[1].bytes)


def flow_protocol(item: Item) -> Hashable:
    """Stratum/group key function: the flow's protocol."""
    return item[0]


def generate_flows(
    protocol: str, count: int, rng: random.Random
) -> List[FlowRecord]:
    """Synthesise ``count`` flows of one protocol with heavy-tailed sizes."""
    try:
        mu, sigma = FLOW_SIZE_PARAMS[protocol]
    except KeyError:
        raise ValueError(f"unknown protocol {protocol!r}") from None
    flows = []
    for _ in range(count):
        size = max(40, int(rng.lognormvariate(mu, sigma)))
        packets = max(1, size // 800)  # ≈ typical bytes-per-packet
        flows.append(FlowRecord(protocol, size, packets))
    return flows


def netflow_stream(
    total_rate: float,
    duration: float,
    mix: Dict[str, float] = None,
    seed: int = 0,
) -> List[Tuple[float, Item]]:
    """The replayed case-study stream: (timestamp, (protocol, FlowRecord)).

    ``total_rate`` is aggregate flows/second across protocols; each protocol
    arrives at its share of it, so the ICMP sub-stream is sparse exactly as
    in the real trace.
    """
    from ..aggregator.replay import interleave_substreams
    from ..core.records import RecordBatch

    if mix is None:
        mix = PROTOCOL_MIX
    base = random.Random(seed)
    substreams = {}
    for protocol, share in mix.items():
        rate = total_rate * share
        count = int(rate * duration)
        if count == 0:
            continue
        rng = random.Random(base.getrandbits(64))
        flows = generate_flows(protocol, count, rng)
        substreams[protocol] = (rate, [(protocol, f) for f in flows])
    # FlowRecord payloads are not plain floats, so the batch carries only a
    # timestamp column and the runtime reports a columnar fallback.
    return RecordBatch(interleave_substreams(substreams))
