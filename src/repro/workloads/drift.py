"""Non-stationary workloads: sub-stream arrival rates that shift over time.

The paper's central criticism of Spark's stratified sampling (§1) is that
it "does not handle the case where the arrival rate of sub-streams changes
over time because it requires a pre-defined sampling fraction for each
stratum", while OASRS "naturally adapts to varying arrival rates".  The
stationary workloads in `repro.workloads.synthetic` cannot exercise that
difference, so this module generates streams whose per-sub-stream rates
follow a schedule:

* `RateSchedule` — piecewise-constant rates per sub-stream over named
  phases (e.g. A dominates for 20 s, then B takes over),
* `drifting_stream` — renders a schedule into the usual time-ordered
  ``(timestamp, (source, value))`` stream, drawing values from the §5.1
  Gaussian sub-stream specs,
* `flash_crowd_schedule` / `rate_swap_schedule` — the two canonical drift
  shapes: a sudden burst on one sub-stream, and a complete reversal of
  which sub-stream dominates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from ..aggregator.replay import interleave_substreams
from ..core.records import RecordBatch
from .synthetic import SubStreamSpec, gaussian_substreams

__all__ = [
    "RatePhase",
    "RateSchedule",
    "drifting_stream",
    "rate_swap_schedule",
    "flash_crowd_schedule",
]


@dataclass(frozen=True)
class RatePhase:
    """One phase: per-sub-stream rates (items/s) held for ``duration`` s."""

    duration: float
    rates: Dict[Hashable, float]

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"phase duration must be positive, got {self.duration}")
        for source, rate in self.rates.items():
            if rate < 0:
                raise ValueError(f"rate for {source!r} must be non-negative")


@dataclass(frozen=True)
class RateSchedule:
    """A sequence of phases; total duration is the sum of phase durations."""

    phases: Tuple[RatePhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("schedule needs at least one phase")

    @property
    def duration(self) -> float:
        return sum(p.duration for p in self.phases)

    def rate_at(self, source: Hashable, t: float) -> float:
        """The source's arrival rate at absolute time ``t``."""
        elapsed = 0.0
        for phase in self.phases:
            if t < elapsed + phase.duration:
                return phase.rates.get(source, 0.0)
            elapsed += phase.duration
        return self.phases[-1].rates.get(source, 0.0)


def rate_swap_schedule(
    high: float = 8000.0,
    low: float = 100.0,
    phase_seconds: float = 20.0,
    mid: float = 2000.0,
) -> RateSchedule:
    """A dominates, then C dominates — the paper's adaptivity scenario.

    ``mid`` is B's steady rate; keep it below ``high`` or the swap between
    A and C stops being the dominant-sub-stream change it models.
    """
    return RateSchedule(
        (
            RatePhase(phase_seconds, {"A": high, "B": mid, "C": low}),
            RatePhase(phase_seconds, {"A": low, "B": mid, "C": high}),
        )
    )


def flash_crowd_schedule(
    base: float = 2000.0, spike: float = 20000.0, phase_seconds: float = 10.0
) -> RateSchedule:
    """Steady traffic, a 10× flash crowd on B, then back to normal."""
    return RateSchedule(
        (
            RatePhase(phase_seconds, {"A": base, "B": base, "C": base / 20}),
            RatePhase(phase_seconds, {"A": base, "B": spike, "C": base / 20}),
            RatePhase(phase_seconds, {"A": base, "B": base, "C": base / 20}),
        )
    )


def drifting_stream(
    schedule: RateSchedule,
    specs: List[SubStreamSpec] = None,
    seed: int = 0,
) -> List[Tuple[float, Tuple[Hashable, float]]]:
    """Render a rate schedule into a time-ordered item stream.

    Each phase is generated with the per-phase rates and shifted to its
    phase start; sub-streams keep one value generator across phases so a
    source's value distribution is continuous even as its rate jumps.
    """
    if specs is None:
        specs = gaussian_substreams()
    base = random.Random(seed)
    generators = {
        spec.source: spec.values(random.Random(base.getrandbits(64)))
        for spec in specs
    }

    stream: List[Tuple[float, Tuple[Hashable, float]]] = []
    phase_start = 0.0
    for phase in schedule.phases:
        substreams = {}
        for spec in specs:
            rate = phase.rates.get(spec.source, 0.0)
            count = int(rate * phase.duration)
            if count == 0 or rate <= 0:
                continue
            gen = generators[spec.source]
            items = [(spec.source, next(gen)) for _ in range(count)]
            substreams[spec.source] = (rate, items)
        for ts, item in interleave_substreams(substreams):
            stream.append((phase_start + ts, item))
        phase_start += phase.duration
    stream.sort(key=lambda pair: pair[0])
    return RecordBatch(stream)
