"""Synthetic NYC taxi workload — case study 2 (§6.3).

The paper replays the DEBS 2015 Grand Challenge dataset (itineraries of
10,000 NYC taxis in 2013), maps each trip's start coordinates to one of the
six boroughs, and measures the **average trip distance per start borough
per sliding window**.

The synthetic generator preserves the properties that drive the
evaluation:

* six borough strata with realistic popularity skew — Manhattan dominates
  pickups, Staten Island is rare (the stratum SRS under-represents),
* per-borough trip-distance distributions with distinct means (log-normal
  bodies; Manhattan trips short, Staten Island trips long), so missing a
  borough visibly biases its group mean,
* ride records with the fields the query touches (pickup borough, trip
  distance in miles).

The stream item is ``(borough, TaxiRide)``; the stratum and the group are
the start borough, and the queried value is ``ride.distance_miles``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from .synthetic import Item

__all__ = [
    "TaxiRide",
    "BOROUGH_MIX",
    "TRIP_DISTANCE_PARAMS",
    "generate_rides",
    "taxi_stream",
    "ride_distance",
    "ride_borough",
    "BOROUGHS",
]

BOROUGHS = [
    "Manhattan",
    "Brooklyn",
    "Queens",
    "Bronx",
    "Staten Island",
    "Newark",  # DEBS grid spills into Newark; the paper maps six regions
]

# Pickup popularity — Manhattan-dominated, as in the 2013 TLC/DEBS data.
BOROUGH_MIX: Dict[str, float] = {
    "Manhattan": 0.80,
    "Brooklyn": 0.10,
    "Queens": 0.06,
    "Bronx": 0.025,
    "Staten Island": 0.005,
    "Newark": 0.01,
}

# Log-normal trip-distance parameters (underlying normal of ln-miles):
# Manhattan hops are short; outer-borough and airport trips are long.
TRIP_DISTANCE_PARAMS: Dict[str, Tuple[float, float]] = {
    "Manhattan": (0.6, 0.6),
    "Brooklyn": (1.1, 0.6),
    "Queens": (1.6, 0.5),
    "Bronx": (1.3, 0.5),
    "Staten Island": (2.1, 0.4),
    "Newark": (2.4, 0.3),
}


@dataclass(frozen=True)
class TaxiRide:
    """One trip record with the fields the §6.3 query touches."""

    pickup_borough: str
    distance_miles: float
    fare_usd: float


def ride_distance(item: Item) -> float:
    """Query value function: the trip's distance."""
    return item[1].distance_miles


def ride_borough(item: Item) -> Hashable:
    """Stratum/group key function: the pickup borough."""
    return item[0]


def generate_rides(borough: str, count: int, rng: random.Random) -> List[TaxiRide]:
    """Synthesise ``count`` rides starting in ``borough``."""
    try:
        mu, sigma = TRIP_DISTANCE_PARAMS[borough]
    except KeyError:
        raise ValueError(f"unknown borough {borough!r}") from None
    rides = []
    for _ in range(count):
        distance = min(60.0, rng.lognormvariate(mu, sigma))
        fare = 2.5 + 2.0 * distance + rng.uniform(0, 3)
        rides.append(TaxiRide(borough, distance, round(fare, 2)))
    return rides


def taxi_stream(
    total_rate: float,
    duration: float,
    mix: Dict[str, float] = None,
    seed: int = 0,
) -> List[Tuple[float, Item]]:
    """The replayed case-study stream: (timestamp, (borough, TaxiRide))."""
    from ..aggregator.replay import interleave_substreams
    from ..core.records import RecordBatch

    if mix is None:
        mix = BOROUGH_MIX
    base = random.Random(seed)
    substreams = {}
    for borough, share in mix.items():
        rate = total_rate * share
        count = int(rate * duration)
        if count == 0:
            continue
        rng = random.Random(base.getrandbits(64))
        rides = generate_rides(borough, count, rng)
        substreams[borough] = (rate, [(borough, r) for r in rides])
    # TaxiRide payloads are not plain floats, so the batch carries only a
    # timestamp column and the runtime reports a columnar fallback.
    return RecordBatch(interleave_substreams(substreams))
